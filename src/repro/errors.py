"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A run was configured with inconsistent or invalid parameters.

    Examples: a processor grid that does not divide the matrix, a group
    count that does not divide the grid, a block size larger than the
    local tile.
    """


class TopologyError(ReproError):
    """A network topology was built or queried inconsistently."""


class CommunicatorError(ReproError):
    """Misuse of the MPI-like communicator layer.

    Raised for out-of-range ranks, invalid colors in ``split``, or
    operations on a rank that is not a member of the communicator.
    """


class DeadlockError(ReproError):
    """The discrete-event simulation reached a state where no rank can
    make progress but at least one rank has not terminated.

    The message lists the blocked ranks and the operation each is
    waiting on, which is usually enough to diagnose a mismatched
    send/recv pair in an algorithm.
    """


class SimulationError(ReproError):
    """Internal inconsistency detected by the simulator engine."""


class DataMismatchError(ReproError):
    """A payload arrived with a shape/meaning other than expected.

    Raised by algorithm-level assertions, e.g. when a received pivot
    block does not have the declared block shape.
    """


class ModelError(ReproError):
    """An analytic performance model was evaluated outside its domain."""


class RankFailure(ReproError):
    """A simulated rank suffered a fail-stop fault.

    Structured: ``rank`` is the dead rank's world id and ``time`` the
    virtual time of death, so supervisors can react programmatically
    (and tests can assert on both).
    """

    def __init__(self, rank: int, time: float, reason: str = "fail-stop"):
        self.rank = rank
        self.time = time
        self.reason = reason
        super().__init__(
            f"rank {rank} failed ({reason}) at virtual time {time:.6g}s"
        )


class FaultToleranceError(ReproError):
    """A recovery mechanism exhausted its retry budget.

    Raised by :meth:`repro.mpi.comm.Comm.recv_retry` when every timed
    attempt expired without a matching message.
    """
