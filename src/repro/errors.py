"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A run was configured with inconsistent or invalid parameters.

    Examples: a processor grid that does not divide the matrix, a group
    count that does not divide the grid, a block size larger than the
    local tile.
    """


class TopologyError(ReproError):
    """A network topology was built or queried inconsistently."""


class CommunicatorError(ReproError):
    """Misuse of the MPI-like communicator layer.

    Raised for out-of-range ranks, invalid colors in ``split``, or
    operations on a rank that is not a member of the communicator.
    """


class CollectiveMismatchError(CommunicatorError):
    """Two ranks called the same collective slot inconsistently.

    Raised by the communicator layer's announcement registry the moment
    a second rank announces a ``(cid, seq)`` collective with a different
    operation, root, algorithm or membership than the first — instead of
    letting the mismatch surface later as a payload error or deadlock.

    Structured: ``check`` is the verification check id
    (e.g. ``"collective-root-mismatch"``), ``cid``/``seq`` identify the
    collective slot, and ``expected``/``observed`` are the two
    conflicting signatures (mappings of field name to value).
    """

    def __init__(self, message: str, *, check: str, cid: tuple, seq: int,
                 expected: dict, observed: dict):
        self.check = check
        self.cid = cid
        self.seq = seq
        self.expected = dict(expected)
        self.observed = dict(observed)
        super().__init__(message)


class DeadlockError(ReproError):
    """The discrete-event simulation reached a state where no rank can
    make progress but at least one rank has not terminated.

    The message lists the blocked ranks and the operation each is
    waiting on, which is usually enough to diagnose a mismatched
    send/recv pair in an algorithm.

    Structured: ``blocked`` maps each unfinished rank to a dict
    describing its pending operation — at least ``kind`` (``"send"``,
    ``"recv"``, ``"wait-send"``, ``"wait-recv"``, ``"wait-pair"``,
    ``"collective"`` or ``"unknown"``) and ``repr``; point-to-point
    entries add ``peer`` (the world rank waited on, when known) and
    ``tag``.  Built by the engine's quiescence check so supervisors and
    the :mod:`repro.verify` diagnoser can react programmatically.
    """

    def __init__(self, message: str, blocked: dict | None = None):
        self.blocked: dict[int, dict] = dict(blocked or {})
        super().__init__(message)


class SimulationError(ReproError):
    """Internal inconsistency detected by the simulator engine."""


class DataMismatchError(ReproError):
    """A payload arrived with a shape/meaning other than expected.

    Raised by algorithm-level assertions, e.g. when a received pivot
    block does not have the declared block shape.
    """


class ModelError(ReproError):
    """An analytic performance model was evaluated outside its domain."""


class RankFailure(ReproError):
    """A simulated rank suffered a fail-stop fault.

    Structured: ``rank`` is the dead rank's world id and ``time`` the
    virtual time of death, so supervisors can react programmatically
    (and tests can assert on both).
    """

    def __init__(self, rank: int, time: float, reason: str = "fail-stop"):
        self.rank = rank
        self.time = time
        self.reason = reason
        super().__init__(
            f"rank {rank} failed ({reason}) at virtual time {time:.6g}s"
        )


class FaultToleranceError(ReproError):
    """A recovery mechanism exhausted its retry budget.

    Raised by :meth:`repro.mpi.comm.Comm.recv_retry` when every timed
    attempt expired without a matching message.
    """


class VerificationError(ReproError):
    """A verified run produced a non-clean verdict in strict mode.

    Structured: ``verdict`` is the full
    :class:`repro.verify.Verdict`, so callers can inspect the findings
    that failed the run.
    """

    def __init__(self, verdict):
        self.verdict = verdict
        errors = [f.check for f in verdict.errors]
        super().__init__(
            f"verification failed with {len(errors)} error finding(s): "
            + ", ".join(sorted(set(errors)))
        )
