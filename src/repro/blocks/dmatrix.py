"""A convenience handle tying a global matrix to its distribution.

``DistMatrix`` is used at the *edges* of a simulation: slicing out the
per-rank tiles before a run and reassembling the result after.  Inside
the SPMD programs only plain tiles travel — ranks must not share
objects, mirroring real distributed memory.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray

Distribution = BlockDistribution | BlockCyclicDistribution


class DistMatrix:
    """A (possibly phantom) global matrix plus its grid distribution.

    Parameters
    ----------
    data:
        The global numpy array, or a :class:`PhantomArray` of the global
        shape for scale mode.
    dist:
        A block or block-cyclic distribution matching ``data``'s shape.
    """

    def __init__(self, data: Any, dist: Distribution):
        shape = data.shape
        if len(shape) != 2 or shape != (dist.rows, dist.cols):
            raise ConfigurationError(
                f"data shape {shape} does not match distribution "
                f"{dist.rows}x{dist.cols}"
            )
        self.data = data
        self.dist = dist

    @property
    def phantom(self) -> bool:
        return isinstance(self.data, PhantomArray)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.dist.rows, self.dist.cols)

    def tile(self, i: int, j: int) -> Any:
        """Local tile for grid position ``(i, j)``."""
        if self.phantom:
            return PhantomArray(self.dist.tile_shape(i, j), self.data.itemsize)
        return self.dist.extract_tile(self.data, i, j)

    def tiles(self) -> dict[tuple[int, int], Any]:
        """All tiles keyed by grid position."""
        return {
            (i, j): self.tile(i, j)
            for i in range(self.dist.s)
            for j in range(self.dist.t)
        }

    @classmethod
    def from_global(
        cls, data: np.ndarray, s: int, t: int
    ) -> "DistMatrix":
        """Block-distribute a concrete array over an ``s x t`` grid."""
        data = np.asarray(data, dtype=float)
        return cls(data, BlockDistribution(data.shape[0], data.shape[1], s, t))

    @classmethod
    def phantom_global(
        cls, rows: int, cols: int, s: int, t: int, itemsize: int = 8
    ) -> "DistMatrix":
        """A phantom matrix of the given global shape, block-distributed."""
        return cls(
            PhantomArray((rows, cols), itemsize),
            BlockDistribution(rows, cols, s, t),
        )

    def assemble(self, tiles: dict[tuple[int, int], Any]) -> np.ndarray | PhantomArray:
        """Rebuild a global result from per-rank tiles (phantom passes
        through as a phantom of the global shape)."""
        if any(isinstance(t, PhantomArray) for t in tiles.values()):
            return PhantomArray(self.shape)
        return self.dist.assemble(tiles)
