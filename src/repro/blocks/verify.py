"""Numerical verification helpers for matmul results."""

from __future__ import annotations

import numpy as np

from repro.errors import DataMismatchError


def max_abs_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """``max |computed - reference|`` with a shape check."""
    computed = np.asarray(computed)
    reference = np.asarray(reference)
    if computed.shape != reference.shape:
        raise DataMismatchError(
            f"shape mismatch: {computed.shape} vs {reference.shape}"
        )
    if computed.size == 0:
        return 0.0
    return float(np.max(np.abs(computed - reference)))


def relative_error(computed: np.ndarray, reference: np.ndarray) -> float:
    """Frobenius-norm relative error ``|C - R|_F / |R|_F``."""
    computed = np.asarray(computed)
    reference = np.asarray(reference)
    if computed.shape != reference.shape:
        raise DataMismatchError(
            f"shape mismatch: {computed.shape} vs {reference.shape}"
        )
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return float(np.linalg.norm(computed))
    return float(np.linalg.norm(computed - reference)) / denom
