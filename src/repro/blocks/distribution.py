"""Matrix-to-grid distributions.

A distribution maps a global ``rows x cols`` matrix onto an ``s x t``
processor grid.  Two schemes:

* :class:`BlockDistribution` — the paper's checkerboard: processor
  ``(i, j)`` owns one contiguous tile.  Dimensions must divide evenly
  (the paper assumes ``n`` is a multiple of the relevant factors, and
  the experiments use powers of two throughout).
* :class:`BlockCyclicDistribution` — ScaLAPACK-style: blocks of size
  ``nb`` are dealt out cyclically; processor ``(i, j)`` owns every
  block ``(bi, bj)`` with ``bi % s == i`` and ``bj % t == j``.  This is
  the distribution the paper's future-work section targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import require, require_divides


class BlockDistribution:
    """Checkerboard distribution of a ``rows x cols`` matrix on an
    ``s x t`` grid; tile ``(i, j)`` is
    ``M[i*rows/s:(i+1)*rows/s, j*cols/t:(j+1)*cols/t]``."""

    def __init__(self, rows: int, cols: int, s: int, t: int):
        require(rows > 0 and cols > 0, f"matrix dims must be positive: {rows}x{cols}")
        require(s > 0 and t > 0, f"grid dims must be positive: {s}x{t}")
        require_divides(s, rows, "block distribution rows")
        require_divides(t, cols, "block distribution cols")
        self.rows, self.cols = rows, cols
        self.s, self.t = s, t
        self.tile_rows = rows // s
        self.tile_cols = cols // t

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of processor ``(i, j)``'s tile (uniform here)."""
        self._check(i, j)
        return (self.tile_rows, self.tile_cols)

    def owner_of_row(self, gi: int) -> int:
        """Grid row owning global row ``gi``."""
        if not (0 <= gi < self.rows):
            raise ConfigurationError(f"row {gi} outside matrix of {self.rows}")
        return gi // self.tile_rows

    def owner_of_col(self, gj: int) -> int:
        """Grid column owning global column ``gj``."""
        if not (0 <= gj < self.cols):
            raise ConfigurationError(f"col {gj} outside matrix of {self.cols}")
        return gj // self.tile_cols

    def owner(self, gi: int, gj: int) -> tuple[int, int]:
        """Grid coordinates owning global element ``(gi, gj)``."""
        return (self.owner_of_row(gi), self.owner_of_col(gj))

    def global_to_local(self, gi: int, gj: int) -> tuple[int, int]:
        """Local tile indices of global element ``(gi, gj)``."""
        self.owner(gi, gj)  # bounds check
        return (gi % self.tile_rows, gj % self.tile_cols)

    def extract_tile(self, M: np.ndarray, i: int, j: int) -> np.ndarray:
        """Copy of processor ``(i, j)``'s tile of the global array ``M``."""
        self._check(i, j)
        if M.shape != (self.rows, self.cols):
            raise ConfigurationError(
                f"array shape {M.shape} does not match distribution "
                f"{self.rows}x{self.cols}"
            )
        r0 = i * self.tile_rows
        c0 = j * self.tile_cols
        return M[r0 : r0 + self.tile_rows, c0 : c0 + self.tile_cols].copy()

    def assemble(self, tiles: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Rebuild the global array from the full set of tiles."""
        out = np.empty((self.rows, self.cols))
        for i in range(self.s):
            for j in range(self.t):
                try:
                    tile = tiles[(i, j)]
                except KeyError:
                    raise ConfigurationError(f"missing tile ({i}, {j})") from None
                if np.shape(tile) != (self.tile_rows, self.tile_cols):
                    raise ConfigurationError(
                        f"tile ({i}, {j}) has shape {np.shape(tile)}, "
                        f"expected {(self.tile_rows, self.tile_cols)}"
                    )
                r0 = i * self.tile_rows
                c0 = j * self.tile_cols
                out[r0 : r0 + self.tile_rows, c0 : c0 + self.tile_cols] = tile
        return out

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.s and 0 <= j < self.t):
            raise ConfigurationError(
                f"grid position ({i}, {j}) outside {self.s}x{self.t}"
            )


class BlockCyclicDistribution:
    """ScaLAPACK-style 2-D block-cyclic distribution with square-ish
    ``nb_r x nb_c`` blocks dealt cyclically over the ``s x t`` grid.

    For simplicity (and matching the power-of-two experiments), the
    matrix dimensions must be multiples of ``nb * grid dimension`` so
    every processor owns the same number of blocks.
    """

    def __init__(self, rows: int, cols: int, s: int, t: int, nb_r: int, nb_c: int):
        require(nb_r > 0 and nb_c > 0, f"block dims must be positive: {nb_r}x{nb_c}")
        require_divides(nb_r * s, rows, "block-cyclic rows")
        require_divides(nb_c * t, cols, "block-cyclic cols")
        self.rows, self.cols = rows, cols
        self.s, self.t = s, t
        self.nb_r, self.nb_c = nb_r, nb_c
        self.blocks_r = rows // nb_r  # global block-row count
        self.blocks_c = cols // nb_c
        self.local_blocks_r = self.blocks_r // s
        self.local_blocks_c = self.blocks_c // t

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of the local tile (all local blocks packed contiguously)."""
        self._check(i, j)
        return (self.local_blocks_r * self.nb_r, self.local_blocks_c * self.nb_c)

    def owner_of_block(self, bi: int, bj: int) -> tuple[int, int]:
        """Grid position owning global block ``(bi, bj)``."""
        if not (0 <= bi < self.blocks_r and 0 <= bj < self.blocks_c):
            raise ConfigurationError(
                f"block ({bi}, {bj}) outside {self.blocks_r}x{self.blocks_c}"
            )
        return (bi % self.s, bj % self.t)

    def owner(self, gi: int, gj: int) -> tuple[int, int]:
        """Grid position owning global element ``(gi, gj)``."""
        if not (0 <= gi < self.rows and 0 <= gj < self.cols):
            raise ConfigurationError(f"element ({gi}, {gj}) outside matrix")
        return self.owner_of_block(gi // self.nb_r, gj // self.nb_c)

    def local_block_index(self, bi: int, bj: int) -> tuple[int, int]:
        """Index of global block ``(bi, bj)`` within its owner's tile."""
        self.owner_of_block(bi, bj)  # bounds check
        return (bi // self.s, bj // self.t)

    def extract_tile(self, M: np.ndarray, i: int, j: int) -> np.ndarray:
        """Processor ``(i, j)``'s packed local tile of global array ``M``."""
        self._check(i, j)
        if M.shape != (self.rows, self.cols):
            raise ConfigurationError(
                f"array shape {M.shape} does not match distribution "
                f"{self.rows}x{self.cols}"
            )
        # Rows with block-row index ≡ i (mod s), similarly for columns.
        row_idx = np.concatenate(
            [
                np.arange(bi * self.nb_r, (bi + 1) * self.nb_r)
                for bi in range(i, self.blocks_r, self.s)
            ]
        )
        col_idx = np.concatenate(
            [
                np.arange(bj * self.nb_c, (bj + 1) * self.nb_c)
                for bj in range(j, self.blocks_c, self.t)
            ]
        )
        return M[np.ix_(row_idx, col_idx)].copy()

    def assemble(self, tiles: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Rebuild the global array from all packed local tiles."""
        out = np.empty((self.rows, self.cols))
        for i in range(self.s):
            for j in range(self.t):
                try:
                    tile = tiles[(i, j)]
                except KeyError:
                    raise ConfigurationError(f"missing tile ({i}, {j})") from None
                expected = self.tile_shape(i, j)
                if np.shape(tile) != expected:
                    raise ConfigurationError(
                        f"tile ({i}, {j}) has shape {np.shape(tile)}, expected {expected}"
                    )
                row_idx = np.concatenate(
                    [
                        np.arange(bi * self.nb_r, (bi + 1) * self.nb_r)
                        for bi in range(i, self.blocks_r, self.s)
                    ]
                )
                col_idx = np.concatenate(
                    [
                        np.arange(bj * self.nb_c, (bj + 1) * self.nb_c)
                        for bj in range(j, self.blocks_c, self.t)
                    ]
                )
                out[np.ix_(row_idx, col_idx)] = tile
        return out

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.s and 0 <= j < self.t):
            raise ConfigurationError(
                f"grid position ({i}, {j}) outside {self.s}x{self.t}"
            )
