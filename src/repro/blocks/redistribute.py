"""Distributed layout redistribution via all-to-all.

Converts a matrix between any two distributions on the same grid —
most usefully block (checkerboard) ↔ block-cyclic, the operation a
library performs between a SUMMA-friendly and a ScaLAPACK-friendly
layout.  Each rank slices its local tile into the pieces owed to every
other rank, exchanges them with one all-to-all, and assembles its new
tile.

Works in data mode (real numpy pieces move) and phantom mode (only the
piece *sizes* travel, so redistribution cost studies scale).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.collectives.alltoall import alltoall_pairwise
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray

Gen = Generator[Any, Any, Any]

Distribution = BlockDistribution | BlockCyclicDistribution


def _owner_and_local(dist: Distribution, gi: int, gj: int):
    owner = dist.owner(gi, gj)
    if isinstance(dist, BlockDistribution):
        return owner, dist.global_to_local(gi, gj)
    # Block-cyclic: local position = (local block, offset within block).
    bi, bj = gi // dist.nb_r, gj // dist.nb_c
    lbi, lbj = dist.local_block_index(bi, bj)
    return owner, (lbi * dist.nb_r + gi % dist.nb_r,
                   lbj * dist.nb_c + gj % dist.nb_c)


def _row_runs(dist: Distribution, rows: int):
    """Maximal runs of consecutive global rows with constant (owner row,
    contiguous local rows) — lets the piece map work per run instead of
    per element."""
    runs = []
    start = 0
    prev = _owner_and_local_row(dist, 0)
    for gi in range(1, rows):
        cur = _owner_and_local_row(dist, gi)
        if cur[0] != prev[0] or cur[1] != prev[1] + (gi - start):
            runs.append((start, gi, prev))
            start, prev = gi, cur
    runs.append((start, rows, prev))
    return runs


def _owner_and_local_row(dist: Distribution, gi: int):
    if isinstance(dist, BlockDistribution):
        return dist.owner_of_row(gi), gi % dist.tile_rows
    bi = gi // dist.nb_r
    owner = bi % dist.s
    lbi = bi // dist.s
    return owner, lbi * dist.nb_r + gi % dist.nb_r


def _owner_and_local_col(dist: Distribution, gj: int):
    if isinstance(dist, BlockDistribution):
        return dist.owner_of_col(gj), gj % dist.tile_cols
    bj = gj // dist.nb_c
    owner = bj % dist.t
    lbj = bj // dist.t
    return owner, lbj * dist.nb_c + gj % dist.nb_c


def _col_runs(dist: Distribution, cols: int):
    runs = []
    start = 0
    prev = _owner_and_local_col(dist, 0)
    for gj in range(1, cols):
        cur = _owner_and_local_col(dist, gj)
        if cur[0] != prev[0] or cur[1] != prev[1] + (gj - start):
            runs.append((start, gj, prev))
            start, prev = gj, cur
    runs.append((start, cols, prev))
    return runs


def redistribute_program(
    ctx: Any,
    local_tile: Any,
    src: Distribution,
    dst: Distribution,
) -> Gen:
    """Per-rank generator: exchange pieces so that this rank ends with
    its ``dst``-layout tile.  Ranks are laid out row-major on the grid
    (rank = i*t + j), which must be identical for both distributions."""
    if (src.s, src.t) != (dst.s, dst.t):
        raise ConfigurationError(
            f"redistribution needs one grid, got {src.s}x{src.t} "
            f"and {dst.s}x{dst.t}"
        )
    if (src.rows, src.cols) != (dst.rows, dst.cols):
        raise ConfigurationError("source and target shapes differ")
    comm = ctx.world
    t = src.t
    me_i, me_j = divmod(comm.rank, t)
    phantom = isinstance(local_tile, PhantomArray)

    src_row_runs = _row_runs(src, src.rows)
    src_col_runs = _col_runs(src, src.cols)
    dst_row_runs = _row_runs(dst, dst.rows)
    dst_col_runs = _col_runs(dst, dst.cols)

    # Intersect my source runs with the target runs to build pieces.
    my_row_runs = [r for r in src_row_runs if r[2][0] == me_i]
    my_col_runs = [c for c in src_col_runs if c[2][0] == me_j]

    def overlaps(runs_a, runs_b):
        """Pairs of (global lo, hi, a_local_start, b_owner, b_local_start)."""
        out = []
        for a_lo, a_hi, (_, a_loc) in runs_a:
            for b_lo, b_hi, (b_owner, b_loc) in runs_b:
                lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
                if lo < hi:
                    out.append(
                        (lo, hi, a_loc + (lo - a_lo), b_owner,
                         b_loc + (lo - b_lo))
                    )
        return out

    row_pieces = overlaps(my_row_runs, dst_row_runs)
    col_pieces = overlaps(my_col_runs, dst_col_runs)

    # parts[rank] = list of (target local rows, cols, data)
    parts: list[list[Any]] = [[] for _ in range(comm.size)]
    for r_lo, r_hi, my_r, oi, dst_r in row_pieces:
        for c_lo, c_hi, my_c, oj, dst_c in col_pieces:
            target = oi * t + oj
            h, w = r_hi - r_lo, c_hi - c_lo
            if phantom:
                data: Any = PhantomArray((h, w))
            else:
                data = local_tile[my_r : my_r + h, my_c : my_c + w].copy()
            parts[target].append((dst_r, dst_c, h, w, data))

    received = yield from alltoall_pairwise(comm, parts)

    out_shape = dst.tile_shape(me_i, me_j)
    if phantom:
        return PhantomArray(out_shape)
    out = np.empty(out_shape)
    filled = 0
    for bundle in received:
        for dst_r, dst_c, h, w, data in bundle:
            out[dst_r : dst_r + h, dst_c : dst_c + w] = data
            filled += h * w
    if filled != out_shape[0] * out_shape[1]:
        raise ConfigurationError(
            f"redistribution left gaps: filled {filled} of "
            f"{out_shape[0] * out_shape[1]} elements"
        )
    return out


def run_redistribute(
    M: Any,
    src: Distribution,
    dst: Distribution,
    *,
    network: Any = None,
    params: Any = None,
    backend: Any = None,
) -> tuple[np.ndarray | PhantomArray, Any]:
    """Redistribute a global matrix between layouts on a simulated
    platform; returns ``(reassembled global matrix, SimResult)`` —
    the reassembly is from the *target* tiles, so equality with the
    input proves the exchange was complete and correctly placed."""
    from repro.mpi.comm import make_contexts
    from repro.network.homogeneous import HomogeneousNetwork
    from repro.simulator.backends import resolve_backend
    from repro.simulator.runtime import DEFAULT_PARAMS

    nranks = src.s * src.t
    phantom = isinstance(M, PhantomArray)
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    programs = []
    for rank, ctx in enumerate(make_contexts(nranks)):
        i, j = divmod(rank, src.t)
        if phantom:
            tile: Any = PhantomArray(src.tile_shape(i, j))
        else:
            tile = src.extract_tile(np.asarray(M, dtype=float), i, j)
        programs.append(redistribute_program(ctx, tile, src, dst))
    sim = resolve_backend(backend, network).run(programs)
    if phantom:
        return PhantomArray((src.rows, src.cols)), sim
    tiles = {divmod(r, src.t): sim.return_values[r] for r in range(nranks)}
    return dst.assemble(tiles), sim
