"""Distributed dense matrices: distributions, local tiles, verification.

The paper distributes square matrices over the 2-D processor grid by
*block* (checkerboard) distribution and names *block-cyclic* as future
work; both are implemented here.  Local tiles are either real numpy
arrays or :class:`~repro.payloads.PhantomArray` husks, and the tile
operations in :mod:`repro.blocks.ops` are generic over both so every
algorithm runs unchanged in data mode and in scale (phantom) mode.
"""

from repro.blocks.distribution import BlockCyclicDistribution, BlockDistribution
from repro.blocks.dmatrix import DistMatrix
from repro.blocks.ops import gemm_flops, local_gemm_acc, slice_cols, slice_rows, zeros_like_result
from repro.blocks.verify import max_abs_error, relative_error

__all__ = [
    "BlockDistribution",
    "BlockCyclicDistribution",
    "DistMatrix",
    "gemm_flops",
    "local_gemm_acc",
    "slice_cols",
    "slice_rows",
    "zeros_like_result",
    "max_abs_error",
    "relative_error",
]
