"""Tile operations generic over real (numpy) and phantom tiles.

Every matmul algorithm in this library manipulates tiles only through
these helpers, which is what lets one implementation serve both the
numerically-verified data mode and the memory-free scale mode.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.errors import DataMismatchError
from repro.payloads import PhantomArray, is_phantom

Gen = Generator[Any, Any, Any]


def slice_rows(tile: Any, r0: int, r1: int) -> Any:
    """Rows ``[r0, r1)`` of a 2-D tile (view for numpy, husk for phantom)."""
    _check_range(tile, 0, r0, r1)
    if is_phantom(tile):
        return PhantomArray((r1 - r0, tile.shape[1]), tile.itemsize)
    return tile[r0:r1, :]


def slice_cols(tile: Any, c0: int, c1: int) -> Any:
    """Columns ``[c0, c1)`` of a 2-D tile."""
    _check_range(tile, 1, c0, c1)
    if is_phantom(tile):
        return PhantomArray((tile.shape[0], c1 - c0), tile.itemsize)
    return tile[:, c0:c1]


def zeros_like_result(a_tile: Any, b_tile: Any) -> Any:
    """A zeroed accumulator for ``a_tile @ b_tile``."""
    if is_phantom(a_tile) or is_phantom(b_tile):
        sa = a_tile.shape if is_phantom(a_tile) else np.shape(a_tile)
        sb = b_tile.shape if is_phantom(b_tile) else np.shape(b_tile)
        if sa[1] != sb[0]:
            raise DataMismatchError(f"inner dims differ: {sa} @ {sb}")
        return PhantomArray((sa[0], sb[1]))
    return np.zeros((a_tile.shape[0], b_tile.shape[1]))


def gemm_flops(m: int, k: int, n: int) -> float:
    """Flops of ``(m x k) @ (k x n)`` with accumulate: one multiply and
    one add per inner element — the paper's ``2 m k n``."""
    return 2.0 * m * k * n


def local_gemm_acc(ctx: Any, c_tile: Any, a_piv: Any, b_piv: Any) -> Gen:
    """``C += A_piv @ B_piv`` charging the model's flop time.

    A generator (drives ``ctx.compute_flops``); returns the updated
    accumulator.  Phantom operands only validate shapes and charge
    time.
    """
    sa = a_piv.shape
    sb = b_piv.shape
    sc = c_tile.shape
    if len(sa) != 2 or len(sb) != 2 or sa[1] != sb[0]:
        raise DataMismatchError(f"gemm shape mismatch: {sa} @ {sb}")
    if sc != (sa[0], sb[1]):
        raise DataMismatchError(
            f"accumulator shape {sc} does not match product {(sa[0], sb[1])}"
        )
    yield from ctx.compute_flops(gemm_flops(sa[0], sa[1], sb[1]))
    if is_phantom(c_tile) or is_phantom(a_piv) or is_phantom(b_piv):
        return c_tile
    c_tile += a_piv @ b_piv
    return c_tile


def _check_range(tile: Any, axis: int, lo: int, hi: int) -> None:
    shape = tile.shape
    if len(shape) != 2:
        raise DataMismatchError(f"expected 2-D tile, got shape {shape}")
    if not (0 <= lo <= hi <= shape[axis]):
        raise DataMismatchError(
            f"slice [{lo}, {hi}) outside axis {axis} of shape {shape}"
        )
