"""Command-line interface: ``hsumma`` (or ``python -m repro``).

Subcommands:

* ``figure {5,6,7,8,9,10}`` — regenerate a paper figure as a table.
* ``tables`` — print Tables I and II evaluated at the BG/P setting.
* ``validate`` — the alpha/beta threshold test per platform.
* ``multiply`` — run one simulated multiplication and report times.
* ``tune`` — empirical optimal group count for a configuration.
* ``lu`` — run a simulated block LU factorization (flat or hierarchical).
* ``timeline`` — ascii Gantt chart of a small traced SUMMA/HSUMMA run.
* ``trace`` — run a traced multiplication; write a Chrome trace_event
  JSON (loadable in Perfetto) and print the per-phase breakdown.
* ``plan`` — best algorithm + parameters for a problem/machine via the
  plan service (``docs/planner.md``); text or JSON.
* ``report`` — quick scorecard verifying the paper's claims end to end.
* ``verify`` — run the communication-correctness verifier over the
  algorithm corpus (see ``docs/verification.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    driver = {
        "5": figures.fig5,
        "6": figures.fig6,
        "7": figures.fig7,
        "8": figures.fig8,
        "9": figures.fig9,
        "10": figures.fig10,
    }[args.number]
    kwargs = {"jobs": args.jobs}
    if args.cache_dir is not None:
        from repro.experiments.parallel import SweepCache

        kwargs["cache"] = SweepCache(args.cache_dir)
    series = driver(**kwargs)
    if args.csv:
        print(series.to_csv(), end="")
    else:
        print(series.to_table())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table1, table2

    print(table1())
    print()
    print(table2())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.tables import validate_model
    from repro.platforms import bluegene_p, exascale_2012, grid5000_graphene

    checks = [
        (grid5000_graphene(), 8192, 128, 64),
        (bluegene_p(), 65536, 16384, 256),
        (exascale_2012(), 2**22, 2**20, 256),
    ]
    for platform, n, p, b in checks:
        report = validate_model(
            platform.name, n, p, b, platform.alpha, platform.model_beta
        )
        print(report.summary())
    return 0


def _cmd_multiply(args: argparse.Namespace) -> int:
    from repro.core.api import multiply
    from repro.payloads import PhantomArray

    A = PhantomArray((args.n, args.n))
    B = PhantomArray((args.n, args.n))
    kwargs = {}
    if args.groups is not None:
        kwargs["groups"] = args.groups
    if args.bcast is not None or args.pipeline_depth is not None:
        from repro.mpi.comm import CollectiveOptions

        options = CollectiveOptions()
        if args.bcast is not None:
            options = options.replace(bcast=args.bcast)
        if args.pipeline_depth is not None:
            options = options.replace(bcast_segments=args.pipeline_depth)
        kwargs["options"] = options
    faults = None
    if args.faults is not None:
        from repro.faults import parse_fault_spec

        faults = parse_fault_spec(args.faults, seed=args.fault_seed)
        print(f"injecting {faults.describe()}")
    result = multiply(
        A,
        B,
        nprocs=args.procs,
        algorithm=args.algorithm,
        block=args.block,
        backend=args.backend,
        faults=faults,
        **kwargs,
    )
    print(
        f"{args.algorithm}: n={args.n} p={args.procs} "
        f"backend={args.backend} params={result.parameters}"
    )
    print(
        f"  total {result.total_time:.6f}s = comm {result.comm_time:.6f}s "
        f"+ compute {result.compute_time:.6f}s"
    )
    if faults is not None:
        print(f"  {result.sim.fault_summary()}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.tuning import tune_group_count
    from repro.util.gridmath import factor_grid

    grid = factor_grid(args.procs)
    report = tune_group_count(args.n, grid, args.block)
    print(f"grid {grid[0]}x{grid[1]}, block {args.block}:")
    for g in sorted(report.times):
        marker = "  <-- best" if g == report.best_groups else ""
        print(f"  G={g:6d}  {report.times[g]:.6f}s{marker}")
    return 0


def _cmd_lu(args: argparse.Namespace) -> int:
    from repro.factorization import run_block_lu
    from repro.payloads import PhantomArray
    from repro.util.gridmath import factor_grid

    grid = factor_grid(args.procs)
    groups = (args.group_rows, args.group_cols)
    _, _, sim = run_block_lu(
        PhantomArray((args.n, args.n)),
        grid=grid,
        block=args.block,
        groups=groups,
    )
    kind = "HLU" if groups != (1, 1) else "LU"
    print(
        f"{kind}: n={args.n} p={args.procs} (grid {grid[0]}x{grid[1]}) "
        f"b={args.block} groups={groups}"
    )
    print(
        f"  total {sim.total_time:.6f}s = comm {sim.comm_time:.6f}s "
        f"+ compute {sim.compute_time:.6f}s"
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.blocks.dmatrix import DistMatrix
    from repro.core.overlap import summa_overlap_program
    from repro.core.summa import SummaConfig, summa_program
    from repro.experiments.timeline import render_timeline
    from repro.mpi.comm import MpiContext
    from repro.network.homogeneous import HomogeneousNetwork
    from repro.simulator.engine import Engine
    from repro.simulator.runtime import DEFAULT_PARAMS
    from repro.util.gridmath import factor_grid

    s, t = factor_grid(args.procs)
    n = args.n
    cfg = SummaConfig(m=n, l=n, n=n, s=s, t=t, block=args.block)
    da = DistMatrix.phantom_global(n, n, s, t)
    db = DistMatrix.phantom_global(n, n, s, t)
    factory = summa_overlap_program if args.overlap else summa_program
    programs = [
        factory(MpiContext(r, s * t, gamma=args.gamma),
                da.tile(*divmod(r, t)), db.tile(*divmod(r, t)), cfg)
        for r in range(s * t)
    ]
    sim = Engine(
        HomogeneousNetwork(s * t, DEFAULT_PARAMS), collect_trace=True
    ).run(programs)
    schedule = "overlapped" if args.overlap else "bulk-synchronous"
    print(f"{schedule} SUMMA, n={n}, p={args.procs}, b={args.block} "
          f"(total {sim.total_time:.4g}s)")
    print(render_timeline(sim, width=args.width))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.hsumma import run_hsumma
    from repro.core.summa import run_summa
    from repro.errors import ConfigurationError
    from repro.experiments.timeline import render_phase_timeline
    from repro.metrics import (
        critical_path,
        phase_rollup,
        spans_to_csv,
        write_chrome_trace,
    )
    from repro.payloads import PhantomArray
    from repro.util.gridmath import factor_grid

    grid = factor_grid(args.procs)
    A = PhantomArray((args.n, args.n))
    B = PhantomArray((args.n, args.n))
    if args.algo == "summa":
        _, sim = run_summa(A, B, grid=grid, block=args.block,
                           gamma=args.gamma, trace=True)
        setting = f"grid {grid[0]}x{grid[1]}, b={args.block}"
    elif args.algo == "hsumma":
        groups = args.groups if args.groups is not None else _isqrt(args.procs)
        _, sim = run_hsumma(A, B, grid=grid, groups=groups,
                            outer_block=args.block, gamma=args.gamma,
                            trace=True)
        setting = f"grid {grid[0]}x{grid[1]}, G={groups}, B=b={args.block}"
    else:  # argparse choices guard this
        raise ConfigurationError(f"unknown algorithm {args.algo!r}")

    try:
        write_chrome_trace(sim, args.out)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    breakdown = phase_rollup(sim)
    print(f"{args.algo}: n={args.n} p={args.procs} ({setting})")
    print(f"wrote Chrome trace to {args.out} (open in https://ui.perfetto.dev)")
    print()
    print(f"per-phase breakdown on critical rank {breakdown.rank} "
          f"(makespan {sim.total_time:.6f}s):")
    print(breakdown.to_table())
    if args.csv:
        try:
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(spans_to_csv(sim))
        except OSError as exc:
            print(f"error: cannot write {args.csv}: {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote span CSV to {args.csv}")
    if args.timeline:
        print()
        print(render_phase_timeline(sim, width=args.width))
    if args.critical_path:
        print()
        print(critical_path(sim).to_table())
    return 0


def _isqrt(p: int) -> int:
    import math

    return max(1, math.isqrt(p))


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from repro.planner import PlanQuery, PlanService

    service = PlanService(cache_dir=args.cache_dir, top_k=args.top_k,
                          refine=args.refine)
    memory_bytes = (args.memory_gb * 2.0**30
                    if args.memory_gb is not None else None)
    result = service.plan(PlanQuery(
        n=args.n, p=args.p, dtype=args.dtype, platform=args.platform,
        alpha=args.alpha, beta=args.beta, gamma=args.gamma,
        memory_bytes=memory_bytes, faults=args.faults,
    ))
    if args.json:
        out = result.to_dict()
        out["from_cache"] = result.from_cache
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(result.summary())
    return 0


def _serve_machine(args: argparse.Namespace):
    from repro.errors import ConfigurationError
    from repro.simulator.runtime import DEFAULT_PARAMS
    from repro.network.model import HockneyParams

    params = DEFAULT_PARAMS
    if args.alpha is not None or args.beta is not None:
        params = HockneyParams(
            alpha=args.alpha if args.alpha is not None else DEFAULT_PARAMS.alpha,
            beta=args.beta if args.beta is not None else DEFAULT_PARAMS.beta,
        )
    if args.topology == "torus":
        from repro.network.torus import Torus3D
        from repro.util.gridmath import factor_grid

        side = round(args.slots ** (1 / 3))
        if side**3 == args.slots:
            dims = (side, side, side)
        else:
            s, t = factor_grid(args.slots)
            u, v = factor_grid(t)
            dims = (s, u, v)
        return Torus3D(dims, params)
    if args.topology == "homogeneous":
        from repro.network.homogeneous import HomogeneousNetwork

        return HomogeneousNetwork(args.slots, params)
    raise ConfigurationError(f"unknown topology {args.topology!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.cluster import (
        compare_schedulers,
        load_trace,
        poisson_stream,
    )
    from repro.errors import ConfigurationError

    if args.check:
        return _serve_check()
    if args.arrivals is not None:
        jobs = load_trace(args.arrivals)
        trace_info = {"source": args.arrivals, "jobs": len(jobs)}
    else:
        jobs = poisson_stream(args.jobs, rate=args.rate, seed=args.seed)
        trace_info = {"source": f"poisson(rate={args.rate}, seed={args.seed})",
                      "jobs": len(jobs)}
    schedulers = [s.strip() for s in args.scheduler.split(",") if s.strip()]
    if not schedulers:
        raise ConfigurationError("no scheduler given")
    machine = _serve_machine(args)
    slot_grid = None
    if args.slot_grid is not None:
        rows, _, cols = args.slot_grid.partition("x")
        try:
            slot_grid = (int(rows), int(cols))
        except ValueError:
            raise ConfigurationError(
                f"--slot-grid must be ROWSxCOLS, got {args.slot_grid!r}"
            ) from None
    results = compare_schedulers(
        jobs, schedulers, machine=machine, slot_grid=slot_grid,
        gamma=args.gamma, failures=args.failures,
        max_retries=args.max_retries,
    )
    if args.json:
        payload = {
            "trace": trace_info,
            "machine": {"topology": args.topology, "slots": machine.nranks},
            "reports": {name: res.report.to_dict()
                        for name, res in results.items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"stream: {trace_info['source']} — {trace_info['jobs']} jobs "
              f"on {machine.nranks} {args.topology} slots")
        for name, res in results.items():
            print()
            print(res.report.to_text())
    return 0


def _serve_check() -> int:
    """Built-in smoke: run a small stream under two schedulers twice,
    asserting determinism and the SLO report shape (used by CI)."""
    from repro.cluster import compare_schedulers, poisson_stream
    from repro.network.torus import Torus3D
    from repro.simulator.runtime import DEFAULT_PARAMS

    def once() -> dict:
        machine = Torus3D((2, 2, 2), DEFAULT_PARAMS)
        jobs = poisson_stream(10, rate=1500.0, seed=3,
                              sizes=((128, 4), (256, 8)))
        results = compare_schedulers(
            jobs, ["fifo", "planner"], machine=machine, slot_grid=(4, 2),
            gamma=1e-11, failures="kill(rank=1,t=0.001)", max_retries=1,
        )
        return {name: res.report.to_dict() for name, res in results.items()}

    first, second = once(), once()
    if first != second:
        print("serve --check: FAIL (stream not deterministic)",
              file=sys.stderr)
        return 1
    required = {"throughput", "latency_p50", "latency_p99",
                "queue_wait_p50", "utilisation", "makespan"}
    for name, report in first.items():
        missing = required - set(report)
        if missing:
            print(f"serve --check: FAIL ({name} report missing {missing})",
                  file=sys.stderr)
            return 1
        if report["completed"] != report["jobs"]:
            print(f"serve --check: FAIL ({name} lost jobs: {report})",
                  file=sys.stderr)
            return 1
    print(f"serve --check: OK ({first['fifo']['jobs']} jobs, "
          f"fifo p99 {first['fifo']['latency_p99']:.6g}s, "
          f"planner p99 {first['planner']['latency_p99']:.6g}s)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import build_scorecard, render_scorecard

    results = build_scorecard()
    print(render_scorecard(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.verify import VerifyOptions
    from repro.verify.corpus import run_corpus

    options = VerifyOptions(schedules=args.schedules, seed=args.seed)
    names = args.cases or None
    results = run_corpus(names, verify=options)

    if args.json:
        payload = [
            {"case": case.name, "description": case.description,
             **verdict.to_dict()}
            for case, verdict in results
        ]
        print(json.dumps(payload, indent=2, default=str))
    else:
        width = max(len(case.name) for case, _ in results)
        for case, verdict in results:
            print(f"{case.name:<{width}}  {verdict.summary()}")
            if not verdict.ok or args.verbose:
                for line in verdict.to_text().splitlines()[1:]:
                    print(f"{'':<{width}}  {line.strip()}")
    failed = [case.name for case, verdict in results if not verdict.ok]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hsumma",
        description="HSUMMA paper reproduction: simulated parallel matmul",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=["5", "6", "7", "8", "9", "10"])
    p_fig.add_argument("--csv", action="store_true", help="emit CSV")
    p_fig.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluate independent sweep points across N worker processes",
    )
    p_fig.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="reuse previously computed sweep points from this directory "
             "(content-addressed; safe across concurrent runs)",
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_tab = sub.add_parser("tables", help="print Tables I and II")
    p_tab.set_defaults(func=_cmd_tables)

    p_val = sub.add_parser("validate", help="threshold test per platform")
    p_val.set_defaults(func=_cmd_validate)

    p_mul = sub.add_parser("multiply", help="run one simulated multiply")
    p_mul.add_argument("--n", type=int, default=4096)
    p_mul.add_argument("--procs", type=int, default=64)
    p_mul.add_argument("--block", type=int, default=64)
    p_mul.add_argument("--algorithm", default="hsumma")
    p_mul.add_argument("--groups", type=int, default=None)
    p_mul.add_argument(
        "--bcast", default=None,
        help="broadcast algorithm (binomial, vandegeijn, pipelined, "
             "segmented, fourcolor, hypersystolic, ...); default: the "
             "context default",
    )
    p_mul.add_argument(
        "--pipeline-depth", type=int, default=None, metavar="S",
        help="segment count for the pipelined broadcast family "
             "(pipelined/segmented/fourcolor/hypersystolic and the "
             "overlap runners' streamed IBcast); default: per-algorithm "
             "auto",
    )
    p_mul.add_argument(
        "--backend", choices=["des", "macro", "predictor"], default="des",
        help="execution backend: full DES, collective-granularity macro, "
             "or the zero-stepping closed-form predictor "
             "(see docs/cost_model.md)",
    )
    p_mul.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault spec, e.g. 'drop(p=0.05); slow(rank=3,factor=10)' "
             "(see docs/robustness.md); DES backend only",
    )
    p_mul.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault schedule's deterministic randomness",
    )
    p_mul.set_defaults(func=_cmd_multiply)

    p_tune = sub.add_parser("tune", help="empirical optimal group count")
    p_tune.add_argument("--n", type=int, default=4096)
    p_tune.add_argument("--procs", type=int, default=64)
    p_tune.add_argument("--block", type=int, default=64)
    p_tune.set_defaults(func=_cmd_tune)

    p_lu = sub.add_parser("lu", help="simulated block LU factorization")
    p_lu.add_argument("--n", type=int, default=2048)
    p_lu.add_argument("--procs", type=int, default=64)
    p_lu.add_argument("--block", type=int, default=32)
    p_lu.add_argument("--group-rows", type=int, default=1)
    p_lu.add_argument("--group-cols", type=int, default=1)
    p_lu.set_defaults(func=_cmd_lu)

    p_tl = sub.add_parser("timeline", help="ascii Gantt of a traced run")
    p_tl.add_argument("--n", type=int, default=128)
    p_tl.add_argument("--procs", type=int, default=4)
    p_tl.add_argument("--block", type=int, default=16)
    p_tl.add_argument("--gamma", type=float, default=5e-9)
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.add_argument("--overlap", action="store_true")
    p_tl.set_defaults(func=_cmd_timeline)

    p_tr = sub.add_parser(
        "trace",
        help="traced run: Chrome trace JSON + per-phase breakdown",
    )
    p_tr.add_argument("--algo", choices=["summa", "hsumma"], default="hsumma")
    p_tr.add_argument("-n", "--n", dest="n", type=int, default=1024)
    p_tr.add_argument("-p", "--procs", dest="procs", type=int, default=16)
    p_tr.add_argument("--block", type=int, default=64)
    p_tr.add_argument("--groups", type=int, default=None,
                      help="HSUMMA group count G (default sqrt(p))")
    p_tr.add_argument("--gamma", type=float, default=5e-9)
    p_tr.add_argument("--out", default="hsumma-trace.json",
                      help="Chrome trace_event JSON output path")
    p_tr.add_argument("--csv", default=None,
                      help="also write every span as CSV to this path")
    p_tr.add_argument("--timeline", action="store_true",
                      help="print the per-phase ascii Gantt")
    p_tr.add_argument("--critical-path", action="store_true",
                      help="print the critical-path walk")
    p_tr.add_argument("--width", type=int, default=72)
    p_tr.set_defaults(func=_cmd_trace)

    p_plan = sub.add_parser(
        "plan",
        help="best algorithm + parameters for a problem/machine "
             "(plan service; see docs/planner.md)",
    )
    p_plan.add_argument("--n", type=int, required=True,
                        help="matrix dimension (n x n)")
    p_plan.add_argument("-p", "--p", "--procs", dest="p", type=int,
                        required=True, help="rank count")
    p_plan.add_argument("--dtype", default="float64",
                        help="element type (default float64)")
    p_plan.add_argument(
        "--platform", default=None,
        choices=["grid5000-graphene", "bluegene-p", "exascale-2012"],
        help="named machine preset for alpha/beta/gamma",
    )
    p_plan.add_argument("--alpha", type=float, default=None,
                        help="latency in seconds (overrides platform)")
    p_plan.add_argument("--beta", type=float, default=None,
                        help="seconds per byte (overrides platform)")
    p_plan.add_argument("--gamma", type=float, default=None,
                        help="seconds per flop (overrides platform)")
    p_plan.add_argument("--memory-gb", type=float, default=None,
                        help="per-rank memory budget in GiB")
    p_plan.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault spec; restricts plans to "
                             "fault-tolerant broadcasts")
    p_plan.add_argument("--top-k", type=int, default=4,
                        help="ranking leaders re-priced by the "
                             "refinement backend")
    p_plan.add_argument(
        "--refine", choices=["predictor", "macro", "none"],
        default="predictor",
        help="refinement backend for the ranking leaders",
    )
    p_plan.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed plan cache directory (reused across runs)",
    )
    p_plan.add_argument("--json", action="store_true",
                        help="emit the plan as JSON")
    p_plan.set_defaults(func=_cmd_plan)

    p_srv = sub.add_parser(
        "serve",
        help="multi-tenant job-stream simulation with SLO report "
             "(see docs/scheduler.md)",
    )
    p_srv.add_argument("--arrivals", default=None, metavar="TRACE",
                       help="JSONL job trace (one job per line); default: "
                            "a seeded Poisson stream")
    p_srv.add_argument("--jobs", type=int, default=20,
                       help="Poisson stream length (ignored with --arrivals)")
    p_srv.add_argument("--rate", type=float, default=1000.0,
                       help="Poisson arrival rate in jobs per virtual "
                            "second (ignored with --arrivals)")
    p_srv.add_argument("--seed", type=int, default=0,
                       help="Poisson stream seed (ignored with --arrivals)")
    p_srv.add_argument(
        "--scheduler", default="fifo,planner",
        help="comma-separated schedulers to run on the same trace "
             "(fifo, easy, planner)",
    )
    p_srv.add_argument("--slots", type=int, default=64,
                       help="machine size in placement slots")
    p_srv.add_argument("--slot-grid", default=None, metavar="RxC",
                       help="logical placement grid (default most square)")
    p_srv.add_argument("--topology", choices=["torus", "homogeneous"],
                       default="torus",
                       help="shared machine model; torus gives honest "
                            "cross-job link contention")
    p_srv.add_argument("--alpha", type=float, default=None,
                       help="latency in seconds (default: library default)")
    p_srv.add_argument("--beta", type=float, default=None,
                       help="seconds per byte (default: library default)")
    p_srv.add_argument("--gamma", type=float, default=0.0,
                       help="seconds per flop per rank")
    p_srv.add_argument("--failures", default=None, metavar="SPEC",
                       help="fail-stop spec, e.g. 'kill(rank=5,t=0.25)'; "
                            "rank numbers name machine slots")
    p_srv.add_argument("--max-retries", type=int, default=1,
                       help="retry budget per job after a fail-stop")
    p_srv.add_argument("--json", action="store_true",
                       help="emit the SLO reports as JSON")
    p_srv.add_argument("--check", action="store_true",
                       help="run the built-in determinism/report smoke "
                            "and exit (CI)")
    p_srv.set_defaults(func=_cmd_serve)

    p_rep = sub.add_parser("report", help="reproduction scorecard")
    p_rep.set_defaults(func=_cmd_report)

    p_ver = sub.add_parser(
        "verify",
        help="communication-correctness verifier over the algorithm corpus",
    )
    p_ver.add_argument(
        "cases", nargs="*", metavar="CASE",
        help="corpus case names to run (default: all)",
    )
    p_ver.add_argument(
        "--schedules", type=int, default=2, metavar="K",
        help="perturbed delivery schedules for the determinism pass "
             "(0 disables it)",
    )
    p_ver.add_argument("--seed", type=int, default=0,
                       help="seed for the schedule perturbations")
    p_ver.add_argument("--json", action="store_true",
                       help="emit the verdicts as JSON")
    p_ver.add_argument("--verbose", action="store_true",
                       help="print findings even for clean cases")
    p_ver.set_defaults(func=_cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
