"""``repro.planner`` — the plan service.

Given a problem (n, p, dtype), a machine (named platform or explicit
Hockney parameters), and optional memory/fault constraints, return the
best algorithm and tuning parameters this repository can predict:
ranked by the unified cost registry's closed forms, refined by the
simulator's predictor backend, measured against the communication
lower bound, and cached by content hash.  See ``docs/planner.md``.
"""

from repro.planner.query import (
    DTYPE_ITEMSIZE,
    PLATFORM_NAMES,
    Plan,
    PlanQuery,
    ResolvedQuery,
)
from repro.planner.service import (
    PLAN_CACHE_SALT,
    REFINE_BACKENDS,
    PlanService,
    plan,
    plan_many,
)
from repro.planner.space import (
    Candidate,
    candidate_blocks,
    candidate_grids,
    candidate_memory_elements,
    candidate_replications,
    closed_form_cost,
    enumerate_candidates,
)

__all__ = [
    "DTYPE_ITEMSIZE",
    "PLATFORM_NAMES",
    "PLAN_CACHE_SALT",
    "REFINE_BACKENDS",
    "Candidate",
    "Plan",
    "PlanQuery",
    "PlanService",
    "ResolvedQuery",
    "candidate_blocks",
    "candidate_grids",
    "candidate_memory_elements",
    "candidate_replications",
    "closed_form_cost",
    "enumerate_candidates",
    "plan",
    "plan_many",
]
