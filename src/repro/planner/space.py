"""Candidate enumeration and closed-form ranking for the planner.

The planner searches algorithm x parameter space: SUMMA and HSUMMA
grids/blocks/group counts/broadcast algorithms, plus the 2.5D
replication family (refined at predictor fidelity alongside the 2-D
candidates whenever its layer grid tiles ``n``).  Ranking costs are
assembled from the unified cost registry's broadcast factors
(:mod:`repro.costs`) — the same ``L(p)``/``W(p)`` the simulator's
closed forms reduce to — generalised to rectangular ``s x t`` grids;
on square grids they reduce to the paper's eq. (2)-(5).
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from typing import Any

from repro.costs import (
    CostQuery,
    PipelineDepthWarning,
    algo25d_communication_cost,
    bcast_bandwidth_factor,
    bcast_latency_factor,
    estimate,
    optimal_pipeline_segments,
    summa_computation_cost,
)
from repro.costs import PIPELINED_BCASTS
from repro.errors import ConfigurationError
from repro.planner.query import ResolvedQuery

#: Broadcast algorithms the planner considers.  The segmented family
#: (PIPELINED_CHOICES) is enumerated with an explicit pipeline depth
#: ``s`` per candidate — ``s*`` from the registry's closed-form optimum
#: plus a half/double probe; the plain pipelined chain is omitted as it
#: is dominated by ``hypersystolic`` (same bandwidth, shorter fill).
#: Under a fault profile only the fault-tolerant binomial tree remains.
BCAST_CHOICES = ("binomial", "vandegeijn")
PIPELINED_CHOICES = ("segmented", "fourcolor", "hypersystolic")
FT_BCAST_CHOICES = ("binomial",)

#: Enumeration caps: most-square grids kept per p, trailing (largest)
#: power-of-two blocks kept per grid, and the pivot-panel ceiling.
MAX_GRIDS = 3
MAX_BLOCKS = 4
MAX_BLOCK = 1024


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One point of the search space (algorithm + all tunables)."""

    algorithm: str  # "summa" | "hsumma" | "2.5d"
    s: int
    t: int
    block: int = 0          # SUMMA pivot block / HSUMMA outer block B
    inner_block: int = 0    # HSUMMA inner block b
    groups: int = 0         # HSUMMA G
    group_grid: tuple[int, int] | None = None  # HSUMMA (I, J)
    bcast: str | None = None
    outer_bcast: str | None = None
    replication: int = 1    # 2.5D c
    segments: int | None = None  # pipeline depth s (segmented family)

    def params(self) -> dict[str, Any]:
        """The plan's parameter dict (only the fields this algorithm
        actually has)."""
        out: dict[str, Any] = {"grid": [self.s, self.t]}
        if self.algorithm == "2.5d":
            out["replication"] = self.replication
            return out
        if self.algorithm == "summa":
            out.update(block=self.block, bcast=self.bcast)
        elif self.algorithm == "hsumma":
            out.update(
                groups=self.groups,
                group_grid=list(self.group_grid or ()),
                block=self.block,
                inner_block=self.inner_block,
                bcast=self.bcast,
                outer_bcast=self.outer_bcast,
            )
        if self.segments is not None:
            out["segments"] = self.segments
        return out


def candidate_grids(p: int, *, max_aspect: int = 4,
                    limit: int = MAX_GRIDS) -> list[tuple[int, int]]:
    """Factor pairs ``(s, t)`` of ``p`` with ``s <= t``, most square
    first, aspect ratio at most ``max_aspect`` — falling back to the
    most square pair available (e.g. ``(1, p)`` for prime ``p``)."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    pairs = [(s, p // s) for s in range(1, math.isqrt(p) + 1) if p % s == 0]
    pairs.sort(key=lambda st: st[1] / st[0])
    keep = [st for st in pairs if st[1] / st[0] <= max_aspect]
    if not keep:
        keep = pairs[:1]
    return keep[:limit]


def candidate_blocks(n: int, s: int, t: int, *,
                     limit: int = MAX_BLOCKS) -> list[int]:
    """Power-of-two pivot blocks valid on an ``s x t`` grid: the chain
    ``1, 2, 4, ...`` dividing both tile dimensions ``n/s`` and ``n/t``
    (capped at :data:`MAX_BLOCK`), largest ``limit`` kept."""
    g = math.gcd(n // s, n // t)
    if g < 1:
        raise ConfigurationError(
            f"grid {s}x{t} does not tile an n={n} matrix"
        )
    chain = [1]
    while g % (chain[-1] * 2) == 0 and chain[-1] * 2 <= MAX_BLOCK:
        chain.append(chain[-1] * 2)
    return chain[-limit:]


def candidate_replications(p: int) -> list[int]:
    """2.5D replication factors realisable by ``run_25d``'s layout:
    powers of two ``c >= 2`` with ``p = q^2 * c`` for integer ``q`` and
    ``c | q`` (``c = 1`` is the plain 2D layout, already in the
    space)."""
    out = []
    c = 2
    while c ** 3 <= p:
        if p % c == 0:
            q = math.isqrt(p // c)
            if q * q * c == p and q % c == 0:
                out.append(c)
        c *= 2
    return out


def _bcast_choices(rq: ResolvedQuery) -> tuple[str, ...]:
    choices = FT_BCAST_CHOICES if rq.faulty else BCAST_CHOICES
    if rq.bcast_default in choices:
        # Try the platform's default algorithm first (ties in the
        # ranking resolve to the earlier candidate).
        ordered = (rq.bcast_default,) + tuple(
            a for a in choices if a != rq.bcast_default
        )
        return ordered
    return choices


def _segment_choices(rq: ResolvedQuery, alg: str, elements: float,
                     p: int) -> list[int]:
    """Pipeline depths to enumerate for one pipelined candidate: the
    registry's closed-form optimum ``s*`` for the (dominant) row
    message, plus a half/double probe around it."""
    # The enumeration deliberately probes the infinite-NIC optimum
    # (and around it) — the ranking prices every depth itself, so the
    # registry's over-capacity warning is noise here and stays muted.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PipelineDepthWarning)
        s_opt = optimal_pipeline_segments(
            elements, p, rq.alpha, rq.beta_element, alg)
    return sorted({max(1, s_opt // 2), s_opt, 2 * s_opt})


def enumerate_candidates(rq: ResolvedQuery) -> list[Candidate]:
    """The full search space for one query."""
    from repro.core.grouping import choose_group_grid, valid_group_counts

    n, p = rq.n, rq.p
    algs = _bcast_choices(rq)
    pipelined = PIPELINED_CHOICES if not rq.faulty else ()
    out: list[Candidate] = []
    for s, t in candidate_grids(p):
        blocks = candidate_blocks(n, s, t)
        rows, cols = n / s, n / t
        for b in blocks:
            for alg in algs:
                out.append(Candidate("summa", s, t, block=b, bcast=alg))
            for alg in pipelined:
                for seg in _segment_choices(rq, alg, rows * b, t):
                    out.append(Candidate("summa", s, t, block=b,
                                         bcast=alg, segments=seg))
        if p == 1:
            continue
        groups = [G for G in valid_group_counts(s, t) if 1 < G < p]
        for G in groups:
            gg = choose_group_grid(s, t, G)
            inner_t = t // gg[1]
            for B in blocks:
                # b = B is the paper's main regime; one finer inner
                # block probes the b < B latency/pipeline trade.
                inner = [B] + ([B // 4] if B % 4 == 0 else [])
                for ib in inner:
                    for alg in algs:
                        out.append(Candidate(
                            "hsumma", s, t, block=B, inner_block=ib,
                            groups=G, group_grid=gg,
                            bcast=alg, outer_bcast=alg,
                        ))
                    for alg in pipelined:
                        # The pipeline depth follows the inner (hot)
                        # message; the outer level shares the depth.
                        for seg in _segment_choices(
                                rq, alg, rows * ib, max(inner_t, 2)):
                            out.append(Candidate(
                                "hsumma", s, t, block=B, inner_block=ib,
                                groups=G, group_grid=gg,
                                bcast=alg, outer_bcast=alg, segments=seg,
                            ))
    if not rq.faulty:
        # Under a fault profile only the fault-tolerant 2D family is
        # offered; the 2.5D schedule has no FT broadcast variant.
        for c in candidate_replications(p):
            side = math.isqrt(p // c) or 1
            out.append(Candidate("2.5d", side, side, replication=c))
    return out


def candidate_memory_elements(rq: ResolvedQuery, cand: Candidate) -> float:
    """Per-rank footprint in elements: the three resident tiles plus
    the algorithm's pivot-panel receive buffers (2.5D replicates all
    three tiles ``c`` times)."""
    n = rq.n
    if cand.algorithm == "2.5d":
        return 3.0 * cand.replication * n * n / rq.p
    rows, cols = n / cand.s, n / cand.t
    total = 3.0 * rows * cols
    if cand.algorithm == "summa":
        total += rows * cand.block + cand.block * cols
    else:
        total += rows * cand.block + cand.block * cols      # outer B
        total += rows * cand.inner_block + cand.inner_block * cols
    return total


def closed_form_cost(rq: ResolvedQuery, cand: Candidate) -> float:
    """Ranking-stage estimate in seconds (communication + computation),
    assembled from the registry's broadcast factors."""
    compute = summa_computation_cost(rq.n, rq.p, rq.gamma)
    return _comm_cost(rq, cand) + compute


def _bcast_term(alg: str, p: int, elements: float,
                alpha: float, beta_el: float,
                segments: int | None = None) -> float:
    if alg in PIPELINED_BCASTS:
        # No linear L/W form: priced directly by the registry (element
        # counts with a per-element beta are dimensionally equivalent
        # to its bytes convention).
        if p <= 1:
            return 0.0
        return estimate(CostQuery(
            op="bcast", algorithm=alg, p=p, nbytes=elements,
            alpha=alpha, beta=beta_el, segments=segments,
        )).seconds
    return (bcast_latency_factor(alg, p) * alpha
            + elements * bcast_bandwidth_factor(alg, p) * beta_el)


def _comm_cost(rq: ResolvedQuery, cand: Candidate) -> float:
    n, alpha, beta_el = rq.n, rq.alpha, rq.beta_element
    if cand.algorithm == "2.5d":
        return algo25d_communication_cost(n, rq.p, cand.replication,
                                          alpha, beta_el)
    rows, cols = n / cand.s, n / cand.t
    seg = cand.segments
    if cand.algorithm == "summa":
        steps = n / cand.block
        return steps * (
            _bcast_term(cand.bcast, cand.t, rows * cand.block, alpha,
                        beta_el, seg)
            + _bcast_term(cand.bcast, cand.s, cand.block * cols, alpha,
                          beta_el, seg)
        )
    # HSUMMA: outer broadcasts across the I x J group grid, inner
    # broadcasts within each (s/I) x (t/J) group (paper eqs. 3-5,
    # rectangular generalisation).
    I, J = cand.group_grid
    inner_s, inner_t = cand.s // I, cand.t // J
    B, b = cand.block, cand.inner_block
    outer = (n / B) * (
        _bcast_term(cand.outer_bcast, J, rows * B, alpha, beta_el, seg)
        + _bcast_term(cand.outer_bcast, I, B * cols, alpha, beta_el, seg)
    )
    inner = (n / b) * (
        _bcast_term(cand.bcast, inner_t, rows * b, alpha, beta_el, seg)
        + _bcast_term(cand.bcast, inner_s, b * cols, alpha, beta_el, seg)
    )
    return outer + inner
