"""Plan-service query and result types.

A :class:`PlanQuery` is what a user asks ("multiply two n x n float64
matrices on p ranks of this machine — what should I run?"); a
:class:`Plan` is the answer (algorithm, parameters, predicted time,
and the gap to the communication lower bound).  Both round-trip
through plain JSON dicts so plans can live in the content-hash cache
and cross the CLI boundary.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Supported dtypes and their element sizes in bytes.
DTYPE_ITEMSIZE = {
    "float64": 8,
    "float32": 4,
    "float16": 2,
    "complex64": 8,
    "complex128": 16,
}

#: Named platform presets the planner can resolve network parameters
#: from (same registry the sweep harness uses).
PLATFORM_NAMES = ("grid5000-graphene", "bluegene-p", "exascale-2012")


def _platform_factory(name: str):
    from repro.platforms.bluegene import bluegene_p
    from repro.platforms.exa import exascale_2012
    from repro.platforms.grid5000 import grid5000_graphene

    factories = {
        "grid5000-graphene": grid5000_graphene,
        "bluegene-p": bluegene_p,
        "exascale-2012": exascale_2012,
    }
    try:
        return factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; choose from {PLATFORM_NAMES} "
            "or pass alpha/beta/gamma explicitly"
        ) from None


@dataclasses.dataclass(frozen=True)
class PlanQuery:
    """One planning request.

    Parameters
    ----------
    n, p:
        Problem size (``n x n`` matrices) and rank count.
    dtype:
        Element type (sets the per-element byte size).
    platform:
        Optional named preset (:data:`PLATFORM_NAMES`) supplying
        ``alpha``/``beta``/``gamma`` and the default broadcast; any of
        those passed explicitly override the preset.
    alpha, beta:
        Hockney latency (s) and reciprocal bandwidth (s/byte).
    gamma:
        Seconds per flop per rank (0 prices communication only).
    memory_bytes:
        Optional per-rank memory budget; candidates whose footprint
        exceeds it are discarded, and the budget tightens the
        memory-dependent lower bound.
    faults:
        Optional fault-profile spec (``repro.faults`` mini-language).
        Plans for faulty environments restrict broadcasts to the
        fault-tolerant binomial family.
    """

    n: int
    p: int
    dtype: str = "float64"
    platform: str | None = None
    alpha: float | None = None
    beta: float | None = None
    gamma: float | None = None
    memory_bytes: float | None = None
    faults: str | None = None

    def resolve(self) -> "ResolvedQuery":
        """Fill defaults (platform presets, library defaults) and
        validate; the result carries concrete numbers only."""
        if self.n < 1 or self.p < 1:
            raise ConfigurationError(
                f"need n >= 1 and p >= 1; got n={self.n}, p={self.p}"
            )
        itemsize = DTYPE_ITEMSIZE.get(self.dtype)
        if itemsize is None:
            raise ConfigurationError(
                f"unknown dtype {self.dtype!r}; choose from "
                f"{sorted(DTYPE_ITEMSIZE)}"
            )
        alpha, beta, gamma = self.alpha, self.beta, self.gamma
        bcast_default = "binomial"
        if self.platform is not None:
            plat = _platform_factory(self.platform)(self.p)
            alpha = plat.params.alpha if alpha is None else alpha
            beta = plat.params.beta if beta is None else beta
            gamma = plat.gamma if gamma is None else gamma
            bcast_default = plat.options.bcast
        if alpha is None or beta is None:
            from repro.simulator.runtime import DEFAULT_PARAMS

            alpha = DEFAULT_PARAMS.alpha if alpha is None else alpha
            beta = DEFAULT_PARAMS.beta if beta is None else beta
        gamma = 0.0 if gamma is None else gamma
        if alpha <= 0 or beta <= 0 or gamma < 0:
            raise ConfigurationError(
                f"need alpha, beta > 0 and gamma >= 0; got "
                f"alpha={alpha}, beta={beta}, gamma={gamma}"
            )
        memory_elements = None
        if self.memory_bytes is not None:
            if self.memory_bytes <= 0:
                raise ConfigurationError(
                    f"memory budget must be > 0, got {self.memory_bytes}"
                )
            memory_elements = self.memory_bytes / itemsize
        faulty = bool(self.faults and self.faults.strip())
        if faulty:
            # Validate the spec eagerly so a typo fails the query, not
            # some later run that consumes the plan.
            from repro.faults import parse_fault_spec

            parse_fault_spec(self.faults, seed=0)
        return ResolvedQuery(
            n=self.n, p=self.p, itemsize=itemsize, alpha=alpha, beta=beta,
            gamma=gamma, memory_elements=memory_elements, faulty=faulty,
            faults=self.faults if faulty else None,
            bcast_default=bcast_default,
        )


@dataclasses.dataclass(frozen=True)
class ResolvedQuery:
    """A :class:`PlanQuery` with every default filled in.

    ``beta`` is per *byte* (what the simulator charges);
    :attr:`beta_element` converts to the analytic models' per-element
    convention.
    """

    n: int
    p: int
    itemsize: int
    alpha: float
    beta: float
    gamma: float
    memory_elements: float | None
    faulty: bool
    faults: str | None
    bcast_default: str

    @property
    def beta_element(self) -> float:
        return self.beta * self.itemsize

    def canonical(self) -> dict[str, Any]:
        """The JSON spec that keys the plan cache: every field that can
        influence the chosen plan, and nothing else (two PlanQueries
        resolving to the same numbers share one cache entry)."""
        return {
            "n": self.n,
            "p": self.p,
            "itemsize": self.itemsize,
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "memory_elements": self.memory_elements,
            "faulty": self.faulty,
        }


@dataclasses.dataclass(frozen=True)
class Plan:
    """The planner's answer for one query.

    ``predicted_time`` (= ``comm_time + compute_time``) comes from the
    refinement backend named in ``backend`` (``"predictor"``,
    ``"macro"``, or ``"closed-form"`` for candidates only the analytic
    forms price); ``closed_form_time`` is the ranking-stage estimate.
    ``lower_bound_gap`` is ``predicted_time / lower_bound_time`` — how
    far the plan sits above the communication lower bound floor
    (Ballard/Demmel/Holtz; see ``docs/planner.md``).

    A plan is always predictor-refinable (SUMMA or HSUMMA); 2.5D
    replication — executable under the DES backend but with no
    closed-form predictor chain — never competes at ranking fidelity
    alone.  When its analytic estimate beats the chosen plan it shows
    up in ``advisory`` instead, as a pointer to validate with
    ``multiply(algorithm="2.5d")``.
    """

    algorithm: str
    params: dict[str, Any]
    predicted_time: float
    comm_time: float
    compute_time: float
    closed_form_time: float
    backend: str
    lower_bound_time: float
    lower_bound_gap: float
    query: dict[str, Any]
    candidates: int = 0
    advisory: dict[str, Any] = dataclasses.field(default_factory=dict)
    from_cache: bool = False

    def to_dict(self) -> dict[str, Any]:
        out = dataclasses.asdict(self)
        out.pop("from_cache")
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any], *, from_cache: bool = False) -> "Plan":
        fields = {f.name for f in dataclasses.fields(cls)} - {"from_cache"}
        return cls(from_cache=from_cache,
                   **{k: d[k] for k in fields})

    def summary(self) -> str:
        """Human-readable one-plan report (the CLI's text output)."""
        q = self.query
        lines = [
            f"plan: {self.algorithm} on {q['p']} ranks "
            f"(n={q['n']}, itemsize={q['itemsize']})",
        ]
        grid = self.params.get("grid")
        if grid:
            lines.append(f"  grid         {grid[0]}x{grid[1]}")
        for key in ("groups", "group_grid", "block", "inner_block",
                    "bcast", "outer_bcast", "segments", "replication"):
            if key in self.params and self.params[key] is not None:
                lines.append(f"  {key:<12} {self.params[key]}")
        gap = (f"{self.lower_bound_gap:.2f}x"
               if math.isfinite(self.lower_bound_gap) else "inf")
        lines += [
            f"  predicted    {self.predicted_time:.6g}s = "
            f"comm {self.comm_time:.6g}s + compute {self.compute_time:.6g}s "
            f"[{self.backend}]",
            f"  lower bound  {self.lower_bound_time:.6g}s "
            f"(gap {gap} above the memory-"
            f"{'dependent' if q.get('memory_elements') else 'independent'} "
            "floor)",
            f"  searched     {self.candidates} candidates"
            + (" (cache hit)" if self.from_cache else ""),
        ]
        adv = self.advisory.get("25d")
        if adv and "predicted_time" in adv:
            lines.append(
                f"  advisory     2.5D replication c={adv['replication']} "
                f"predicts {adv['predicted_time']:.6g}s = "
                f"comm {adv['comm_time']:.6g}s + "
                f"compute {adv['compute_time']:.6g}s [{adv['backend']}]"
            )
        elif adv:
            # The layer grid q = sqrt(p/c) does not tile n: this
            # variant never entered the refined competition, so only
            # its ranking closed form is known.
            lines.append(
                f"  advisory     2.5D replication c={adv['replication']} "
                f"prices at {adv['closed_form_time']:.6g}s on the closed "
                "forms (layer grid does not tile n; validate with "
                "multiply(algorithm='2.5d') under the DES backend)"
            )
        return "\n".join(lines)
