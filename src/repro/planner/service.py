"""The plan service: rank candidates by closed form, refine the top-k
with the simulator's predictor (or macro) backend, cache the winner.

Cold path per query: enumerate the space (:mod:`repro.planner.space`),
drop candidates over the memory budget, rank by the registry closed
forms, re-price the ``top_k`` leaders with
``repro.simulator.predictor`` (``refine="predictor"``, the default;
``"macro"`` steps the symmetry-collapsed engine instead, ``"none"``
trusts the ranking), and report the winner with its gap to the
communication lower bound.

Hot path: an in-process memo (exact :class:`Plan` objects) in front of
an optional on-disk content-hash cache (the sweep harness's
:class:`~repro.experiments.parallel.SweepCache`, under its own salt) —
so repeated queries cost a dict lookup, and plans survive across
processes when a cache directory is given.  ``plan_many`` deduplicates
equivalent queries (same resolved numbers) before pricing.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.costs import lower_bound_time, summa_computation_cost
from repro.errors import ConfigurationError
from repro.experiments.parallel import _MISS, SweepCache
from repro.planner.query import Plan, PlanQuery, ResolvedQuery
from repro.planner.space import (
    Candidate,
    candidate_memory_elements,
    closed_form_cost,
    enumerate_candidates,
)

#: Bump when the search space, ranking forms, or refinement change in a
#: way that invalidates stored plans.
PLAN_CACHE_SALT = "planner-4"  # planner-4: advisory carries closed_form_only
_PLAN_FN = "repro.planner.plan"

REFINE_BACKENDS = ("predictor", "macro", "none")


class PlanService:
    """Stateful planner: memoised, optionally disk-backed.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk plan cache; ``None`` keeps plans
        in-process only.
    top_k:
        How many ranking leaders the refinement backend re-prices.
    refine:
        ``"predictor"`` (default), ``"macro"``, or ``"none"``.
    """

    def __init__(self, *, cache_dir: str | None = None, top_k: int = 4,
                 refine: str = "predictor"):
        if refine not in REFINE_BACKENDS:
            raise ConfigurationError(
                f"unknown refinement backend {refine!r}; "
                f"choose from {REFINE_BACKENDS}"
            )
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self.top_k = top_k
        self.refine = refine
        self._disk = (SweepCache(cache_dir, salt=PLAN_CACHE_SALT)
                      if cache_dir is not None else None)
        self._memo: dict[str, Plan] = {}
        self.stats = {"memo_hits": 0, "disk_hits": 0, "planned": 0,
                      "deduped": 0}

    # -- public API ---------------------------------------------------

    def plan(self, query: PlanQuery | ResolvedQuery) -> Plan:
        """The best plan for one query (cached)."""
        rq = query.resolve() if isinstance(query, PlanQuery) else query
        spec = self._spec(rq)
        key = json.dumps(spec, sort_keys=True)
        hit = self._memo.get(key)
        if hit is not None:
            self.stats["memo_hits"] += 1
            return _as_cached(hit)
        if self._disk is not None:
            stored = self._disk.lookup(_PLAN_FN, spec)
            if stored is not _MISS:
                self.stats["disk_hits"] += 1
                plan = Plan.from_dict(stored, from_cache=True)
                self._memo[key] = plan
                return plan
        plan = self._price(rq)
        self.stats["planned"] += 1
        if self._disk is not None:
            self._disk.store(_PLAN_FN, spec, plan.to_dict())
        # Memoise the cache-flagged variant so every later hit is a
        # plain dict lookup (no per-hit Plan rebuild).
        self._memo[key] = _as_cached(plan)
        return plan

    def plan_many(self, queries: Iterable[PlanQuery | ResolvedQuery]
                  ) -> list[Plan]:
        """Plans for a batch, pricing each distinct resolved query once
        (queries that resolve to the same numbers share one plan)."""
        resolved = [q.resolve() if isinstance(q, PlanQuery) else q
                    for q in queries]
        plans: dict[str, Plan] = {}
        out: list[Plan] = []
        for rq in resolved:
            key = json.dumps(self._spec(rq), sort_keys=True)
            if key in plans:
                self.stats["deduped"] += 1
                out.append(plans[key])
            else:
                plan = self.plan(rq)
                plans[key] = _as_cached(plan)
                out.append(plan)
        return out

    # -- internals ----------------------------------------------------

    def _spec(self, rq: ResolvedQuery) -> dict[str, Any]:
        spec = rq.canonical()
        spec["top_k"] = self.top_k
        spec["refine"] = self.refine
        return spec

    def _price(self, rq: ResolvedQuery) -> Plan:
        cands = enumerate_candidates(rq)
        total = len(cands)
        if rq.memory_elements is not None:
            fits = [c for c in cands
                    if candidate_memory_elements(rq, c) <= rq.memory_elements]
            if not fits:
                tightest = min(candidate_memory_elements(rq, c)
                               for c in cands)
                raise ConfigurationError(
                    f"no candidate fits the {rq.memory_elements:.0f}-element "
                    f"per-rank memory budget (smallest footprint: "
                    f"{tightest:.0f} elements); raise memory_bytes or p"
                )
            cands = fits
        # Every family competes at refinement fidelity: SUMMA/HSUMMA
        # and 2.5D all have predictor chains now, so the ranking's
        # top_k leaders are re-priced on equal footing.  The one
        # eligibility wrinkle: 2.5D's layer grid comes from p alone
        # (q = sqrt(p/c)), so q may not tile an n the 2-D grids tile
        # fine — such candidates keep the old closed-form advisory
        # instead of competing.
        refinable = [c for c in cands
                     if c.algorithm != "2.5d" or rq.n % c.s == 0]
        if not refinable:
            raise ConfigurationError(
                f"no refinable candidate for n={rq.n}, p={rq.p} "
                "(every configuration was filtered out)"
            )
        ranked = sorted(refinable, key=lambda c: closed_form_cost(rq, c))
        leaders = ranked[: self.top_k]
        # The best 2.5D candidate is always refined — even when it does
        # not lead the ranking — so the plan's 2.5D advisory reports
        # predictor-fidelity times, not the ranking closed form.
        analytic = [c for c in refinable if c.algorithm == "2.5d"]
        adv_cand: Candidate | None = None
        if analytic:
            adv_cand = min(analytic, key=lambda c: closed_form_cost(rq, c))
            if adv_cand not in leaders:
                leaders = leaders + [adv_cand]
        best: tuple[float, float, float, str, Candidate] | None = None
        adv_refined: tuple[float, float, float, str] | None = None
        for cand in leaders:
            refined = self._refine(rq, cand)
            if cand is adv_cand:
                adv_refined = refined
            if best is None or refined[0] < best[0]:
                best = (*refined, cand)
        assert best is not None  # leaders is non-empty
        predicted, comm, compute, backend, cand = best
        advisory: dict[str, Any] = {}
        if adv_refined is not None and adv_cand is not None:
            advisory["25d"] = {
                "replication": adv_cand.replication,
                "predicted_time": adv_refined[0],
                "comm_time": adv_refined[1],
                "compute_time": adv_refined[2],
                "backend": adv_refined[3],
                "closed_form_time": closed_form_cost(rq, adv_cand),
                "closed_form_only": False,
            }
        else:
            skipped = [c for c in cands if c.algorithm == "2.5d"
                       and c not in analytic]
            if skipped:
                adv = min(skipped, key=lambda c: closed_form_cost(rq, c))
                advisory["25d"] = {
                    "replication": adv.replication,
                    "closed_form_time": closed_form_cost(rq, adv),
                    # Flags the fallback for JSON consumers: this
                    # variant never entered the refined competition
                    # (its layer grid does not tile n).
                    "closed_form_only": True,
                }
        lb = lower_bound_time(rq.n, rq.p, rq.alpha, rq.beta_element,
                              rq.gamma, memory_elements=rq.memory_elements)
        gap = predicted / lb.seconds if lb.seconds > 0 else float("inf")
        params = cand.params()
        if rq.faulty:
            params["fault_profile"] = rq.faults
        return Plan(
            algorithm=cand.algorithm,
            params=params,
            predicted_time=predicted,
            comm_time=comm,
            compute_time=compute,
            closed_form_time=closed_form_cost(rq, cand),
            backend=backend,
            lower_bound_time=lb.seconds,
            lower_bound_gap=gap,
            query=self._spec(rq),
            candidates=total,
            advisory=advisory,
        )

    def _refine(self, rq: ResolvedQuery, cand: Candidate
                ) -> tuple[float, float, float, str]:
        """(total, comm, compute, backend) for one candidate."""
        if self.refine == "none":
            compute = summa_computation_cost(rq.n, rq.p, rq.gamma)
            total = closed_form_cost(rq, cand)
            return total, total - compute, compute, "closed-form"
        cfg = _build_config(rq, cand)
        if cand.algorithm == "2.5d":
            # 2.5D has no step model, so refine="macro" also takes the
            # predictor chain — it replays the macro engine's floats
            # bit-identically, so the label stays honest.
            from repro.network.homogeneous import HomogeneousNetwork
            from repro.network.model import HockneyParams
            from repro.simulator.predictor import predict_summa25d

            network = HomogeneousNetwork(rq.p, HockneyParams(rq.alpha, rq.beta))
            res = predict_summa25d(cfg, network=network, gamma=rq.gamma,
                                   a_itemsize=rq.itemsize,
                                   b_itemsize=rq.itemsize)
            st = res.stats[0]
            return st.clock, st.comm_time, st.compute_time, "predictor"
        # The predictor refuses the segmented broadcast family (it has
        # no stage-overlap model), so pipelined candidates are refined
        # at macro fidelity regardless of the configured backend.
        from repro.costs import PIPELINED_BCASTS

        pipelined = (cand.bcast in PIPELINED_BCASTS
                     or cand.outer_bcast in PIPELINED_BCASTS)
        if self.refine == "predictor" and not pipelined:
            from repro.network.homogeneous import HomogeneousNetwork
            from repro.network.model import HockneyParams
            from repro.simulator.predictor import predict_hsumma, predict_summa

            network = HomogeneousNetwork(rq.p, HockneyParams(rq.alpha, rq.beta))
            predict = (predict_summa if cand.algorithm == "summa"
                       else predict_hsumma)
            res = predict(cfg, network=network, gamma=rq.gamma,
                          a_itemsize=rq.itemsize, b_itemsize=rq.itemsize)
            st = res.stats[0]
            return st.clock, st.comm_time, st.compute_time, "predictor"
        from repro.experiments.stepmodel import (
            AnalyticCoster,
            hsumma_step_model,
            summa_step_model,
        )
        from repro.network.model import HockneyParams

        params = HockneyParams(rq.alpha, rq.beta)
        if cand.algorithm == "summa":
            rep = summa_step_model(
                cfg,
                AnalyticCoster(params, cand.bcast, segments=cand.segments),
                rq.gamma)
        else:
            rep = hsumma_step_model(
                cfg,
                AnalyticCoster(params, cand.bcast, segments=cand.segments),
                rq.gamma,
                outer_coster=AnalyticCoster(params, cand.outer_bcast,
                                            segments=cand.segments),
            )
        return rep.total_time, rep.comm_time, rep.compute_time, "macro"


def _build_config(rq: ResolvedQuery, cand: Candidate):
    n = rq.n
    if cand.algorithm == "summa":
        from repro.core.summa import SummaConfig

        return SummaConfig(m=n, l=n, n=n, s=cand.s, t=cand.t,
                           block=cand.block, bcast=cand.bcast)
    if cand.algorithm == "2.5d":
        from repro.simulator.predictor import Summa25dConfig

        return Summa25dConfig(m=n, l=n, n=n, q=cand.s,
                              c=cand.replication)
    from repro.core.hsumma import HSummaConfig

    I, J = cand.group_grid
    return HSummaConfig(
        m=n, l=n, n=n, s=cand.s, t=cand.t, I=I, J=J,
        outer_block=cand.block, inner_block=cand.inner_block,
        outer_bcast=cand.outer_bcast, inner_bcast=cand.bcast,
    )


def _as_cached(plan: Plan) -> Plan:
    return plan if plan.from_cache else Plan.from_dict(
        plan.to_dict(), from_cache=True
    )


def plan(query: PlanQuery | ResolvedQuery, *, cache_dir: str | None = None,
         top_k: int = 4, refine: str = "predictor") -> Plan:
    """One-shot convenience wrapper around :class:`PlanService`."""
    return PlanService(cache_dir=cache_dir, top_k=top_k,
                       refine=refine).plan(query)


def plan_many(queries: Sequence[PlanQuery | ResolvedQuery], *,
              cache_dir: str | None = None, top_k: int = 4,
              refine: str = "predictor") -> list[Plan]:
    """One-shot batched planning (shared cache, deduplicated)."""
    return PlanService(cache_dir=cache_dir, top_k=top_k,
                       refine=refine).plan_many(queries)
