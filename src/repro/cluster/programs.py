"""From a scheduled launch to fresh rank programs.

A :class:`LaunchSpec` is everything the scheduler decided about *how*
one job runs — algorithm, grid shape, blocking, broadcast family, and
the runtime estimate its decision was based on.  :func:`build_programs`
turns (job, spec) into the list of per-rank generators one attempt
executes; the cluster engine calls it once per attempt so retries start
from pristine state, and the bit-identity test calls it directly to run
the same programs on a standalone engine.

Jobs execute at DES fidelity only.  The macro backend's collapsed fast
path keys its pending-collective table by (collective id, sequence),
which would collide across jobs sharing one event queue — so streams
always step per rank, and plans inform *decisions*, not execution.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

from repro.blocks.distribution import BlockDistribution
from repro.blocks.dmatrix import DistMatrix
from repro.cluster.jobs import JobSpec
from repro.core.hsumma import HSummaConfig, hsumma_program
from repro.core.summa import SummaConfig, summa_program
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, make_contexts
from repro.payloads import PhantomArray
from repro.util.gridmath import factor_grid


@dataclasses.dataclass(frozen=True)
class LaunchSpec:
    """How one job will run, as decided by a scheduler.

    ``predicted`` is the scheduler's runtime estimate in virtual
    seconds (closed-form planner estimate or the crude Hockney model);
    EASY-backfill reservations and the planner's shortest-first
    ordering both consume it.  ``s * t`` must equal the job's ``p``.
    """

    algorithm: str
    s: int
    t: int
    block: int
    predicted: float
    groups: tuple[int, int] | None = None   # HSUMMA (I, J)
    outer_block: int = 0                    # HSUMMA B (block is then b)
    bcast: str | None = None
    outer_bcast: str | None = None
    segments: int | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("summa", "hsumma"):
            raise ConfigurationError(
                f"launch algorithm must be 'summa' or 'hsumma', "
                f"got {self.algorithm!r}"
            )
        if self.s < 1 or self.t < 1 or self.block < 1:
            raise ConfigurationError(
                f"launch needs s, t, block >= 1; got "
                f"s={self.s}, t={self.t}, block={self.block}"
            )
        if self.algorithm == "hsumma" and (
                self.groups is None or self.outer_block < 1):
            raise ConfigurationError(
                "hsumma launch needs groups=(I, J) and outer_block >= 1"
            )


def default_block(n: int, s: int, t: int) -> int:
    """Largest pivot block valid for an ``n``-sized SUMMA on ``s x t``:
    ``gcd(n // s, n // t)`` divides both tile extents and hence ``n``."""
    return math.gcd(n // s, n // t)


def default_launch_shape(job: JobSpec) -> tuple[int, int]:
    """Most-square grid for a job's rank count (FIFO/EASY default)."""
    return factor_grid(job.p)


def estimate_run_seconds(
    n: int, p: int, s: int, t: int, block: int,
    alpha: float, beta: float, gamma: float, itemsize: int = 8,
) -> float:
    """Crude closed-form SUMMA estimate: per-step binomial row/column
    broadcasts under Hockney plus the gemm flops.  Used by the FIFO and
    EASY schedulers, which by design plan without the planner."""
    steps = max(1, n // block)
    la = math.ceil(math.log2(t)) if t > 1 else 0
    lb = math.ceil(math.log2(s)) if s > 1 else 0
    a_bytes = (n // s) * block * itemsize
    b_bytes = block * (n // t) * itemsize
    comm = steps * (la * (alpha + a_bytes * beta)
                    + lb * (alpha + b_bytes * beta))
    compute = 2.0 * n * n * n / p * gamma
    return comm + compute


def naive_launch(job: JobSpec, *, alpha: float, beta: float,
                 gamma: float) -> LaunchSpec:
    """The launch FIFO/EASY use: most-square grid, largest valid block,
    library-default broadcasts.  Jobs pinned to ``hsumma`` get the
    group count nearest ``sqrt(p)`` (the paper's analytic optimum for
    square grids); everything else runs SUMMA."""
    s, t = default_launch_shape(job)
    if job.n % s or job.n % t:
        raise ConfigurationError(
            f"job {job.jid}: grid {s}x{t} does not tile n={job.n}"
        )
    block = default_block(job.n, s, t)
    predicted = estimate_run_seconds(job.n, job.p, s, t, block,
                                     alpha, beta, gamma)
    if job.algorithm == "hsumma":
        from repro.core.grouping import choose_group_grid, valid_group_counts

        counts = valid_group_counts(s, t)
        target = math.sqrt(job.p)
        G = min(counts, key=lambda g: (abs(g - target), g))
        return LaunchSpec(
            algorithm="hsumma", s=s, t=t, block=block, outer_block=block,
            groups=choose_group_grid(s, t, G), predicted=predicted,
        )
    return LaunchSpec(
        algorithm="summa", s=s, t=t, block=block, predicted=predicted,
    )


def launch_from_plan(job: JobSpec, plan: Any) -> LaunchSpec:
    """Translate a planner :class:`~repro.planner.query.Plan` into a
    launch.  Plans are always SUMMA or HSUMMA (2.5D never wins — it is
    advisory-only), so every plan is launchable."""
    params = plan.params
    s, t = params["grid"]
    if plan.algorithm == "hsumma":
        grid = params.get("group_grid") or ()
        return LaunchSpec(
            algorithm="hsumma", s=s, t=t,
            block=params["inner_block"],
            outer_block=params["block"],
            groups=(grid[0], grid[1]),
            bcast=params.get("bcast"),
            outer_bcast=params.get("outer_bcast"),
            segments=params.get("segments"),
            predicted=plan.predicted_time,
        )
    if plan.algorithm != "summa":
        raise ConfigurationError(
            f"job {job.jid}: plan algorithm {plan.algorithm!r} is not "
            "launchable on the stream simulator"
        )
    return LaunchSpec(
        algorithm="summa", s=s, t=t, block=params["block"],
        bcast=params.get("bcast"),
        segments=params.get("segments"),
        predicted=plan.predicted_time,
    )


def build_programs(job: JobSpec, spec: LaunchSpec, *, gamma: float = 0.0,
                   options: CollectiveOptions | None = None,
                   trace: bool = False) -> list:
    """Fresh per-rank generators for one attempt of ``job``.

    Matrices are phantom (scale mode): streams measure time, not
    numerics — the single-run paths already pin numerical correctness.
    """
    if spec.s * spec.t != job.p:
        raise ConfigurationError(
            f"job {job.jid}: launch grid {spec.s}x{spec.t} does not use "
            f"p={job.p} ranks"
        )
    n = job.n
    opts = options or CollectiveOptions()
    if spec.bcast is not None:
        opts = opts.replace(bcast=spec.bcast)
    if spec.segments is not None:
        opts = opts.replace(bcast_segments=spec.segments)
    da = DistMatrix(PhantomArray((n, n)), BlockDistribution(n, n, spec.s, spec.t))
    db = DistMatrix(PhantomArray((n, n)), BlockDistribution(n, n, spec.s, spec.t))
    if spec.algorithm == "hsumma":
        assert spec.groups is not None
        cfg: Any = HSummaConfig(
            m=n, l=n, n=n, s=spec.s, t=spec.t,
            I=spec.groups[0], J=spec.groups[1],
            outer_block=spec.outer_block, inner_block=spec.block,
            outer_bcast=spec.outer_bcast,
        )
        program = hsumma_program
    else:
        cfg = SummaConfig(m=n, l=n, n=n, s=spec.s, t=spec.t,
                          block=spec.block)
        program = summa_program
    programs = []
    for rank, ctx in enumerate(
            make_contexts(job.p, options=opts, gamma=gamma, trace=trace)):
        i, j = divmod(rank, spec.t)
        programs.append(program(ctx, da.tile(i, j), db.tile(i, j), cfg))
    return programs
