"""Multi-tenant discrete-event engine: many jobs, one event queue.

:class:`ClusterEngine` extends the single-run :class:`Engine` so that
several independent rank programs share one virtual clock and one
machine.  The split of responsibilities:

* Each job *attempt* binds a fresh, disjoint range of engine ranks
  (``ClusterNetwork.bind``); rank namespaces never overlap and never
  get reused, so no channel, endpoint or link bookkeeping can leak
  between jobs or between retries of one job.
* Job programs still address their peers ``0..p-1``; a thin generator
  wrapper (:func:`_translated`) shifts the rank fields of every yielded
  request by the attempt's base, and nothing else.  With base 0 the
  wrapper is skipped entirely, which is what makes the 1-job stream
  bit-identical to a standalone run.
* Scheduling is event-driven: arrivals, attempt completions and slot
  failures each trigger one dispatch round; the scheduler proposes one
  launch at a time until nothing more fits.
* Fail-stop faults hit machine *slots* at virtual times.  The owning
  attempt dies instantly (its pending events are left in the queue and
  neutralised by a per-resume guard), its slots free up, and the job is
  requeued at the back — or marked failed once its retry budget is
  exhausted.  Deaths are pushed before all arrivals so that at equal
  times a failure preempts a completion, matching the single-run
  engine's documented tie-break.

Everything is deterministic: the event queue is already FIFO within a
timestamp, schedulers break ties on explicit keys, and the only
randomness (Poisson arrivals) is seeded upstream.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.cluster.jobs import JobSpec, validate_stream
from repro.cluster.network import ClusterNetwork
from repro.cluster.placement import SlotGrid
from repro.cluster.programs import LaunchSpec, build_programs
from repro.cluster.schedulers import Scheduler
from repro.errors import ConfigurationError, DeadlockError, SimulationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import Network
from repro.simulator.engine import Engine, _pending_op_info, _RankState
from repro.simulator.events import EventQueue
from repro.simulator.requests import (
    CollectiveRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
)
from repro.simulator.spans import SpanRecorder
from repro.simulator.tracing import SimResult, TransferRecord


class JobRecord:
    """Lifecycle of one job through the stream.

    ``status`` walks ``pending -> queued -> running -> done`` (or
    ``failed`` after exhausting retries, or ``rejected`` when the job
    can never fit the machine).  ``result`` carries the job's own
    :class:`SimResult` slice once done.
    """

    __slots__ = ("job", "launch", "status", "attempts", "first_start",
                 "finish", "retries_left", "failed_attempts", "result")

    def __init__(self, job: JobSpec, retries_left: int) -> None:
        self.job = job
        self.launch: LaunchSpec | None = None
        self.status = "pending"
        self.attempts: list[_Attempt] = []
        self.first_start: float | None = None
        self.finish: float | None = None
        self.retries_left = retries_left
        self.failed_attempts = 0
        self.result: SimResult | None = None

    @property
    def arrival(self) -> float:
        return self.job.arrival

    @property
    def queue_wait(self) -> float | None:
        """Seconds between submission and first start (None if never ran)."""
        if self.first_start is None:
            return None
        return self.first_start - self.job.arrival

    @property
    def latency(self) -> float | None:
        """Submission-to-completion seconds (None unless done/failed)."""
        if self.finish is None:
            return None
        return self.finish - self.job.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"JobRecord(jid={self.job.jid}, status={self.status!r}, "
                f"latency={self.latency})")


class _Attempt:
    """One launch of a job: a bound rank range on a slot block."""

    __slots__ = ("record", "base", "p", "slots", "start", "end",
                 "predicted_finish", "live", "dead")

    def __init__(self, record: JobRecord, base: int, slots: tuple[int, ...],
                 start: float, predicted_finish: float) -> None:
        self.record = record
        self.base = base
        self.p = len(slots)
        self.slots = slots
        self.start = start
        self.end: float | None = None
        self.predicted_finish = predicted_finish
        self.live = len(slots)   # unfinished ranks
        self.dead = False        # fail-stop hit


def _shift(request: Any, base: int) -> Any:
    """Shift the rank fields of one yielded request by ``base``.

    Requests are freshly allocated per yield on the MPI side, so
    in-place mutation is safe; handles were created engine-side and
    already carry engine ranks, so they pass through untouched — as do
    span/compute/counter requests, which name no peers.
    """
    cls = request.__class__
    if cls is SendRequest or cls is ISendRequest:
        request.dst += base
    elif cls is RecvRequest or cls is IRecvRequest:
        request.src += base
    elif cls is SendRecvRequest:
        request.dst += base
        request.src += base
    elif cls is CollectiveRequest:
        request.participants = tuple(r + base for r in request.participants)
    elif cls is tuple:
        return tuple(_shift(item, base) for item in request)
    return request


def _translated(gen: Any, base: int):
    """Wrap a rank program so every yielded request is base-shifted."""
    value = None
    while True:
        try:
            request = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = yield _shift(request, base)


class ClusterEngine(Engine):
    """A DES hosting a whole job stream on one shared machine.

    Parameters
    ----------
    machine:
        The physical network whose ``nranks`` slots jobs are placed on.
    grid_shape:
        Logical ``(rows, cols)`` arrangement of those slots for
        rectangular placement (``rows * cols == machine.nranks``).
    capacity:
        Total engine ranks that may ever be bound (job sizes times
        allowed attempts); fixed up front because the base engine keys
        channels by ``src * nranks + dst``.
    scheduler:
        A :class:`repro.cluster.schedulers.Scheduler` instance.
    failures:
        Fail-stop events as ``(slot, time)`` pairs (already coerced by
        the driver).  Other fault classes are per-run mechanisms the
        stream does not inject.
    max_retries:
        Attempts allowed per job beyond the first.
    """

    def __init__(
        self,
        machine: Network,
        grid_shape: tuple[int, int],
        capacity: int,
        *,
        scheduler: Scheduler,
        gamma: float = 0.0,
        options: CollectiveOptions | None = None,
        contention: bool = True,
        collect_trace: bool = False,
        failures: Sequence[tuple[int, float]] = (),
        max_retries: int = 1,
        eager_threshold: int = 0,
        max_events: int = 200_000_000,
    ) -> None:
        rows, cols = grid_shape
        if rows * cols != machine.nranks:
            raise ConfigurationError(
                f"slot grid {rows}x{cols} does not cover a machine with "
                f"{machine.nranks} slots"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        super().__init__(
            ClusterNetwork(machine, capacity),
            contention=contention,
            collect_trace=collect_trace,
            max_events=max_events,
            eager_threshold=eager_threshold,
        )
        self.machine = machine
        self.scheduler = scheduler
        self.gamma = gamma
        self.options = options
        self.max_retries = max_retries
        self._grid = SlotGrid(rows, cols)
        self._failures = [(int(slot), float(t)) for slot, t in failures]
        for slot, _t in self._failures:
            if not (0 <= slot < machine.nranks):
                raise ConfigurationError(
                    f"failure targets slot {slot}, but the machine has "
                    f"{machine.nranks} slots"
                )

    # -- stream execution ---------------------------------------------------

    def serve(self, jobs: Iterable[JobSpec]) -> list[JobRecord]:
        """Run the whole stream; returns one record per job (jid order)."""
        jobs = validate_stream(list(jobs))
        records = [JobRecord(job, self.max_retries) for job in jobs]

        # Mirror Engine.run()'s setup, with a dynamic rank table: ranks
        # are appended as attempts launch, and self._attempts[r] maps an
        # engine rank back to its owning attempt.
        self._ranks: list[_RankState] = []
        self._events = EventQueue()
        self._channels: dict[Any, dict[int, Any]] = {}
        self._rankmul = self.network.nranks
        self._link_free: dict[Any, float] = {}
        self._links_cache: dict[tuple[int, int], tuple] = {}
        self._ep_pool: list[Any] = []
        self._rh_pool: list[RequestHandle] = []
        self._fast = not self.contention and not self.collect_trace
        self._trace: list[TransferRecord] = []
        self._spans = SpanRecorder(self.network.nranks)
        self._nevents = 0
        self._chan_digests: dict[Any, int] = {}
        self._attempts: list[_Attempt] = []
        self._queue: list[JobRecord] = []
        self._running: list[_Attempt] = []
        self._slot_owner: dict[int, _Attempt] = {}

        # Failures first: at equal virtual times a fail-stop preempts
        # arrivals and completions (same tie-break Engine.run documents).
        for slot, t in self._failures:
            self._events.push(t, self._slot_failure, (slot, t))
        for record in records:
            self._events.push(record.job.arrival, self._job_arrival,
                              (record, record.job.arrival))

        events = self._events
        max_events = self.max_events
        while events:
            _time, batch = events.pop_batch()
            self._nevents += len(batch)
            if self._nevents > max_events:
                raise SimulationError(
                    f"event cap of {max_events} exceeded; "
                    "likely a livelock in a rank program"
                )
            for _t, _seq, fn, args in batch:
                fn(*args)

        blocked = [
            (s.stats.rank, s.blocked_on)
            for s in self._ranks
            if not s.finished
        ]
        if blocked:
            detail = ", ".join(f"rank {r} on {op!r}" for r, op in blocked[:8])
            more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
            raise DeadlockError(
                f"job stream deadlocked: {detail}{more}",
                blocked={r: _pending_op_info(op) for r, op in blocked},
            )
        stranded = [r.job.jid for r in self._queue]
        if stranded:
            raise SimulationError(
                f"jobs {stranded} still queued after the machine drained "
                "(inconsistent scheduler/placement state)"
            )
        return sorted(records, key=lambda r: r.job.jid)

    # -- engine hook --------------------------------------------------------

    def _resume(self, state: _RankState, value: Any, time: float) -> None:
        # Events aimed at a killed attempt's ranks are stale; dropping
        # them here (instead of scrubbing the heap) keeps failure
        # handling O(p) and the event order deterministic.
        attempt = self._attempts[state.stats.rank]
        if attempt.dead:
            return
        super()._resume(state, value, time)
        if state.finished:
            attempt.live -= 1
            if attempt.live == 0:
                # Defer completion to its own event so job teardown and
                # the next dispatch round never run in the middle of a
                # transfer-completion cascade.
                self._events.push(time, self._attempt_done, (attempt,))

    # -- job lifecycle ------------------------------------------------------

    def _job_arrival(self, record: JobRecord, now: float) -> None:
        if record.launch is None:
            record.launch = self.scheduler.launch_spec(record.job)
            if record.launch.s * record.launch.t != record.job.p:
                raise ConfigurationError(
                    f"scheduler proposed grid {record.launch.s}x"
                    f"{record.launch.t} for job {record.job.jid} with "
                    f"p={record.job.p}"
                )
        if not self._grid.fits_empty(record.launch.s, record.launch.t):
            record.status = "rejected"
            return
        record.status = "queued"
        self._queue.append(record)
        self._dispatch_jobs(now)

    def _dispatch_jobs(self, now: float) -> None:
        while self._queue:
            record = self.scheduler.pick(self._queue, self._grid, now,
                                         self._running)
            if record is None:
                return
            assert record.launch is not None
            slots = self._grid.allocate(record.launch.s, record.launch.t)
            if slots is None:
                raise SimulationError(
                    f"scheduler picked job {record.job.jid} but no "
                    f"{record.launch.s}x{record.launch.t} block is free"
                )
            self._queue.remove(record)
            self._launch(record, slots, now)

    def _launch(self, record: JobRecord, slots: tuple[int, ...],
                now: float) -> None:
        spec = record.launch
        assert spec is not None
        base = self.network.bind(slots)
        attempt = _Attempt(record, base, slots, now,
                           predicted_finish=now + spec.predicted)
        record.attempts.append(attempt)
        if record.first_start is None:
            record.first_start = now
        record.status = "running"
        self._running.append(attempt)
        for slot in slots:
            self._slot_owner[slot] = attempt
        programs = build_programs(record.job, spec, gamma=self.gamma,
                                  options=self.options,
                                  trace=self.collect_trace)
        states = []
        for offset, gen in enumerate(programs):
            if base:
                gen = _translated(gen, base)
            state = _RankState(base + offset, gen)
            self._ranks.append(state)
            self._attempts.append(attempt)
            states.append(state)
        for state in states:
            self._resume(state, None, now)

    def _attempt_done(self, attempt: _Attempt) -> None:
        if attempt.dead:
            return
        record = attempt.record
        finish = max(self._ranks[attempt.base + i].stats.clock
                     for i in range(attempt.p))
        attempt.end = finish
        for i in range(attempt.p):
            rank = attempt.base + i
            self._spans.finish(rank, self._ranks[rank].stats.clock)
        self._release(attempt)
        record.status = "done"
        record.finish = finish
        record.result = self._job_result(attempt)
        self._dispatch_jobs(finish)

    def _job_result(self, attempt: _Attempt) -> SimResult:
        base, p = attempt.base, attempt.p
        stats = [self._ranks[base + i].stats for i in range(p)]
        return_values = [self._ranks[base + i].retval for i in range(p)]
        trace = [t for t in self._trace if base <= t.src < base + p]
        spans = [s for s in self._spans.roots if base <= s.rank < base + p]
        return SimResult(stats=stats, return_values=return_values,
                         trace=trace, spans=spans)

    def _release(self, attempt: _Attempt) -> None:
        self._running.remove(attempt)
        self._grid.release(attempt.slots)
        for slot in attempt.slots:
            if self._slot_owner.get(slot) is attempt:
                del self._slot_owner[slot]

    # -- fail-stop ----------------------------------------------------------

    def _slot_failure(self, slot: int, now: float) -> None:
        attempt = self._slot_owner.get(slot)
        if attempt is None or attempt.dead:
            return  # slot idle at failure time: the stream absorbs it
        attempt.dead = True
        attempt.end = now
        for i in range(attempt.p):
            rank = attempt.base + i
            state = self._ranks[rank]
            state.finished = True  # deadlock check must skip dead ranks
            self._spans.finish(rank, max(state.stats.clock, attempt.start))
        record = attempt.record
        self._release(attempt)
        record.failed_attempts += 1
        if record.retries_left > 0:
            record.retries_left -= 1
            record.status = "queued"
            # Requeue at the back: a failed job rejoins behind jobs that
            # arrived while it ran (documented retry policy).
            self._queue.append(record)
        else:
            record.status = "failed"
            record.finish = now
        self._dispatch_jobs(now)
