"""SLO metrics for job streams.

Rolls the per-job records a :class:`ClusterEngine` run produces into
the numbers a capacity planner asks for: throughput, p50/p99 job
latency, queue-wait, and machine utilisation.  All statistics are
computed with deterministic arithmetic (sorted inputs, nearest-rank
percentiles), so a report is a pure function of the stream outcome.

Report fields (``to_dict`` keys, mirrored in the text table):

* ``jobs`` / ``completed`` / ``failed`` / ``rejected`` — stream counts.
* ``makespan`` — virtual seconds from the first arrival to the last
  job event.
* ``throughput`` — completed jobs per virtual second of makespan.
* ``latency_p50`` / ``latency_p99`` / ``latency_mean`` — submission-to-
  completion seconds over completed jobs (failed/rejected jobs never
  complete and are reported separately, not folded into latency).
* ``queue_wait_p50`` / ``queue_wait_max`` / ``queue_wait_mean`` —
  submission-to-first-start seconds over jobs that started.
* ``utilisation`` — slot-seconds occupied by attempts (including dead
  attempts: a killed job held its block until the failure) divided by
  ``slots * makespan``.
* ``retried_attempts`` — attempts killed by fail-stop failures, summed
  over all jobs (a job that died twice contributes two).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from repro.cluster.engine import JobRecord


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return math.nan
    if not (0 <= q <= 100):
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    k = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[k - 1]


@dataclasses.dataclass(frozen=True)
class StreamReport:
    """Aggregated SLO metrics for one scheduler run over one trace."""

    scheduler: str
    jobs: int
    completed: int
    failed: int
    rejected: int
    makespan: float
    throughput: float
    latency_p50: float
    latency_p99: float
    latency_mean: float
    queue_wait_p50: float
    queue_wait_max: float
    queue_wait_mean: float
    utilisation: float
    retried_attempts: int

    @classmethod
    def from_records(cls, records: Sequence[JobRecord], *, slots: int,
                     scheduler: str) -> "StreamReport":
        if slots < 1:
            raise ValueError(f"need slots >= 1, got {slots}")
        completed = [r for r in records if r.status == "done"]
        failed = [r for r in records if r.status == "failed"]
        rejected = [r for r in records if r.status == "rejected"]
        first_arrival = min((r.arrival for r in records), default=0.0)
        last_event = max(
            (max((a.end for a in r.attempts if a.end is not None),
                 default=r.arrival)
             for r in records),
            default=0.0,
        )
        makespan = max(0.0, last_event - first_arrival)
        latencies = [r.latency for r in completed]
        waits = [r.queue_wait for r in records if r.queue_wait is not None]
        busy = sum(a.p * (a.end - a.start)
                   for r in records for a in r.attempts if a.end is not None)
        return cls(
            scheduler=scheduler,
            jobs=len(records),
            completed=len(completed),
            failed=len(failed),
            rejected=len(rejected),
            makespan=makespan,
            throughput=len(completed) / makespan if makespan > 0 else 0.0,
            latency_p50=percentile(latencies, 50),
            latency_p99=percentile(latencies, 99),
            latency_mean=(sum(latencies) / len(latencies)
                          if latencies else math.nan),
            queue_wait_p50=percentile(waits, 50),
            queue_wait_max=max(waits) if waits else math.nan,
            queue_wait_mean=sum(waits) / len(waits) if waits else math.nan,
            utilisation=busy / (slots * makespan) if makespan > 0 else 0.0,
            retried_attempts=sum(r.failed_attempts for r in records),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def to_text(self) -> str:
        """Multi-line human-readable report."""
        def fmt(x: float) -> str:
            return "n/a" if math.isnan(x) else f"{x:.6g}"

        rows = [
            ("jobs", f"{self.jobs} ({self.completed} done, "
                     f"{self.failed} failed, {self.rejected} rejected)"),
            ("makespan", f"{fmt(self.makespan)}s"),
            ("throughput", f"{fmt(self.throughput)} jobs/s"),
            ("latency", f"p50 {fmt(self.latency_p50)}s / "
                        f"p99 {fmt(self.latency_p99)}s / "
                        f"mean {fmt(self.latency_mean)}s"),
            ("queue wait", f"p50 {fmt(self.queue_wait_p50)}s / "
                           f"max {fmt(self.queue_wait_max)}s / "
                           f"mean {fmt(self.queue_wait_mean)}s"),
            ("utilisation", fmt(self.utilisation)),
            ("retries", str(self.retried_attempts)),
        ]
        width = max(len(name) for name, _ in rows)
        lines = [f"scheduler: {self.scheduler}"]
        lines += [f"  {name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)
