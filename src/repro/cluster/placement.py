"""Carving rectangular sub-grids out of a shared machine.

The machine's slots form a logical ``rows x cols`` grid (on a torus,
the natural 2-D face the single-run experiments already use).  A job
asking for an ``s x t`` grid gets a free rectangular block; its rank
``(i, j)`` lands on the block's slot ``(i, j)``, so within-job
communication patterns keep the same shape they have in a standalone
run — what changes under load is only *which* physical links those
patterns cross and who else is using them.

Candidate blocks come from the fig8 zigzag enumeration
(:func:`repro.network.mapping.subgrid_blocks`) when the requested shape
tiles the machine exactly — aligned groups, the paper's Figure-8
layout — and from a row-major anchor scan otherwise.  Both orders are
fixed, so placement is deterministic given the allocation history.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.network.mapping import subgrid_blocks


class SlotGrid:
    """Free/busy tracker for a ``rows x cols`` grid of machine slots.

    Slots are numbered row-major (``slot = r * cols + c``), matching
    the rank order of the torus/homogeneous machines the cluster runs
    on.  ``find``/``allocate`` return the slots of a free ``s x t``
    block *in job rank order* (job rank ``i * t + j`` at position
    ``k = i * t + j`` of the tuple); when ``s x t`` does not fit in
    the grid's orientation but ``t x s`` does, the block is placed
    transposed and the returned order compensates, so callers never
    see the rotation.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"slot grid must be at least 1x1, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self._free = [True] * (rows * cols)

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    @property
    def free_count(self) -> int:
        return sum(self._free)

    def clone(self) -> "SlotGrid":
        """Independent copy (schedulers shadow-simulate releases on it)."""
        other = SlotGrid.__new__(SlotGrid)
        other.rows, other.cols = self.rows, self.cols
        other._free = list(self._free)
        return other

    def fits_empty(self, s: int, t: int) -> bool:
        """Could an ``s x t`` job ever run on this machine (either
        orientation, grid fully drained)?"""
        return ((s <= self.rows and t <= self.cols)
                or (t <= self.rows and s <= self.cols))

    def _candidates(self, rs: int, cs: int):
        """Anchor positions for an ``rs x cs`` block, in placement order."""
        if self.rows % rs == 0 and self.cols % cs == 0:
            # Aligned tiling: walk the zigzag group order so consecutive
            # jobs pack group-contiguously (fig8 layout).
            for block in subgrid_blocks(self.rows, self.cols,
                                        self.rows // rs, self.cols // cs):
                yield divmod(block[0], self.cols)
        else:
            for r0 in range(self.rows - rs + 1):
                for c0 in range(self.cols - cs + 1):
                    yield r0, c0

    def _find_block(self, rs: int, cs: int) -> tuple[int, ...] | None:
        """First fully-free ``rs x cs`` block, slots row-major, or None."""
        if rs > self.rows or cs > self.cols:
            return None
        free = self._free
        for r0, c0 in self._candidates(rs, cs):
            block = tuple((r0 + i) * self.cols + (c0 + j)
                          for i in range(rs) for j in range(cs))
            if all(free[slot] for slot in block):
                return block
        return None

    def find(self, s: int, t: int) -> tuple[int, ...] | None:
        """Slots for a free ``s x t`` block in job rank order, or None."""
        block = self._find_block(s, t)
        if block is not None:
            return block
        if s != t:
            # Transposed placement: physical block is t x s; job (i, j)
            # sits at physical (j, i), i.e. block[j * s + i].
            block = self._find_block(t, s)
            if block is not None:
                return tuple(block[j * s + i]
                             for i in range(s) for j in range(t))
        return None

    def allocate(self, s: int, t: int) -> tuple[int, ...] | None:
        """Find and claim a block; None when nothing fits right now."""
        slots = self.find(s, t)
        if slots is not None:
            for slot in slots:
                self._free[slot] = False
        return slots

    def release(self, slots: tuple[int, ...]) -> None:
        """Return a block's slots to the free pool."""
        for slot in slots:
            if self._free[slot]:
                raise ConfigurationError(f"slot {slot} released twice")
            self._free[slot] = True
