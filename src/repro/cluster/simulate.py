"""Top-level driver: run a job stream, get SLO reports.

:func:`serve` wires the pieces together — machine, placement grid,
scheduler, fail-stop schedule — runs the stream to completion on a
:class:`ClusterEngine`, and returns the per-job records plus the
aggregated :class:`StreamReport`.  The CLI's ``hsumma serve`` is a thin
shell over this function.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from repro.cluster.engine import ClusterEngine, JobRecord
from repro.cluster.jobs import JobSpec
from repro.cluster.metrics import StreamReport
from repro.cluster.schedulers import Scheduler, resolve_scheduler
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import Network
from repro.util.gridmath import factor_grid


@dataclasses.dataclass(frozen=True)
class StreamResult:
    """Outcome of one stream run: the report plus per-job detail."""

    report: StreamReport
    records: list[JobRecord]


def coerce_failures(failures: Any) -> list[tuple[int, float]]:
    """Normalise a ``failures=`` argument to ``(slot, time)`` pairs.

    Accepts ``None``/empty, a sequence of pairs, a fault-spec string
    (``repro.faults`` mini-language, e.g. ``"kill(rank=5,t=0.25)"``) or
    a :class:`~repro.faults.FaultSchedule`.  Only fail-stop deaths are
    meaningful at stream level — the ``rank`` of a kill clause names a
    *machine slot* here — so schedules carrying any other fault class
    are rejected rather than silently truncated.
    """
    if failures is None:
        return []
    from repro.faults.schedule import FaultSchedule
    from repro.faults.spec import coerce_faults

    if isinstance(failures, (str, FaultSchedule)):
        schedule = coerce_faults(failures)
        if schedule is None:
            return []
        if schedule.drops or schedule.slowdowns or schedule.degradations:
            raise ConfigurationError(
                "stream failures support fail-stop deaths only; drops, "
                "slowdowns and degradations are single-run fault classes"
            )
        return [(death.rank, death.time)
                for death in schedule.death_events()]
    return [(int(slot), float(t)) for slot, t in failures]


def serve(
    jobs: Iterable[JobSpec],
    *,
    machine: Network | None = None,
    slots: int | None = None,
    slot_grid: tuple[int, int] | None = None,
    scheduler: str | Scheduler = "fifo",
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = True,
    collect_trace: bool = False,
    failures: Any = None,
    max_retries: int = 1,
    eager_threshold: int = 0,
) -> StreamResult:
    """Run a job stream and aggregate its SLO report.

    Parameters
    ----------
    jobs:
        The stream (see :mod:`repro.cluster.jobs`).
    machine:
        Shared physical network; default a contention-free
        :class:`HomogeneousNetwork` over ``slots`` ranks.  Pass a
        :class:`Torus3D` for honest cross-job link contention.
    slots:
        Machine size when ``machine`` is omitted (default: big enough
        for the largest job).
    slot_grid:
        Logical ``(rows, cols)`` placement arrangement; default the
        most-square factorisation of the machine size.
    scheduler:
        ``"fifo"`` | ``"easy"`` | ``"planner"`` or an instance.
    failures:
        Fail-stop schedule (see :func:`coerce_failures`).
    max_retries:
        Retry budget per job after a fail-stop.
    """
    jobs = list(jobs)
    if not jobs:
        raise ConfigurationError("job stream is empty")
    if machine is None:
        from repro.network.homogeneous import HomogeneousNetwork
        from repro.simulator.runtime import DEFAULT_PARAMS

        if slots is None:
            slots = max(job.p for job in jobs)
        machine = HomogeneousNetwork(slots, DEFAULT_PARAMS)
    elif slots is not None and slots != machine.nranks:
        raise ConfigurationError(
            f"slots={slots} but the supplied machine has "
            f"{machine.nranks}"
        )
    if slot_grid is None:
        slot_grid = factor_grid(machine.nranks)

    params = getattr(machine, "params", None)
    if params is None:
        from repro.simulator.runtime import DEFAULT_PARAMS

        params = DEFAULT_PARAMS
    sched = resolve_scheduler(scheduler, alpha=params.alpha,
                              beta=params.beta, gamma=gamma)

    capacity = sum(job.p for job in jobs) * (1 + max_retries)
    engine = ClusterEngine(
        machine, slot_grid, capacity,
        scheduler=sched, gamma=gamma, options=options,
        contention=contention, collect_trace=collect_trace,
        failures=coerce_failures(failures), max_retries=max_retries,
        eager_threshold=eager_threshold,
    )
    records = engine.serve(jobs)
    report = StreamReport.from_records(records, slots=machine.nranks,
                                       scheduler=sched.name)
    return StreamResult(report=report, records=records)


def compare_schedulers(
    jobs: Sequence[JobSpec],
    schedulers: Sequence[str],
    **kwargs: Any,
) -> dict[str, StreamResult]:
    """Run the same trace under several schedulers (fresh state each)."""
    return {name: serve(list(jobs), scheduler=name, **kwargs)
            for name in schedulers}
