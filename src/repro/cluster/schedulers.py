"""Pluggable job-stream schedulers.

All three schedulers share one interface: :meth:`Scheduler.launch_spec`
decides *how* a job would run (called once, at first arrival), and
:meth:`Scheduler.pick` chooses *which* queued job to start next given
the current placement state.  ``pick`` returns one job at a time and
is called repeatedly until it returns ``None``, so a scheduler never
mutates the grid itself — the engine owns allocation.

* :class:`FifoScheduler` — strict arrival order; the head of the queue
  blocks everything behind it until its sub-grid frees up.
* :class:`EasyBackfillScheduler` — classic EASY: the head gets a
  reservation at the earliest time enough running jobs (by predicted
  finish) will have drained, and later jobs may jump ahead only if
  their predicted runtime fits inside that reservation window.  The
  predicted runtimes come from the same estimate family the planner
  uses, as ROADMAP item 5 prescribes.
* :class:`PlannerScheduler` — EASY's no-starvation skeleton, with two
  planner upgrades: launches come from ``plan_many`` (shape, algorithm,
  grid, blocking per job, closed-form fidelity for determinism and
  speed), and backfill candidates are scanned shortest-predicted-first
  instead of queue order.

Determinism: every tie in ``pick`` breaks on ``(arrival, jid)`` or
``(predicted, arrival, jid)``; the planner service memoises in process
and runs with the disk cache off, so repeated streams see identical
plans.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.cluster.jobs import JobSpec
from repro.cluster.placement import SlotGrid
from repro.cluster.programs import (
    LaunchSpec,
    launch_from_plan,
    naive_launch,
)
from repro.errors import ConfigurationError


class RunningAttempt(Protocol):
    """What schedulers may inspect about an in-flight attempt."""

    slots: tuple[int, ...]
    predicted_finish: float


class QueuedJob(Protocol):
    """What schedulers may inspect about a queued job."""

    job: JobSpec
    launch: LaunchSpec


class Scheduler:
    """Base class wiring the shared machine-model parameters."""

    name = "abstract"

    def __init__(self, *, alpha: float, beta: float, gamma: float) -> None:
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def launch_spec(self, job: JobSpec) -> LaunchSpec:
        """How this scheduler would run ``job`` (grid, block, estimate)."""
        return naive_launch(job, alpha=self.alpha, beta=self.beta,
                            gamma=self.gamma)

    def pick(self, queue: Sequence[QueuedJob], grid: SlotGrid, now: float,
             running: Sequence[RunningAttempt]):
        """The queued job to launch next, or ``None`` to wait."""
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """Strict first-come-first-served."""

    name = "fifo"

    def pick(self, queue, grid, now, running):
        if not queue:
            return None
        head = queue[0]
        spec = head.launch
        if grid.find(spec.s, spec.t) is not None:
            return head
        return None


class EasyBackfillScheduler(Scheduler):
    """EASY backfilling: reserve for the head, backfill behind it."""

    name = "easy"

    def _backfill_candidates(self, queue):
        """Later jobs in the order backfill should try them."""
        return list(queue[1:])

    def pick(self, queue, grid, now, running):
        if not queue:
            return None
        head = queue[0]
        spec = head.launch
        if grid.find(spec.s, spec.t) is not None:
            return head
        # Shadow-release running attempts in predicted-finish order until
        # the head fits; that release time is the head's reservation.
        shadow = grid.clone()
        reserve_at = now
        fits_eventually = False
        for att in sorted(running,
                          key=lambda a: (a.predicted_finish, a.slots)):
            shadow.release(att.slots)
            reserve_at = max(reserve_at, att.predicted_finish)
            if shadow.find(spec.s, spec.t) is not None:
                fits_eventually = True
                break
        if not fits_eventually:
            # Estimates say the machine never drains enough (only when
            # predictions are inconsistent); fall back to pure FIFO.
            return None
        for rec in self._backfill_candidates(queue):
            cand = rec.launch
            if (grid.find(cand.s, cand.t) is not None
                    and now + cand.predicted <= reserve_at):
                return rec
        return None


class PlannerScheduler(EasyBackfillScheduler):
    """Planner-informed EASY: plans pick the launch, backfill goes
    shortest-predicted-first."""

    name = "planner"

    def __init__(self, *, alpha: float, beta: float, gamma: float) -> None:
        super().__init__(alpha=alpha, beta=beta, gamma=gamma)
        # Closed-form refinement: deterministic, no disk cache, and fast
        # enough to price every arrival; plans are memoised in process.
        from repro.planner.service import PlanService

        self._service = PlanService(cache_dir=None, refine="none")

    def launch_spec(self, job: JobSpec) -> LaunchSpec:
        from repro.planner.query import PlanQuery

        plan = self._service.plan(PlanQuery(
            n=job.n, p=job.p, alpha=self.alpha, beta=self.beta,
            gamma=self.gamma,
        ))
        if plan.algorithm not in ("summa", "hsumma"):
            # At closed-form fidelity a 2.5D candidate can win the plan,
            # but its q x q x c layout has no rectangular slot-grid
            # placement; run the naive 2-D launch instead.
            return super().launch_spec(job)
        if job.algorithm is not None and plan.algorithm != job.algorithm:
            # The job pinned an algorithm the plan disagrees with; honour
            # the pin with the naive launch (the plan stays advisory).
            return super().launch_spec(job)
        return launch_from_plan(job, plan)

    def _backfill_candidates(self, queue):
        return sorted(queue[1:],
                      key=lambda r: (r.launch.predicted, r.job.arrival,
                                     r.job.jid))


SCHEDULERS = {
    "fifo": FifoScheduler,
    "easy": EasyBackfillScheduler,
    "planner": PlannerScheduler,
}


def resolve_scheduler(spec, *, alpha: float, beta: float,
                      gamma: float) -> Scheduler:
    """A scheduler instance from a name or a ready-made instance."""
    if isinstance(spec, Scheduler):
        return spec
    try:
        cls = SCHEDULERS[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown scheduler {spec!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return cls(alpha=alpha, beta=beta, gamma=gamma)
