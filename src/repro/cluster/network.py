"""Shared-machine network view for multi-job streams.

Every job attempt gets a *fresh, disjoint* range of engine ranks (a
rank namespace), but all of them charge their transfers to — and claim
links on — the **same underlying machine**.  :class:`ClusterNetwork`
is that adapter: engine rank ``r`` is bound to machine slot
``slot_of(r)`` at launch time, ``transfer_time``/``links``/``hops``
delegate through the binding, and because ``links`` returns the
*machine's* link claims, the engine's contention accounting serialises
transfers from different jobs that cross the same physical link —
cross-job interference falls out of the existing single-run machinery.

Engine ranks are never reused: a retried job binds a new range, so no
channel or link state can leak between attempts.  Capacity is sized up
front (sum over jobs of ``p * (1 + max_retries)``) because the engine
fixes its rank multiplier at setup.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.network.model import LinkClaim, Network


class ClusterNetwork(Network):
    """A ``capacity``-rank namespace multiplexed onto one machine.

    Parameters
    ----------
    machine:
        The shared physical network (e.g. :class:`Torus3D` for honest
        link sharing, :class:`HomogeneousNetwork` for a contention-free
        fabric).
    capacity:
        Total engine ranks that can ever be bound — the sum of job
        sizes times allowed attempts.
    """

    def __init__(self, machine: Network, capacity: int) -> None:
        super().__init__(capacity)
        self.machine = machine
        self._slot: list[int] = []

    @property
    def bound(self) -> int:
        """Engine ranks bound so far."""
        return len(self._slot)

    def bind(self, slots: Sequence[int]) -> int:
        """Bind the next ``len(slots)`` engine ranks to machine slots;
        returns the base engine rank of the new range."""
        base = len(self._slot)
        if base + len(slots) > self.nranks:
            raise TopologyError(
                f"cluster rank capacity exhausted: {base} bound, "
                f"{len(slots)} requested, capacity {self.nranks}"
            )
        for slot in slots:
            if not (0 <= slot < self.machine.nranks):
                raise TopologyError(
                    f"slot {slot} outside machine with "
                    f"{self.machine.nranks} slots"
                )
        self._slot.extend(slots)
        return base

    def slot_of(self, rank: int) -> int:
        """Machine slot an engine rank is bound to."""
        try:
            return self._slot[rank]
        except IndexError:
            raise TopologyError(f"engine rank {rank} is not bound") from None

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        return self.machine.transfer_time(
            self._slot[src], self._slot[dst], nbytes
        )

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        return self.machine.links(self._slot[src], self._slot[dst])

    def hops(self, src: int, dst: int) -> int:
        return self.machine.hops(self._slot[src], self._slot[dst])
