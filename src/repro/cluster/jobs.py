"""Job specifications and arrival processes for the stream simulator.

A *job* is one multiply request: square ``n x n`` matrices on ``p``
ranks, arriving at a virtual time.  Streams come from two sources:

* :func:`poisson_stream` — a seeded Poisson arrival process over a
  small catalogue of job sizes (the synthetic "heavy traffic" workload
  of ROADMAP item 5);
* a JSONL trace file (:func:`load_trace` / :func:`dump_trace`), one
  job per line — ``{"jid": 0, "arrival": 0.0, "n": 512, "p": 16}`` —
  so real request logs can be replayed.

Both are deterministic: the Poisson stream in its seed, the trace in
its bytes.  Together with a deterministic scheduler this makes whole
stream simulations reproducible in (seed, trace, scheduler), which the
property tests pin.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

#: Default size catalogue for synthetic streams: (n, p) pairs mixing
#: small interactive jobs with large batch jobs, so head-of-line
#: blocking is observable under FIFO.
DEFAULT_SIZES: tuple[tuple[int, int], ...] = (
    (256, 4),
    (384, 4),
    (512, 16),
    (768, 16),
    (1024, 64),
)


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One multiply request in a stream.

    Parameters
    ----------
    jid:
        Stream-unique job id (ties in arrival time break by submission
        order, which the trace fixes).
    arrival:
        Virtual submission time in seconds.
    n, p:
        Problem size (``n x n`` float64 matrices) and requested rank
        count.
    algorithm:
        Optional algorithm pin (``"summa"`` or ``"hsumma"``).  ``None``
        leaves the choice to the scheduler (FIFO/EASY default to SUMMA;
        the planner-informed scheduler picks per plan).
    """

    jid: int
    arrival: float
    n: int
    p: int
    algorithm: str | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigurationError(
                f"job {self.jid}: arrival must be >= 0, got {self.arrival}"
            )
        if self.n < 1 or self.p < 1:
            raise ConfigurationError(
                f"job {self.jid}: need n >= 1 and p >= 1, "
                f"got n={self.n}, p={self.p}"
            )
        if self.algorithm not in (None, "summa", "hsumma"):
            raise ConfigurationError(
                f"job {self.jid}: algorithm must be 'summa', 'hsumma' or "
                f"None, got {self.algorithm!r}"
            )

    def to_dict(self) -> dict:
        out = {"jid": self.jid, "arrival": self.arrival,
               "n": self.n, "p": self.p}
        if self.algorithm is not None:
            out["algorithm"] = self.algorithm
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        unknown = set(d) - {"jid", "arrival", "n", "p", "algorithm"}
        if unknown:
            raise ConfigurationError(
                f"trace record has unknown fields {sorted(unknown)}: {d}"
            )
        try:
            return cls(jid=int(d["jid"]), arrival=float(d["arrival"]),
                       n=int(d["n"]), p=int(d["p"]),
                       algorithm=d.get("algorithm"))
        except KeyError as exc:
            raise ConfigurationError(
                f"trace record missing field {exc.args[0]!r}: {d}"
            ) from None


def validate_stream(jobs: Sequence[JobSpec]) -> list[JobSpec]:
    """Check jids are unique and return the jobs sorted by (arrival, jid)."""
    seen: set[int] = set()
    for job in jobs:
        if job.jid in seen:
            raise ConfigurationError(f"duplicate job id {job.jid} in stream")
        seen.add(job.jid)
    return sorted(jobs, key=lambda j: (j.arrival, j.jid))


def poisson_stream(
    njobs: int,
    *,
    rate: float,
    seed: int,
    sizes: Sequence[tuple[int, int]] = DEFAULT_SIZES,
    weights: Sequence[float] | None = None,
) -> list[JobSpec]:
    """Seeded Poisson arrivals over a catalogue of ``(n, p)`` sizes.

    Inter-arrival gaps are ``Exp(rate)`` (so ``rate`` is jobs per
    virtual second); each job's size is drawn uniformly from ``sizes``
    unless ``weights`` biases the draw.  Deterministic in ``seed``.
    """
    if njobs < 1:
        raise ConfigurationError(f"need njobs >= 1, got {njobs}")
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be > 0, got {rate}")
    if not sizes:
        raise ConfigurationError("size catalogue must be non-empty")
    if weights is not None and len(weights) != len(sizes):
        raise ConfigurationError(
            f"{len(weights)} weights for {len(sizes)} sizes"
        )
    rng = random.Random(seed)
    t = 0.0
    out = []
    for jid in range(njobs):
        t += rng.expovariate(rate)
        if weights is None:
            n, p = sizes[rng.randrange(len(sizes))]
        else:
            n, p = rng.choices(sizes, weights=weights)[0]
        out.append(JobSpec(jid=jid, arrival=t, n=n, p=p))
    return out


def dumps_trace(jobs: Iterable[JobSpec]) -> str:
    """Serialise a stream to JSONL (one job per line, jid order kept)."""
    return "".join(json.dumps(j.to_dict(), sort_keys=True) + "\n"
                   for j in jobs)


def loads_trace(text: str) -> list[JobSpec]:
    """Parse a JSONL trace; validates ids and sorts by (arrival, jid)."""
    jobs = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from None
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"trace line {lineno} must be a JSON object, got {record!r}"
            )
        jobs.append(JobSpec.from_dict(record))
    if not jobs:
        raise ConfigurationError("trace contains no jobs")
    return validate_stream(jobs)


def dump_trace(jobs: Iterable[JobSpec], path: str | Path) -> None:
    """Write a JSONL trace file."""
    Path(path).write_text(dumps_trace(jobs))


def load_trace(path: str | Path) -> list[JobSpec]:
    """Read a JSONL trace file."""
    return loads_trace(Path(path).read_text())
