"""Multi-tenant job-stream simulation (``hsumma serve``).

One discrete-event simulation, one shared machine, many independent
multiply jobs: seeded Poisson or trace-driven arrivals
(:mod:`repro.cluster.jobs`), rectangular sub-grid placement
(:mod:`repro.cluster.placement`), pluggable schedulers — FIFO,
EASY-backfill, planner-informed (:mod:`repro.cluster.schedulers`) —
cross-job link contention through the shared network
(:mod:`repro.cluster.network`), mid-stream fail-stop faults with
retry, and SLO metrics (:mod:`repro.cluster.metrics`).

See ``docs/scheduler.md`` for semantics and the determinism contract:
a 1-job stream reproduces the standalone run bit-identically, and any
stream is a pure function of (seed, trace, scheduler).
"""

from repro.cluster.engine import ClusterEngine, JobRecord
from repro.cluster.jobs import (
    JobSpec,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    poisson_stream,
)
from repro.cluster.metrics import StreamReport, percentile
from repro.cluster.network import ClusterNetwork
from repro.cluster.placement import SlotGrid
from repro.cluster.programs import LaunchSpec, build_programs
from repro.cluster.schedulers import (
    SCHEDULERS,
    EasyBackfillScheduler,
    FifoScheduler,
    PlannerScheduler,
    Scheduler,
    resolve_scheduler,
)
from repro.cluster.simulate import (
    StreamResult,
    coerce_failures,
    compare_schedulers,
    serve,
)

__all__ = [
    "SCHEDULERS",
    "ClusterEngine",
    "ClusterNetwork",
    "EasyBackfillScheduler",
    "FifoScheduler",
    "JobRecord",
    "JobSpec",
    "LaunchSpec",
    "PlannerScheduler",
    "Scheduler",
    "SlotGrid",
    "StreamReport",
    "StreamResult",
    "build_programs",
    "coerce_failures",
    "compare_schedulers",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "percentile",
    "poisson_stream",
    "resolve_scheduler",
    "serve",
]
