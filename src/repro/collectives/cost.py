"""Analytic Hockney-model costs of the broadcast algorithms.

The paper's general broadcast model (its eq. 1) is

    ``T_bcast(m, p) = L(p) * alpha + m * W(p) * beta``

This module provides ``L`` and ``W`` for each algorithm in the registry
(where that linear form holds) and a direct ``bcast_time`` that also
covers the pipelined chain (whose optimal-segment cost is not of that
form).  The binomial and Van de Geijn entries match the formulas the
paper quotes in Section IV:

* binomial: ``log2(p) * (alpha + m*beta)``
* Van de Geijn: ``(log2(p) + p - 1)*alpha + 2*(p-1)/p * m*beta``
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.network.model import HockneyParams
from repro.collectives.bcast import optimal_pipeline_segments


def _log2ceil(p: int) -> int:
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    return (p - 1).bit_length()


def _binary_depth(p: int) -> int:
    """Depth of the balanced binary tree over ``p`` nodes (root depth 0)."""
    return max(0, int(math.floor(math.log2(p))))


def bcast_latency_factor(algorithm: str, p: int) -> float:
    """``L(p)``: the number of ``alpha`` terms on the critical path."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    if algorithm == "flat":
        return float(p - 1)
    if algorithm == "chain":
        return float(p - 1)
    if algorithm == "binomial":
        return float(_log2ceil(p))
    if algorithm == "binary":
        # Inner nodes forward to two children sequentially: about two
        # sends per level on the critical path.
        return float(2 * _binary_depth(p))
    if algorithm == "vandegeijn":
        return float(_log2ceil(p) + (p - 1))
    raise ModelError(
        f"no closed-form L(p) for algorithm {algorithm!r} "
        "(use bcast_time for the pipelined chain)"
    )


def bcast_bandwidth_factor(algorithm: str, p: int) -> float:
    """``W(p)``: the multiplier on ``m * beta`` on the critical path."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    if algorithm == "flat":
        return float(p - 1)
    if algorithm == "chain":
        return float(p - 1)
    if algorithm == "binomial":
        return float(_log2ceil(p))
    if algorithm == "binary":
        return float(2 * _binary_depth(p))
    if algorithm == "vandegeijn":
        return 2.0 * (p - 1) / p
    raise ModelError(
        f"no closed-form W(p) for algorithm {algorithm!r} "
        "(use bcast_time for the pipelined chain)"
    )


def bcast_time(
    algorithm: str,
    m_bytes: float,
    p: int,
    params: HockneyParams,
    *,
    segments: int | None = None,
) -> float:
    """Predicted broadcast time of ``m_bytes`` among ``p`` ranks.

    For the pipelined chain, ``segments=None`` uses the analytically
    optimal segment count for these parameters.
    """
    if m_bytes < 0:
        raise ModelError(f"message size must be >= 0, got {m_bytes}")
    if p == 1:
        return 0.0
    if algorithm == "pipelined":
        s = segments or optimal_pipeline_segments(
            m_bytes, p, params.alpha, params.beta
        )
        return (p - 2 + s) * (params.alpha + (m_bytes / s) * params.beta)
    L = bcast_latency_factor(algorithm, p)
    W = bcast_bandwidth_factor(algorithm, p)
    return L * params.alpha + m_bytes * W * params.beta


def collective_time(
    op: str,
    algorithm: str,
    m_bytes: float,
    p: int,
    params: HockneyParams,
    *,
    segments: int | None = None,
) -> float:
    """Closed-form Hockney cost of one collective among ``p`` ranks.

    Size convention (shared with the macro backend): for rooted
    distribution ops (``bcast``, ``scatter``) ``m_bytes`` is the total
    payload at the root; for contribution ops (``gather``,
    ``allgather``, ``reduce``, ``allreduce``) it is one rank's
    contribution; for ``barrier`` it is ignored.

    Broadcasts delegate to :func:`bcast_time` (the paper's eq. 1 forms);
    the remaining ops use the standard critical-path costs of the
    algorithms implemented in :mod:`repro.collectives`.
    """
    if m_bytes < 0:
        raise ModelError(f"message size must be >= 0, got {m_bytes}")
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    if op == "bcast":
        return bcast_time(algorithm, m_bytes, p, params, segments=segments)
    alpha, beta = params.alpha, params.beta
    log2p = _log2ceil(p)
    if op == "scatter":
        # Binomial range-splitting tree: the payload halves each level.
        return log2p * alpha + (p - 1) / p * m_bytes * beta
    if op == "gather":
        # Mirror of scatter with per-rank contributions: level k moves
        # 2^k contributions, summing to (p-1) along the critical path.
        return log2p * alpha + (p - 1) * m_bytes * beta
    if op == "allgather":
        if algorithm == "ring":
            return (p - 1) * (alpha + m_bytes * beta)
        if algorithm in ("recursive_doubling", "bruck"):
            return log2p * alpha + (p - 1) * m_bytes * beta
        raise ModelError(f"no closed-form allgather cost for {algorithm!r}")
    if op == "reduce":
        if algorithm == "flat":
            return (p - 1) * (alpha + m_bytes * beta)
        if algorithm == "binomial":
            return log2p * (alpha + m_bytes * beta)
        raise ModelError(f"no closed-form reduce cost for {algorithm!r}")
    if op == "allreduce":
        if algorithm == "rabenseifner":
            return 2 * log2p * alpha + 2 * (p - 1) / p * m_bytes * beta
        if algorithm == "recursive_doubling":
            if p & (p - 1) == 0:
                return log2p * (alpha + m_bytes * beta)
            # The implementation falls back to reduce + bcast off
            # powers of two.
            return collective_time(
                "reduce", "binomial", m_bytes, p, params
            ) + bcast_time("binomial", m_bytes, p, params)
        raise ModelError(f"no closed-form allreduce cost for {algorithm!r}")
    if op == "barrier":
        # Dissemination barrier: ceil(log2 p) zero-byte rounds.
        return log2p * alpha
    raise ModelError(f"unknown collective op {op!r}")
