"""Analytic Hockney-model costs of the collectives — registry front-end.

The closed forms themselves live in :mod:`repro.costs.registry` (the
single source of truth shared with the analytic models and the
predictor; see ``docs/cost_model.md``).  This module keeps the
historical function-style interface the costers and the figure sweeps
call, delegating every evaluation to the registry's
:class:`~repro.costs.registry.CostQuery` →
:class:`~repro.costs.registry.CostEstimate` interface.

The paper's general broadcast model (its eq. 1) is

    ``T_bcast(m, p) = L(p) * alpha + m * W(p) * beta``

``bcast_latency_factor`` / ``bcast_bandwidth_factor`` expose the
registry's *discrete* ``L`` and ``W`` (what the executable collectives
realise on the wire); the smooth flavours the optimiser differentiates
through are re-exported by :mod:`repro.models.broadcast_model` from the
same registry rows.
"""

from __future__ import annotations

from repro.costs.registry import CostQuery, estimate
from repro.costs.registry import bcast_bandwidth_factor, bcast_latency_factor  # noqa: F401 (re-export)
from repro.network.model import HockneyParams


def bcast_time(
    algorithm: str,
    m_bytes: float,
    p: int,
    params: HockneyParams,
    *,
    segments: int | None = None,
) -> float:
    """Predicted broadcast time of ``m_bytes`` among ``p`` ranks.

    For the pipelined chain, ``segments=None`` uses the analytically
    optimal segment count for these parameters.
    """
    return estimate(CostQuery(
        op="bcast", algorithm=algorithm, p=p, nbytes=m_bytes,
        alpha=params.alpha, beta=params.beta, segments=segments,
    )).seconds


def collective_time(
    op: str,
    algorithm: str,
    m_bytes: float,
    p: int,
    params: HockneyParams,
    *,
    segments: int | None = None,
) -> float:
    """Closed-form Hockney cost of one collective among ``p`` ranks.

    Size convention (shared with the macro backend): for rooted
    distribution ops (``bcast``, ``scatter``) ``m_bytes`` is the total
    payload at the root; for contribution ops (``gather``,
    ``allgather``, ``reduce``, ``allreduce``) it is one rank's
    contribution; for ``barrier`` it is ignored.
    """
    return estimate(CostQuery(
        op=op, algorithm=algorithm, p=p, nbytes=m_bytes,
        alpha=params.alpha, beta=params.beta, segments=segments,
    )).seconds
