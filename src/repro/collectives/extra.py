"""Additional collectives: Bruck allgather, reduce-scatter, and the
Rabenseifner allreduce.

These round out the library to the set a production MPI implements and
give the 2.5D/3D baselines better reduction paths:

* :func:`allgather_bruck` — ``ceil(log2 p)`` rounds for *any* p;
  beats the ring on latency for small payloads.
* :func:`reduce_scatter_ring` — bandwidth-optimal ring: each rank ends
  with one combined chunk, ``(p-1)/p`` of the data crossing each link.
* :func:`allreduce_rabenseifner` — reduce-scatter + allgather; for
  large messages this halves the bandwidth term of the
  reduce-then-broadcast approach.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.payloads import (
    combine_payloads,
    join_payload,
    split_payload,
)

Gen = Generator[Any, Any, Any]

TAG_BRUCK = -80
TAG_RSCAT = -81
TAG_RAG = -82


def allgather_bruck(comm: Any, obj: Any) -> Gen:
    """Bruck's allgather: in round ``k`` rank ``r`` sends everything it
    has to ``r - 2^k`` and receives from ``r + 2^k``; after
    ``ceil(log2 p)`` rounds every rank holds all ``p`` items (then
    locally rotates them into rank order)."""
    size = comm.size
    me = comm.rank
    items: dict[int, Any] = {0: obj}  # keyed by offset from me
    if size == 1:
        return [obj]
    dist = 1
    while dist < size:
        dst = (me - dist) % size
        src = (me + dist) % size
        # Send the offsets I currently hold that the partner lacks.
        bundle = [(off, val) for off, val in items.items() if off < dist]
        incoming = yield from comm.sendrecv(
            bundle, dst, src, sendtag=TAG_BRUCK, recvtag=TAG_BRUCK
        )
        for off, val in incoming:
            items[off + dist] = val
        dist *= 2
    out = [None] * size
    for off, val in items.items():
        if off < size:
            out[(me + off) % size] = val
    return out


def reduce_scatter_ring(comm: Any, obj: Any) -> Gen:
    """Ring reduce-scatter of the element-wise sum.

    ``obj`` (same shape on every rank) is cut into ``p`` chunks; after
    ``p-1`` rounds rank ``r`` returns the fully reduced chunk with
    index ``(r+1) mod p`` as a segment object (whose ``.index`` carries
    the chunk position, so :func:`repro.payloads.join_payload`
    reassembles regardless of which rank held what).
    """
    size = comm.size
    me = comm.rank
    chunks = split_payload(obj, size)
    if size == 1:
        return chunks[0]
    right = (me + 1) % size
    left = (me - 1) % size
    # Round q: send the (partially reduced) chunk for index
    # (me - q) mod p to the right; receive and fold (me - q - 1) mod p.
    acc = {idx: seg for idx, seg in enumerate(chunks)}
    carry_idx = me
    for _q in range(size - 1):
        outgoing = acc.pop(carry_idx)
        incoming = yield from comm.sendrecv(
            outgoing, right, left, sendtag=TAG_RSCAT, recvtag=TAG_RSCAT
        )
        carry_idx = (carry_idx - 1) % size
        mine = acc[carry_idx]
        merged_data = combine_payloads(mine.data, incoming.data)
        acc[carry_idx] = type(mine)(
            index=mine.index, total=mine.total, data=merged_data,
            shape=mine.shape, phantom=mine.phantom,
        )
    return acc[carry_idx]


def allreduce_rabenseifner(comm: Any, obj: Any) -> Gen:
    """Reduce-scatter + allgather allreduce (Rabenseifner's algorithm).

    Bandwidth ``~2 (p-1)/p * m * beta`` — half of reduce+broadcast's —
    at ``2(p-1)`` latency; the large-message allreduce of choice.
    """
    size = comm.size
    if size == 1:
        return obj
    my_segment = yield from reduce_scatter_ring(comm, obj)
    # Ring allgather of the reduced segments.
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    segments = {comm.rank: my_segment}
    carry = my_segment
    carry_idx = comm.rank
    for _q in range(size - 1):
        incoming = yield from comm.sendrecv(
            carry, right, left, sendtag=TAG_RAG, recvtag=TAG_RAG
        )
        carry = incoming
        carry_idx = (carry_idx - 1) % size
        segments[carry_idx] = incoming
    ordered = [segments[i] for i in range(size)]
    return join_payload(ordered)
