"""Collective communication algorithms over simulated communicators.

The paper's key observation is that SUMMA's communication is all
broadcast, so the broadcast algorithm determines the constant factors.
This package implements the broadcast algorithms the paper analyses
(binomial tree and Van de Geijn scatter-allgather) plus the classical
alternatives (flat, binary, chain, pipelined chain), and the other
collectives the baseline matmul algorithms need (scatter, gather,
allgather, reduce, allreduce, barrier).

Every algorithm is a generator function over a duck-typed communicator
(:class:`repro.mpi.Comm`), so they run unchanged inside the full
discrete-event simulator and inside the step-model micro-simulations.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ConfigurationError
from repro.collectives.bcast import (
    bcast_binary,
    bcast_binomial,
    bcast_chain,
    bcast_flat,
    bcast_pipelined,
    bcast_vandegeijn,
)
from repro.collectives.ft import bcast_ft
from repro.collectives.pipelined import (
    bcast_fourcolor,
    bcast_hypersystolic,
    bcast_segmented,
    fourcolor_schedule,
    validate_link_coloring,
)
from repro.collectives.allgather import allgather_rd, allgather_ring
from repro.collectives.extra import (
    allgather_bruck,
    allreduce_rabenseifner,
    reduce_scatter_ring,
)
from repro.collectives.reduce import allreduce_rd, reduce_binomial, reduce_flat
from repro.collectives.cost import (
    bcast_bandwidth_factor,
    bcast_latency_factor,
    bcast_time,
)

Gen = Generator[Any, Any, Any]

#: Registry of broadcast algorithms by name.
BROADCAST_ALGORITHMS: dict[str, Callable[..., Gen]] = {
    "flat": bcast_flat,
    "binomial": bcast_binomial,
    "binary": bcast_binary,
    "chain": bcast_chain,
    "pipelined": bcast_pipelined,
    "segmented": bcast_segmented,
    "fourcolor": bcast_fourcolor,
    "hypersystolic": bcast_hypersystolic,
    "vandegeijn": bcast_vandegeijn,
    "ft_binomial": bcast_ft,
}

ALLGATHER_ALGORITHMS: dict[str, Callable[..., Gen]] = {
    "ring": allgather_ring,
    "recursive_doubling": allgather_rd,
    "bruck": allgather_bruck,
}

REDUCE_ALGORITHMS: dict[str, Callable[..., Gen]] = {
    "binomial": reduce_binomial,
    "flat": reduce_flat,
}

ALLREDUCE_ALGORITHMS: dict[str, Callable[..., Gen]] = {
    "recursive_doubling": allreduce_rd,
    "rabenseifner": allreduce_rabenseifner,
}


def get_allreduce(name: str) -> Callable[..., Gen]:
    """Look up an allreduce algorithm by registry name."""
    try:
        return ALLREDUCE_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown allreduce algorithm {name!r}; "
            f"choose from {sorted(ALLREDUCE_ALGORITHMS)}"
        ) from None


def get_broadcast(name: str) -> Callable[..., Gen]:
    """Look up a broadcast algorithm by registry name."""
    try:
        return BROADCAST_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown broadcast algorithm {name!r}; "
            f"choose from {sorted(BROADCAST_ALGORITHMS)}"
        ) from None


def get_allgather(name: str) -> Callable[..., Gen]:
    """Look up an allgather algorithm by registry name."""
    try:
        return ALLGATHER_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown allgather algorithm {name!r}; "
            f"choose from {sorted(ALLGATHER_ALGORITHMS)}"
        ) from None


def get_reduce(name: str) -> Callable[..., Gen]:
    """Look up a reduce algorithm by registry name."""
    try:
        return REDUCE_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown reduce algorithm {name!r}; "
            f"choose from {sorted(REDUCE_ALGORITHMS)}"
        ) from None


__all__ = [
    "BROADCAST_ALGORITHMS",
    "ALLGATHER_ALGORITHMS",
    "REDUCE_ALGORITHMS",
    "ALLREDUCE_ALGORITHMS",
    "get_broadcast",
    "get_allgather",
    "get_reduce",
    "get_allreduce",
    "allgather_bruck",
    "allreduce_rabenseifner",
    "reduce_scatter_ring",
    "bcast_flat",
    "bcast_binomial",
    "bcast_binary",
    "bcast_chain",
    "bcast_pipelined",
    "bcast_segmented",
    "bcast_fourcolor",
    "bcast_hypersystolic",
    "bcast_vandegeijn",
    "bcast_ft",
    "fourcolor_schedule",
    "validate_link_coloring",
    "allgather_ring",
    "allgather_rd",
    "reduce_binomial",
    "reduce_flat",
    "allreduce_rd",
    "bcast_time",
    "bcast_latency_factor",
    "bcast_bandwidth_factor",
]
