"""Nonblocking (split-phase) tree broadcast for overlap schemes.

The paper notes all its gains come *without* overlapping communication
and computation, and names overlap as a further opportunity.  Overlap
needs broadcasts that can be *started* before the data is needed and
*finished* later; this module provides a split-phase binomial
broadcast:

* :meth:`IBcast.post` — pre-post the receive from the tree parent
  (roots skip this).  Cheap; call as early as possible.
* :meth:`IBcast.complete` — wait for the payload, then *nonblockingly*
  forward it to the tree children and return it.  The forward transfers
  progress while the caller computes; outstanding send handles are
  collected by :meth:`IBcast.finish` (or a final ``waitall``).

The tree is the same binomial used by the blocking
:func:`repro.collectives.bcast.bcast_binomial`, so the per-broadcast
byte/hop pattern is identical — only the schedule shifts.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import CommunicatorError, ConfigurationError
from repro.payloads import join_payload, split_payload

Gen = Generator[Any, Any, Any]

TAG_IBCAST = -70
#: Segment-streaming tags live on their own residue class (mod 10) so
#: they can never collide with whole-message IBcasts of any salt.
TAG_IBCAST_SEG = -71


class IBcast:
    """Split-phase binomial broadcast on ``comm`` rooted at ``root``.

    One instance per broadcast; the phases must be driven in order:
    ``post`` (all ranks), ``complete`` (all ranks), ``finish``
    (optional, senders only).  ``tag_salt`` distinguishes concurrent
    broadcasts on the same communicator (e.g. per pivot step).

    ``segments`` switches on pipeline streaming: the payload is cut
    into that many segments which flow down the tree independently, so
    a forwarded early segment can cross the wire while later segments
    are still arriving — and, in the overlap runners, while the caller
    is inside its gemm.  All participants of one broadcast must agree
    on the segment count (it is part of the wire protocol); segment
    tags are ``TAG_IBCAST_SEG - 10*(tag_salt*segments + k)``, a residue
    class disjoint from the whole-message tags.  ``segments=None``
    keeps the classic single-message protocol bit-for-bit.
    """

    def __init__(self, comm: Any, root: int, tag_salt: int = 0,
                 segments: int | None = None):
        if not (0 <= root < comm.size):
            raise CommunicatorError(
                f"root {root} outside communicator of size {comm.size}"
            )
        if segments is not None and segments < 1:
            raise ConfigurationError(
                f"segments must be >= 1, got {segments}"
            )
        self.comm = comm
        self.root = root
        self.tag = TAG_IBCAST - 10 * tag_salt
        self.segments = segments
        self._seg_tag0 = (
            TAG_IBCAST_SEG - 10 * (tag_salt * segments)
            if segments is not None else None
        )
        size = comm.size
        self.vr = (comm.rank - root) % size
        self._recv_handle = None
        self._recv_handles: list[Any] = []
        self._send_handles: list[Any] = []
        self._posted = False
        self._completed = False

    def _parent(self) -> int | None:
        if self.vr == 0:
            return None
        high = 1 << (self.vr.bit_length() - 1)
        return ((self.vr - high) + self.root) % self.comm.size

    def _children(self) -> list[int]:
        size = self.comm.size
        nrounds = (size - 1).bit_length()
        start = self.vr.bit_length() if self.vr else 0
        out = []
        for k in range(start, nrounds):
            child = self.vr + (1 << k)
            if child < size:
                out.append((child + self.root) % size)
        return out

    def post(self) -> Gen:
        """Pre-post the receive(s) from the tree parent (no-op on the
        root): one handle per segment when streaming."""
        if self._posted:
            raise CommunicatorError("IBcast.post called twice")
        self._posted = True
        parent = self._parent()
        if parent is None:
            return
        if self.segments is None:
            self._recv_handle = yield from self.comm.irecv(parent, tag=self.tag)
            return
        for k in range(self.segments):
            h = yield from self.comm.irecv(
                parent, tag=self._seg_tag0 - 10 * k)
            self._recv_handles.append(h)

    def complete(self, obj: Any = None) -> Gen:
        """Obtain the payload (``obj`` on the root) and forward it
        nonblockingly down the tree; returns the payload.

        When streaming, each segment is forwarded the moment it lands,
        so downstream ranks see segment ``k`` without waiting for
        segment ``k+1`` to reach us.
        """
        if not self._posted:
            raise CommunicatorError("IBcast.complete before post")
        if self._completed:
            raise CommunicatorError("IBcast.complete called twice")
        self._completed = True
        children = self._children()
        if self.segments is None:
            if self._recv_handle is not None:
                obj = yield from self.comm.wait(self._recv_handle)
            elif self.vr != 0:
                raise CommunicatorError("non-root rank completed without post")
            for child in children:
                handle = yield from self.comm.isend(obj, child, tag=self.tag)
                self._send_handles.append(handle)
            return obj
        if self.vr == 0:
            parts = split_payload(obj, self.segments)
            for k, part in enumerate(parts):
                for child in children:
                    h = yield from self.comm.isend(
                        part, child, tag=self._seg_tag0 - 10 * k)
                    self._send_handles.append(h)
            return obj
        if not self._recv_handles:
            raise CommunicatorError("non-root rank completed without post")
        parts = []
        for k in range(self.segments):
            part = yield from self.comm.wait(self._recv_handles[k])
            parts.append(part)
            for child in children:
                h = yield from self.comm.isend(
                    part, child, tag=self._seg_tag0 - 10 * k)
                self._send_handles.append(h)
        self._recv_handles = []
        return join_payload(parts)

    def finish(self) -> Gen:
        """Wait for all outstanding forward sends (idempotent)."""
        handles, self._send_handles = self._send_handles, []
        for handle in handles:
            yield from self.comm.wait(handle)
