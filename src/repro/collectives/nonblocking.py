"""Nonblocking (split-phase) tree broadcast for overlap schemes.

The paper notes all its gains come *without* overlapping communication
and computation, and names overlap as a further opportunity.  Overlap
needs broadcasts that can be *started* before the data is needed and
*finished* later; this module provides a split-phase binomial
broadcast:

* :meth:`IBcast.post` — pre-post the receive from the tree parent
  (roots skip this).  Cheap; call as early as possible.
* :meth:`IBcast.complete` — wait for the payload, then *nonblockingly*
  forward it to the tree children and return it.  The forward transfers
  progress while the caller computes; outstanding send handles are
  collected by :meth:`IBcast.finish` (or a final ``waitall``).

The tree is the same binomial used by the blocking
:func:`repro.collectives.bcast.bcast_binomial`, so the per-broadcast
byte/hop pattern is identical — only the schedule shifts.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import CommunicatorError

Gen = Generator[Any, Any, Any]

TAG_IBCAST = -70


class IBcast:
    """Split-phase binomial broadcast on ``comm`` rooted at ``root``.

    One instance per broadcast; the phases must be driven in order:
    ``post`` (all ranks), ``complete`` (all ranks), ``finish``
    (optional, senders only).  ``tag_salt`` distinguishes concurrent
    broadcasts on the same communicator (e.g. per pivot step).
    """

    def __init__(self, comm: Any, root: int, tag_salt: int = 0):
        if not (0 <= root < comm.size):
            raise CommunicatorError(
                f"root {root} outside communicator of size {comm.size}"
            )
        self.comm = comm
        self.root = root
        self.tag = TAG_IBCAST - 10 * tag_salt
        size = comm.size
        self.vr = (comm.rank - root) % size
        self._recv_handle = None
        self._send_handles: list[Any] = []
        self._posted = False
        self._completed = False

    def _parent(self) -> int | None:
        if self.vr == 0:
            return None
        high = 1 << (self.vr.bit_length() - 1)
        return ((self.vr - high) + self.root) % self.comm.size

    def _children(self) -> list[int]:
        size = self.comm.size
        nrounds = (size - 1).bit_length()
        start = self.vr.bit_length() if self.vr else 0
        out = []
        for k in range(start, nrounds):
            child = self.vr + (1 << k)
            if child < size:
                out.append((child + self.root) % size)
        return out

    def post(self) -> Gen:
        """Pre-post the receive from the tree parent (no-op on the root)."""
        if self._posted:
            raise CommunicatorError("IBcast.post called twice")
        self._posted = True
        parent = self._parent()
        if parent is not None:
            self._recv_handle = yield from self.comm.irecv(parent, tag=self.tag)

    def complete(self, obj: Any = None) -> Gen:
        """Obtain the payload (``obj`` on the root) and forward it
        nonblockingly down the tree; returns the payload."""
        if not self._posted:
            raise CommunicatorError("IBcast.complete before post")
        if self._completed:
            raise CommunicatorError("IBcast.complete called twice")
        self._completed = True
        if self._recv_handle is not None:
            obj = yield from self.comm.wait(self._recv_handle)
        elif self.vr != 0:
            raise CommunicatorError("non-root rank completed without post")
        for child in self._children():
            handle = yield from self.comm.isend(obj, child, tag=self.tag)
            self._send_handles.append(handle)
        return obj

    def finish(self) -> Gen:
        """Wait for all outstanding forward sends (idempotent)."""
        handles, self._send_handles = self._send_handles, []
        for handle in handles:
            yield from self.comm.wait(handle)
