"""Gather: collect every rank's contribution onto the root.

The tree gather replays the scatter's range-splitting tree bottom-up:
each "mid" rank bundles its half-range and hands it to the "lo" rank
one level up, so the root receives ``ceil(log2 p)`` bundles.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.collectives.scatter import split_path

Gen = Generator[Any, Any, Any]

TAG_GATHER_OP = -30


def gather_linear(comm: Any, obj: Any, root: int) -> Gen:
    """Every rank sends directly to the root; returns the list (by
    communicator rank) on the root, ``None`` elsewhere."""
    if comm.rank != root:
        yield from comm.send(obj, root, tag=TAG_GATHER_OP)
        return None
    out: list[Any] = [None] * comm.size
    out[root] = obj
    for r in range(comm.size):
        if r != root:
            out[r] = yield from comm.recv(r, tag=TAG_GATHER_OP)
    return out


def gather_binomial(comm: Any, obj: Any, root: int) -> Gen:
    """Range-splitting tree gather, mirror of the tree scatter.

    Returns the list indexed by communicator rank on the root, ``None``
    elsewhere.
    """
    size = comm.size
    if size == 1:
        return [obj]
    vr = (comm.rank - root) % size
    held: dict[int, Any] = {vr: obj}

    for lo, mid, hi in reversed(split_path(size, vr)):
        if vr == mid:
            bundle = [held[i] for i in range(mid, hi)]
            yield from comm.send(bundle, (lo + root) % size, tag=TAG_GATHER_OP)
            return None  # contributed; done
        if vr == lo:
            bundle = yield from comm.recv((mid + root) % size, tag=TAG_GATHER_OP)
            for i, val in zip(range(mid, hi), bundle):
                held[i] = val

    assert vr == 0
    out: list[Any] = [None] * size
    for i, val in held.items():
        out[(i + root) % size] = val
    return out
