"""All-to-all personalised exchange.

Needed by layout *redistribution* (block ↔ block-cyclic, grid ↔ grid),
where every rank owes every other rank a distinct piece of its tile.

Two schedules:

* :func:`alltoall_pairwise` — ``p-1`` rounds of simultaneous pairwise
  exchanges (XOR schedule for power-of-two sizes, shifted-ring
  otherwise): bandwidth-optimal, contention-friendly, the standard
  large-message algorithm.
* :func:`alltoall_bruck` — ``ceil(log2 p)`` rounds moving
  ``m*p/2`` data per round: latency-optimal for small payloads.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

TAG_A2A = -90
TAG_A2A_BRUCK = -91


def _check_parts(comm: Any, parts: Sequence[Any]) -> None:
    if len(parts) != comm.size:
        raise ConfigurationError(
            f"alltoall needs exactly {comm.size} parts, got {len(parts)}"
        )


def alltoall_pairwise(comm: Any, parts: Sequence[Any]) -> Gen:
    """Pairwise exchange: returns ``out`` with ``out[r]`` = the part
    rank ``r`` addressed to me.  ``parts[me]`` stays local."""
    _check_parts(comm, parts)
    size = comm.size
    me = comm.rank
    out: list[Any] = [None] * size
    out[me] = parts[me]
    if size == 1:
        return out
    power_of_two = size & (size - 1) == 0
    for step in range(1, size):
        if power_of_two:
            partner = me ^ step
        else:
            partner = (me + step) % size
            # Shifted ring: I send to (me+step), receive from (me-step);
            # full-duplex sendrecv with the two different peers.
            recv_from = (me - step) % size
            incoming = yield from comm.sendrecv(
                parts[partner], partner, recv_from,
                sendtag=TAG_A2A, recvtag=TAG_A2A,
            )
            out[recv_from] = incoming
            continue
        incoming = yield from comm.sendrecv(
            parts[partner], partner, partner,
            sendtag=TAG_A2A, recvtag=TAG_A2A,
        )
        out[partner] = incoming
    return out


def alltoall_bruck(comm: Any, parts: Sequence[Any]) -> Gen:
    """Bruck all-to-all: log rounds, each moving the half of the (index-
    rotated) parts whose bit ``k`` is set; latency ``ceil(log2 p)``
    at the price of each item travelling ``~log2(p)/2`` hops."""
    _check_parts(comm, parts)
    size = comm.size
    me = comm.rank
    if size == 1:
        return [parts[0]]
    # Phase 1: local rotation so slot d holds the part for (me + d).
    slots: list[Any] = [parts[(me + d) % size] for d in range(size)]
    # Phase 2: for each bit, ship the slots with that bit set forward by
    # k ranks; a part in slot d thus displaces by exactly d in total and
    # lands on its destination.
    k = 1
    while k < size:
        dst = (me + k) % size
        src = (me - k) % size
        moving_idx = [d for d in range(size) if d & k]
        bundle = [(d, slots[d]) for d in moving_idx]
        incoming = yield from comm.sendrecv(
            bundle, dst, src, sendtag=TAG_A2A_BRUCK, recvtag=TAG_A2A_BRUCK
        )
        for d, val in incoming:
            slots[d] = val
        k <<= 1
    # Phase 3: slot d now holds the part *from* rank (me - d).
    out: list[Any] = [None] * size
    for d in range(size):
        out[(me - d) % size] = slots[d]
    return out
