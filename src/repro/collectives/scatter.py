"""Scatter: distribute ``parts[i]`` from the root to rank ``i``.

The tree scatter uses *range splitting*: the holder of a contiguous
range of parts repeatedly sends the upper half to the first rank of
that half, halving its own range, until every rank holds exactly its
own part.  This gives ``ceil(log2 p)`` rounds on the critical path and
moves each byte only along its own root-to-leaf path — the classic
MPI_Scatter tree, and the scatter phase of the Van de Geijn broadcast.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.errors import ConfigurationError

Gen = Generator[Any, Any, Any]

TAG_SCATTER_OP = -20


def split_path(size: int, vr: int) -> list[tuple[int, int, int]]:
    """The sequence of ``(lo, mid, hi)`` range splits on relative rank
    ``vr``'s root-to-leaf path in the range-splitting tree over
    ``[0, size)``.  Shared by scatter (top-down) and gather (replayed
    bottom-up)."""
    path = []
    lo, hi = 0, size
    while hi - lo > 1:
        mid = lo + (hi - lo + 1) // 2
        path.append((lo, mid, hi))
        if vr < mid:
            hi = mid
        else:
            lo = mid
    return path


def range_scatter_rel(
    comm: Any, held: list[Any] | None, root: int, tag: int = TAG_SCATTER_OP
) -> Gen:
    """Scatter ``held`` (given on the root, indexed by *relative* rank)
    down the range-splitting tree; returns this rank's item."""
    size = comm.size
    vr = (comm.rank - root) % size
    if size == 1:
        if held is None or len(held) != 1:
            raise ConfigurationError("scatter root needs exactly 1 part")
        return held[0]
    if vr == 0:
        if held is None or len(held) != size:
            raise ConfigurationError(
                f"scatter root needs exactly {size} parts, got "
                f"{None if held is None else len(held)}"
            )
        held = list(held)

    lo, hi = 0, size
    while hi - lo > 1:
        mid = lo + (hi - lo + 1) // 2
        if vr < mid:
            if vr == lo:
                yield from comm.send(
                    held[mid - lo : hi - lo], (mid + root) % size, tag=tag
                )
                held = held[: mid - lo]
            hi = mid
        else:
            if vr == mid:
                held = yield from comm.recv((lo + root) % size, tag=tag)
                held = list(held)
            lo = mid
    assert held is not None and len(held) == 1
    return held[0]


def scatter_binomial(comm: Any, parts: Sequence[Any] | None, root: int) -> Gen:
    """Tree scatter; ``parts`` (on the root) is indexed by communicator
    rank.  Returns this rank's part everywhere."""
    size = comm.size
    held = None
    if comm.rank == root:
        if parts is None or len(parts) != size:
            raise ConfigurationError(
                f"scatter root needs exactly {size} parts, got "
                f"{None if parts is None else len(parts)}"
            )
        # Reorder so relative rank i's part sits at index i.
        held = [parts[(i + root) % size] for i in range(size)]
    result = yield from range_scatter_rel(comm, held, root)
    return result


def scatter_linear(comm: Any, parts: Sequence[Any] | None, root: int) -> Gen:
    """Root sends each rank its part directly; ``O(p)`` latency."""
    if comm.rank == root:
        if parts is None or len(parts) != comm.size:
            raise ConfigurationError(
                f"scatter root needs exactly {comm.size} parts, got "
                f"{None if parts is None else len(parts)}"
            )
        for r in range(comm.size):
            if r != root:
                yield from comm.send(parts[r], r, tag=TAG_SCATTER_OP)
        return parts[root]
    part = yield from comm.recv(root, tag=TAG_SCATTER_OP)
    return part
