"""Pipelined / hyper-systolic broadcast family (ROADMAP item 3).

Three segmented algorithms join the plain pipelined chain of
:mod:`repro.collectives.bcast`; all chop the message into ``S``
segments so later stages stream while earlier stages are forwarded
(and, in the overlap runners, while DGEMM runs):

``segmented``
    Pipelined *balanced binary tree*: relative rank ``vr`` has children
    ``2vr+1``/``2vr+2``; every non-root pre-posts all ``S`` segment
    receives, then forwards each segment to both children with blocking
    sends.  An inner node needs two sends per segment, so the steady
    cadence is ``2T`` per segment with ``T = alpha + (m/S)*beta``;
    the fill phase costs ``fill(p)`` slots (the deepest leaf's arrival
    slot of segment 0, :func:`repro.costs.registry.segmented_fill_slots`):

        ``t = (fill(p) + 2(S-1)) * T``   (``p >= 3``; ``S*T`` at p=2)

    Logarithmic fill like the binomial tree, pipelined drain like the
    chain — the tree analogue of the related repo's
    ``summa_manual_multicasting_pipelined``.

``fourcolor``
    Conflict-free *bidirectional ring* multicast, the 1-D projection of
    the related repo's ``summa_4color_pipelined`` torus schedule.  The
    message splits into ``2S`` segments; ``S`` flow clockwise
    (``0 -> 1 -> ... -> p-1``), ``S`` counter-clockwise
    (``0 -> p-1 -> ... -> 1``).  Each transfer carries a color
    ``2*direction + slot%2``; :func:`fourcolor_schedule` materialises
    the slot/link schedule and :func:`validate_link_coloring` proves no
    directed link is used twice in a slot (both ring directions of one
    link pair count as distinct full-duplex channels).  Every byte
    crosses each link once:

        ``t = (p - 2 + S) * (alpha + (m/(2S))*beta)``   (``p >= 3``)

``hypersystolic``
    Galli's generalized hyper-systolic ring (PAPERS.md): a coarse
    pipelined chain over anchor ranks ``0, K, 2K, ...`` with local
    pipelined chains inside each ``K``-group, stride ``K ~ sqrt(p)``
    chosen by :func:`repro.costs.registry.hypersystolic_stride`.
    Segment ``k`` reaches depth-``d`` ranks at slot ``d + k``; the
    deepest rank sits at depth ``D = max_a(a + g_a - 1)`` over group
    sizes ``g_a`` (:func:`repro.costs.registry.hypersystolic_depth`):

        ``t = (D + S - 1) * (alpha + (m/S)*beta)``

    Same bandwidth as the chain at roughly ``2*sqrt(p)`` fill latency.

Pacing discipline (all three): the engine's default rendezvous
semantics make a *blocking* send (or wait-on-isend) complete at
wire-clear, so senders pace one segment per slot by blocking on the
transfer(s) of the current segment.  Where a rank legitimately drives
two distinct full-duplex channels in the same slot (the root and
forwarders of ``fourcolor``; hyper-systolic anchors feeding the coarse
and local chains), it posts both isends and — at the root — waits for
both before the next segment.  Non-root fire-and-forget forwards are
collected and waited at the end: that costs zero virtual time (their
completions precede the makespan) but keeps the :mod:`repro.verify`
match graph free of never-waited sends.
"""

from __future__ import annotations

from typing import Any, Generator, NamedTuple

from repro.costs.registry import hypersystolic_stride
from repro.errors import ConfigurationError, SimulationError
from repro.payloads import join_payload, split_payload

Gen = Generator[Any, Any, Any]

#: Reserved tags, distinct residues mod 10 from the TAG_* families in
#: :mod:`repro.collectives.bcast` (-1..-4) and the IBcast family (-70-).
TAG_SEGMENTED = -5
TAG_FOURCOLOR_CW = -6    # clockwise stream (0 -> 1 -> ...)
TAG_FOURCOLOR_CCW = -7   # counter-clockwise stream (0 -> p-1 -> ...)
TAG_HS_COARSE = -8       # hyper-systolic anchor-to-anchor chain
TAG_HS_LOCAL = -9        # hyper-systolic within-group chain


def _rel(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _abs(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def _nseg(segments: int | None, size: int) -> int:
    """Resolve the segment count (same size-oblivious default as the
    pipelined chain); reject nonsense eagerly."""
    if segments is None:
        return max(4, (size - 1).bit_length())
    if segments < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")
    return segments


# ---------------------------------------------------------------------------
# (a) segmented: pipelined balanced binary tree
# ---------------------------------------------------------------------------

def bcast_segmented(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Pipelined balanced binary tree (see module docstring)."""
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    nseg = _nseg(segments, size)
    children = [_abs(c, root, size) for c in (2 * vr + 1, 2 * vr + 2)
                if c < size]

    if vr == 0:
        parts = split_payload(obj, nseg)
        for k, part in enumerate(parts):
            for child in children:
                yield from comm.send(part, child, tag=TAG_SEGMENTED - 10 * k)
        return obj

    # Pre-post every receive so the parent's stream is never throttled
    # by our forwarding sends.
    parent = _abs((vr - 1) // 2, root, size)
    handles = []
    for k in range(nseg):
        h = yield from comm.irecv(parent, tag=TAG_SEGMENTED - 10 * k)
        handles.append(h)
    parts = []
    for k in range(nseg):
        part = yield from comm.wait(handles[k])
        parts.append(part)
        for child in children:
            yield from comm.send(part, child, tag=TAG_SEGMENTED - 10 * k)
    return join_payload(parts)


# ---------------------------------------------------------------------------
# (b) fourcolor: conflict-free bidirectional ring multicast
# ---------------------------------------------------------------------------

class LinkStep(NamedTuple):
    """One wire transfer of the 4-color schedule."""

    slot: int    # discrete time slot (cadence T)
    src: int     # relative source rank
    dst: int     # relative destination rank
    color: int   # 2*direction + slot parity, in {0, 1, 2, 3}
    seg: int     # segment index within the stream


def fourcolor_schedule(
    p: int, segments: int, root: int = 0
) -> list[LinkStep]:
    """The slot-by-slot link schedule :func:`bcast_fourcolor` realises
    (relative ranks; ``root`` only shifts the absolute labels, so it is
    accepted and ignored beyond validation).

    Color classes: clockwise transfers get ``0``/``1`` by slot parity,
    counter-clockwise ``2``/``3`` — the 1-D shadow of the related
    repo's 4-color torus schedule, where same-colored transfers never
    share a directed link.
    """
    if p < 2:
        raise ConfigurationError(f"fourcolor schedule needs p >= 2, got {p}")
    if segments < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")
    if not 0 <= root < p:
        raise ConfigurationError(f"root {root} out of range for p={p}")
    if p == 2:
        return [LinkStep(slot=0, src=0, dst=1, color=0, seg=0)]
    steps = []
    for k in range(segments):
        # Clockwise: segment k leaves the root in slot k, crosses link
        # vr -> vr+1 in slot vr + k.
        for vr in range(p - 1):
            slot = vr + k
            steps.append(LinkStep(slot, vr, vr + 1, 2 * 0 + slot % 2, k))
        # Counter-clockwise: crosses vr+1 -> vr (mod p) in slot p-1-vr+k-1
        # ... i.e. link (vr+1) -> vr for vr in p-1..1; the root->p-1 hop
        # is slot k.
        for hop in range(p - 1):
            src = (p - hop) % p     # hop 0: root (0) -> p-1
            dst = p - 1 - hop      # stops at rank 1; the root holds all
            slot = hop + k
            steps.append(LinkStep(slot, src, dst, 2 * 1 + slot % 2, k))
    steps.sort()
    return steps


def validate_link_coloring(steps: list[LinkStep]) -> None:
    """Structural check: no directed link carries two transfers in the
    same slot, and every transfer's color matches its direction/parity
    class.  Raises :class:`~repro.errors.SimulationError` on the
    first conflict — the mutation tests seed one to prove the check
    bites."""
    seen: dict[tuple[int, int, int], LinkStep] = {}
    for st in steps:
        key = (st.slot, st.src, st.dst)
        other = seen.get(key)
        if other is not None:
            raise SimulationError(
                f"link-coloring conflict: link {st.src}->{st.dst} carries "
                f"segment {other.seg} and segment {st.seg} in slot {st.slot}"
            )
        seen[key] = st
        direction = 0 if st.dst == st.src + 1 else 1
        expected = 2 * direction + st.slot % 2
        if st.color != expected:
            raise SimulationError(
                f"link-coloring conflict: transfer {st.src}->{st.dst} in "
                f"slot {st.slot} has color {st.color}, expected {expected}"
            )


def bcast_fourcolor(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Conflict-free bidirectional ring multicast (see module docstring)."""
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    nseg = _nseg(segments, size)

    if size == 2:
        # One link pair: a split gains nothing, send the message whole.
        if vr == 0:
            yield from comm.send(obj, _abs(1, root, size), tag=TAG_FOURCOLOR_CW)
            return obj
        return (yield from comm.recv(root, tag=TAG_FOURCOLOR_CW))

    right = _abs(vr + 1, root, size)
    left = _abs(vr - 1, root, size)

    if vr == 0:
        parts = split_payload(obj, 2 * nseg)
        for k in range(nseg):
            # Two distinct full-duplex channels (root->1, root->p-1):
            # post both, wait both — next segment pair leaves one slot
            # later.
            h_cw = yield from comm.isend(
                parts[k], right, tag=TAG_FOURCOLOR_CW - 10 * k)
            h_ccw = yield from comm.isend(
                parts[nseg + k], left, tag=TAG_FOURCOLOR_CCW - 10 * k)
            yield from comm.wait(h_cw)
            yield from comm.wait(h_ccw)
        return obj

    # Non-root: the clockwise stream arrives from vr-1 (forward to vr+1
    # unless we are the far end), the counter-clockwise stream from vr+1
    # (forward to vr-1 unless that is the root).
    cw_handles = []
    for k in range(nseg):
        h = yield from comm.irecv(left, tag=TAG_FOURCOLOR_CW - 10 * k)
        cw_handles.append(h)
    ccw_handles = []
    for k in range(nseg):
        h = yield from comm.irecv(right, tag=TAG_FOURCOLOR_CCW - 10 * k)
        ccw_handles.append(h)

    # Service segments in arrival-slot order (clockwise segment k lands
    # in slot vr+k, counter-clockwise in slot (p-vr)+k) so a near
    # stream's forward never waits behind a far stream's arrival.
    events = sorted(
        [(vr + k, 0, k) for k in range(nseg)]
        + [(size - vr + k, 1, k) for k in range(nseg)]
    )
    parts: list[Any] = [None] * (2 * nseg)
    forwards = []
    for _slot, stream, k in events:
        if stream == 0:
            part = yield from comm.wait(cw_handles[k])
            parts[k] = part
            if vr + 1 < size:
                h = yield from comm.isend(
                    part, right, tag=TAG_FOURCOLOR_CW - 10 * k)
                forwards.append(h)
        else:
            part = yield from comm.wait(ccw_handles[k])
            parts[nseg + k] = part
            if vr > 1:
                h = yield from comm.isend(
                    part, left, tag=TAG_FOURCOLOR_CCW - 10 * k)
                forwards.append(h)
    for h in forwards:
        yield from comm.wait(h)
    return join_payload(parts)


# ---------------------------------------------------------------------------
# (c) hypersystolic: Galli's generalized ring offsets
# ---------------------------------------------------------------------------

def bcast_hypersystolic(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Hyper-systolic segmented broadcast (see module docstring)."""
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    nseg = _nseg(segments, size)
    stride = hypersystolic_stride(size)
    group, offset = divmod(vr, stride)
    group_end = min((group + 1) * stride, size)  # exclusive, relative

    if vr == 0:
        coarse_next = _abs(stride, root, size) if stride < size else None
        local_next = _abs(1, root, size) if group_end > 1 else None
        parts = split_payload(obj, nseg)
        for k, part in enumerate(parts):
            # Coarse and local successors sit on distinct channels;
            # post both, wait both, one segment per slot.
            pending = []
            if coarse_next is not None:
                pending.append((yield from comm.isend(
                    part, coarse_next, tag=TAG_HS_COARSE - 10 * k)))
            if local_next is not None:
                pending.append((yield from comm.isend(
                    part, local_next, tag=TAG_HS_LOCAL - 10 * k)))
            for h in pending:
                yield from comm.wait(h)
        return obj

    if offset == 0:
        source = _abs((group - 1) * stride, root, size)
        tag0 = TAG_HS_COARSE
    else:
        source = _abs(vr - 1, root, size)
        tag0 = TAG_HS_LOCAL
    handles = []
    for k in range(nseg):
        h = yield from comm.irecv(source, tag=tag0 - 10 * k)
        handles.append(h)

    coarse_next = None
    if offset == 0 and (group + 1) * stride < size:
        coarse_next = _abs((group + 1) * stride, root, size)
    local_next = _abs(vr + 1, root, size) if vr + 1 < group_end else None

    parts = []
    forwards = []
    for k in range(nseg):
        part = yield from comm.wait(handles[k])
        parts.append(part)
        if coarse_next is not None:
            forwards.append((yield from comm.isend(
                part, coarse_next, tag=TAG_HS_COARSE - 10 * k)))
        if local_next is not None:
            forwards.append((yield from comm.isend(
                part, local_next, tag=TAG_HS_LOCAL - 10 * k)))
    for h in forwards:
        yield from comm.wait(h)
    return join_payload(parts)
