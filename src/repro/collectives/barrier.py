"""Dissemination barrier: ``ceil(log2 p)`` rounds of zero-byte tokens."""

from __future__ import annotations

from typing import Any, Generator

Gen = Generator[Any, Any, Any]

TAG_BARRIER = -60


def barrier_dissemination(comm: Any) -> Gen:
    """Hensgen–Finkel–Manber dissemination barrier.

    In round ``k`` rank ``r`` signals ``(r + 2**k) mod p`` and waits for
    the signal from ``(r - 2**k) mod p``; after ``ceil(log2 p)`` rounds
    every rank transitively depends on every other.
    """
    size = comm.size
    if size == 1:
        return
    dist = 1
    while dist < size:
        to = (comm.rank + dist) % size
        frm = (comm.rank - dist) % size
        yield from comm.sendrecv(
            None, to, frm, sendtag=TAG_BARRIER, recvtag=TAG_BARRIER, nbytes=0
        )
        dist *= 2
