"""Broadcast algorithms.

All algorithms work on arbitrary communicator sizes and roots by
operating on *relative* ranks ``vr = (rank - root) mod size`` so the
root is always relative rank 0.  Internal messages use the reserved
negative tag :data:`TAG_BCAST`.

Cost recap under Hockney (``p`` ranks, message ``m`` bytes), matching
:mod:`repro.collectives.cost`:

==============  =======================================================
flat            ``(p-1) * (alpha + m*beta)``
chain           ``(p-1) * (alpha + m*beta)``
binomial        ``ceil(log2 p) * (alpha + m*beta)``
binary          ``~2*depth * (alpha + m*beta)``
pipelined       ``(p-2+S) * (alpha + (m/S)*beta)``, S segments
segmented       ``(fill(p)-2+2S) * (alpha + (m/S)*beta)``, binary tree
fourcolor       ``(p-2+S) * (alpha + (m/(2S))*beta)``, bidirectional ring
hypersystolic   ``(D(p)+S-1) * (alpha + (m/S)*beta)``, stride-K ring
vandegeijn      ``(log2 p + p - 1)*alpha + 2*(p-1)/p * m*beta``
==============  =======================================================

The last one is the Van de Geijn/Barnett scatter–ring-allgather used by
the paper's Table II; binomial is Table I.  The segmented family
(middle three rows) lives in :mod:`repro.collectives.pipelined`:
``fill(p)`` is the pipelined binary tree's fill depth
(:func:`repro.costs.segmented_fill_slots`), ``D(p)`` the
hyper-systolic two-level ring depth at the registry's optimal stride
(:func:`repro.costs.hypersystolic_depth`).
"""

from __future__ import annotations

import math
from typing import Any, Generator

from repro.costs.registry import optimal_pipeline_segments  # noqa: F401 (re-export; the closed form lives in the cost registry)
from repro.errors import ConfigurationError
from repro.collectives.scatter import range_scatter_rel
from repro.payloads import join_payload, split_payload
from repro.simulator.requests import SendRecvRequest

Gen = Generator[Any, Any, Any]

#: Reserved tags (negative so user tags >= 0 never collide).
TAG_BCAST = -1
TAG_BCAST_PIPE = -2
TAG_SCATTER = -3
TAG_ALLGATHER = -4


def _rel(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _abs(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast_flat(comm: Any, obj: Any, root: int, *, segments: int | None = None) -> Gen:
    """Flat tree: the root sends to every other rank, one at a time."""
    if comm.size == 1:
        return obj
    if comm.rank == root:
        for vr in range(1, comm.size):
            yield from comm.send(obj, _abs(vr, root, comm.size), tag=TAG_BCAST)
        return obj
    obj = yield from comm.recv(root, tag=TAG_BCAST)
    return obj


def bcast_binomial(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Binomial tree: ``ceil(log2 p)`` rounds, message doubled per round.

    In round ``k`` every relative rank ``vr < 2**k`` sends to
    ``vr + 2**k`` (when that rank exists).
    """
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    nrounds = (size - 1).bit_length()
    # Receive exactly once: in the round where my high bit is the sender's.
    if vr != 0:
        high = 1 << (vr.bit_length() - 1)
        parent = vr - high
        obj = yield from comm.recv(_abs(parent, root, size), tag=TAG_BCAST)
        start_round = vr.bit_length()  # first round after my arrival
    else:
        start_round = 0
    for k in range(start_round, nrounds):
        child = vr + (1 << k)
        if child < size:
            yield from comm.send(obj, _abs(child, root, size), tag=TAG_BCAST)
    return obj


def bcast_binary(comm: Any, obj: Any, root: int, *, segments: int | None = None) -> Gen:
    """Balanced binary tree: relative rank ``vr`` has children
    ``2vr+1`` and ``2vr+2``; inner nodes forward to both children."""
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    if vr != 0:
        parent = (vr - 1) // 2
        obj = yield from comm.recv(_abs(parent, root, size), tag=TAG_BCAST)
    for child in (2 * vr + 1, 2 * vr + 2):
        if child < size:
            yield from comm.send(obj, _abs(child, root, size), tag=TAG_BCAST)
    return obj


def bcast_chain(comm: Any, obj: Any, root: int, *, segments: int | None = None) -> Gen:
    """Linear chain without segmentation: ``vr`` receives from ``vr-1``
    and forwards to ``vr+1``."""
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    if vr > 0:
        obj = yield from comm.recv(_abs(vr - 1, root, size), tag=TAG_BCAST)
    if vr + 1 < size:
        yield from comm.send(obj, _abs(vr + 1, root, size), tag=TAG_BCAST)
    return obj


def bcast_pipelined(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Pipelined chain: the message is cut into segments that stream
    down the chain, overlapping each hop's send with the next segment's
    arrival.

    ``segments=None`` picks a size-oblivious default of
    ``max(4, ceil(log2 p))`` — callers who know the platform's
    ``alpha/beta`` should pass :func:`optimal_pipeline_segments`.
    """
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)
    nseg = segments if segments is not None else max(4, (size - 1).bit_length())
    if nseg < 1:
        raise ConfigurationError(f"segments must be >= 1, got {segments}")

    prev_rank = _abs(vr - 1, root, size)
    next_rank = _abs(vr + 1, root, size)
    has_prev = vr > 0
    has_next = vr + 1 < size

    if not has_prev:
        parts = split_payload(obj, nseg)
        for k, part in enumerate(parts):
            yield from comm.send(part, next_rank, tag=TAG_BCAST_PIPE + -10 * k)
        return obj

    # Post every receive up front so upstream transfers overlap with our
    # forwarding sends (the engine matches them as upstream posts).
    handles = []
    for k in range(nseg):
        h = yield from comm.irecv(prev_rank, tag=TAG_BCAST_PIPE + -10 * k)
        handles.append(h)
    parts = []
    for k in range(nseg):
        part = yield from comm.wait(handles[k])
        parts.append(part)
        if has_next:
            yield from comm.send(part, next_rank, tag=TAG_BCAST_PIPE + -10 * k)
    return join_payload(parts)


def bcast_vandegeijn(
    comm: Any, obj: Any, root: int, *, segments: int | None = None
) -> Gen:
    """Van de Geijn broadcast: binomial *scatter* of ``p`` pieces, then
    ring *allgather* — the large-message algorithm of Table II.

    Latency ``(ceil(log2 p) + p - 1) * alpha``; each byte crosses the
    wire about twice: bandwidth term ``2*(p-1)/p * m * beta``.
    """
    size = comm.size
    if size == 1:
        return obj
    vr = _rel(comm.rank, root, size)

    # ---- tree scatter: relative rank vr ends with segment vr -----------
    held = split_payload(obj, size) if vr == 0 else None
    my_segment = yield from range_scatter_rel(comm, held, root, tag=TAG_SCATTER)

    # ---- ring allgather of the p segments -------------------------------
    # The hottest loop of every large-message broadcast: the sendrecv
    # helper is replaced by the engine's fused SendRecvRequest
    # (identical on the wire and in every charged wait time, but one
    # engine resume per round instead of four, with the per-call rank
    # checks and tag interning hoisted out of the loop).
    segs: list[Any] = [None] * size
    segs[vr] = my_segment
    world = comm._world_ranks
    right = world[_abs(vr + 1, root, size)]
    left = world[_abs(vr - 1, root, size)]
    wire_tag = comm._tag(TAG_ALLGATHER)
    carry = my_segment
    carry_index = vr
    # One request object reused every round: the engine consumes the
    # fields synchronously within the resume and never stores the
    # request, so mutating payload/nbytes between yields is safe.
    # carry is always a _Segment here, so .nbytes is its cached wire
    # size (nbytes_of would compute the same int).
    req = SendRecvRequest(right, left, wire_tag, wire_tag,
                          carry, carry.nbytes)
    for _round in range(size - 1):
        carry = yield req
        req.payload = carry
        req.nbytes = carry.nbytes
        carry_index = carry_index - 1 if carry_index else size - 1
        segs[carry_index] = carry

    return join_payload(segs)
