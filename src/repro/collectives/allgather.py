"""Allgather: every rank ends with the list of all contributions."""

from __future__ import annotations

from typing import Any, Generator

from repro.payloads import nbytes_of

Gen = Generator[Any, Any, Any]

TAG_AG_RING = -40
TAG_AG_RD = -41


def allgather_ring(comm: Any, obj: Any) -> Gen:
    """Bucket/ring allgather: ``p-1`` rounds, each rank forwards the
    newest item to its right neighbour.  Latency ``(p-1)*alpha``,
    bandwidth-optimal ``(p-1)/p * total_bytes * beta``."""
    size = comm.size
    out: list[Any] = [None] * size
    out[comm.rank] = obj
    if size == 1:
        return out
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    carry = obj
    carry_index = comm.rank
    for _ in range(size - 1):
        incoming = yield from comm.sendrecv(
            carry,
            right,
            left,
            sendtag=TAG_AG_RING,
            recvtag=TAG_AG_RING,
            nbytes=nbytes_of(carry) if hasattr(carry, "nbytes") else None,
        )
        carry = incoming
        carry_index = (carry_index - 1) % size
        out[carry_index] = incoming
    return out


def allgather_rd(comm: Any, obj: Any) -> Gen:
    """Recursive-doubling allgather: ``log2 p`` rounds, partners exchange
    their accumulated halves.  Requires a power-of-two size; other
    sizes fall back to the ring algorithm."""
    size = comm.size
    if size & (size - 1) != 0:
        result = yield from allgather_ring(comm, obj)
        return result
    out: dict[int, Any] = {comm.rank: obj}
    dist = 1
    while dist < size:
        partner = comm.rank ^ dist
        # Send everything in my current block of `dist` ranks.
        block_start = (comm.rank // dist) * dist
        bundle = [(r, out[r]) for r in range(block_start, block_start + dist)]
        incoming = yield from comm.sendrecv(
            bundle, partner, partner, sendtag=TAG_AG_RD, recvtag=TAG_AG_RD
        )
        for r, val in incoming:
            out[r] = val
        dist *= 2
    return [out[r] for r in range(size)]
