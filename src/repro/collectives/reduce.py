"""Reductions (element-wise sum) and allreduce.

Used by the 3-D and 2.5-D baseline algorithms to combine partial C
contributions across replication layers.  Reduction arithmetic is
charged zero virtual compute time: in every algorithm here the
reduction flops are a lower-order term next to the ``2n^3/p`` gemm
cost, and the paper's model ignores them too.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.payloads import combine_payloads

Gen = Generator[Any, Any, Any]

TAG_REDUCE = -50
TAG_ALLRED = -51


def reduce_flat(comm: Any, obj: Any, root: int) -> Gen:
    """Every rank sends to the root, which combines sequentially."""
    if comm.size == 1:
        return obj
    if comm.rank != root:
        yield from comm.send(obj, root, tag=TAG_REDUCE)
        return None
    acc = obj
    for r in range(comm.size):
        if r != root:
            other = yield from comm.recv(r, tag=TAG_REDUCE)
            acc = combine_payloads(acc, other)
    return acc


def reduce_binomial(comm: Any, obj: Any, root: int) -> Gen:
    """Binomial-tree reduce: mirror image of the binomial broadcast,
    ``ceil(log2 p)`` rounds."""
    size = comm.size
    if size == 1:
        return obj
    vr = (comm.rank - root) % size
    acc = obj
    nrounds = (size - 1).bit_length()
    for k in range(nrounds):
        bit = 1 << k
        if vr & bit:
            parent = ((vr - bit) + root) % size
            yield from comm.send(acc, parent, tag=TAG_REDUCE)
            return None
        child = vr + bit
        if child < size:
            other = yield from comm.recv((child + root) % size, tag=TAG_REDUCE)
            acc = combine_payloads(acc, other)
    return acc


def allreduce_rd(comm: Any, obj: Any) -> Gen:
    """Recursive-doubling allreduce for power-of-two sizes,
    reduce-then-broadcast otherwise."""
    size = comm.size
    if size == 1:
        return obj
    if size & (size - 1) != 0:
        acc = yield from reduce_binomial(comm, obj, 0)
        acc = yield from comm.bcast(acc, 0)
        return acc
    acc = obj
    dist = 1
    while dist < size:
        partner = comm.rank ^ dist
        other = yield from comm.sendrecv(
            acc, partner, partner, sendtag=TAG_ALLRED, recvtag=TAG_ALLRED
        )
        acc = combine_payloads(acc, other)
        dist *= 2
    return acc
