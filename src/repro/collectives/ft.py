"""Fault-tolerant broadcast: binomial tree with ancestor escalation.

``ft_binomial`` delivers the same payload as the plain binomial
broadcast (bit-identical numerics) but survives transient faults that
delay any interior node of the tree:

* The tree shape is the classical binomial one — relative rank ``vr``'s
  parent is ``vr`` with its highest set bit cleared, so the *ancestor
  chain* of ``vr`` is obtained by clearing highest bits one at a time
  down to the root (relative rank 0).
* Every receiver walks its ancestor chain: it first posts a *timed*
  receive from its parent (escalation level 0); on expiry it re-posts
  from the grandparent with a longer window (level 1), and so on.  The
  final receive — from the root — is blocking, which is safe because
  the root owns the payload from time zero and proactively serves every
  level (below).
* Every rank, once it holds the payload, posts one *backup* nonblocking
  send to each member of its subtree, tagged with the escalation level
  at which that descendant would ask it.  Under the engine's rendezvous
  semantics an unmatched send costs no virtual time and is never
  waited, so backups that nobody escalates to are free.

Trade-offs (documented in ``docs/robustness.md``):

* Sends are ``isend`` and never waited, so a sender's clock does not
  block on slow children — slightly optimistic versus the blocking
  binomial tree, in exchange for deadlock-freedom under escalation.
* Backup fan-out is the whole subtree, so a broadcast posts
  ``O(p log p)`` send descriptors in total (only ``p - 1`` of them ever
  match on a healthy run).  With a nonzero ``eager_threshold`` the
  unmatched backups *would* inject wire traffic; ``ft_binomial`` is
  meant for the default rendezvous mode.
* Fail-stop death of an ancestor still aborts the run via
  :class:`repro.errors.RankFailure`; escalation recovers from ranks
  that are *late* (stragglers, degraded links), which is the transient
  model this package targets.

Timeout windows come from the communicator context's
:class:`repro.faults.RetryPolicy` (``escalation_timeout``).
"""

from __future__ import annotations

from typing import Any, Generator, Iterator

from repro.collectives.bcast import _abs, _rel
from repro.simulator.requests import RECV_TIMEOUT, CounterRequest

Gen = Generator[Any, Any, Any]

#: Tag base for ft-broadcast messages; each invocation gets a block of
#: :data:`MAX_LEVELS` tags below it (per-communicator ``_ft_seq`` salt),
#: so concurrent/successive broadcasts never cross-match.
TAG_FT_BCAST = -100_000

#: Tags reserved per invocation — one per escalation level, enough for
#: any communicator below 2**64 ranks.
MAX_LEVELS = 64


def ancestor_chain(vr: int) -> list[int]:
    """Relative-rank ancestors of ``vr``: parent, grandparent, ..., 0."""
    chain = []
    while vr:
        vr -= 1 << (vr.bit_length() - 1)
        chain.append(vr)
    return chain


def subtree_backups(vr: int, size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(descendant, level)`` for every rank in ``vr``'s subtree.

    ``level`` is the escalation level at which that descendant receives
    from ``vr``: the number of highest-bit clears taking the descendant
    to ``vr``, minus one.  Ascending descendant order (deterministic).
    """
    for d in range(vr + 1, size):
        x = d
        hops = 0
        while x > vr:
            x -= 1 << (x.bit_length() - 1)
            hops += 1
        if x == vr:
            yield d, hops - 1


def bcast_ft(comm: Any, obj: Any, root: int, *,
             segments: int | None = None) -> Gen:
    """Fault-tolerant binomial broadcast (registry name ``ft_binomial``).

    Same result object as ``binomial`` on every rank; completes under
    any transient fault schedule.  Counts one recovery per rank that
    obtained the payload above escalation level 0.
    """
    size = comm.size
    if size == 1:
        return obj
    policy = comm.ctx.retry
    base = TAG_FT_BCAST - next(comm._ft_seq) * MAX_LEVELS
    vr = _rel(comm.rank, root, size)

    if vr != 0:
        chain = ancestor_chain(vr)
        for level, anc in enumerate(chain):
            last = level == len(chain) - 1
            timeout = None if last else policy.escalation_timeout(level)
            got = yield from comm.recv(
                _abs(anc, root, size), tag=base - level, timeout=timeout
            )
            if got is not RECV_TIMEOUT:
                obj = got
                if level > 0:
                    yield CounterRequest("recoveries")
                break

    for d, level in subtree_backups(vr, size):
        yield from comm.isend(obj, _abs(d, root, size), tag=base - level)
    return obj
