"""Queryable metrics over traced simulation runs.

Everything here consumes a :class:`~repro.simulator.tracing.SimResult`
produced with tracing on (``run_summa(..., trace=True)``,
``run_hsumma(..., trace=True)`` or ``run_spmd(..., trace=True)``) and
answers the paper's attribution questions:

* :func:`phase_rollup` — how the makespan splits across the top-level
  phase spans a rank opened (``bcast.inter`` / ``bcast.intra`` /
  ``gemm`` / other), with per-phase message and byte counts.  By
  construction the rows sum *exactly* to the rank's clock, so on the
  critical rank they partition ``SimResult.total_time``.
* :func:`critical_path` — the chain of transfers and local intervals
  that determined the makespan, extracted by walking the transfer DAG
  backwards from the last rank to finish.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — export spans
  and transfers as Chrome ``trace_event`` JSON, loadable in Perfetto
  (https://ui.perfetto.dev) for interactive inspection.
* :func:`spans_to_csv` / ``PhaseBreakdown.to_csv`` — flat CSV exports
  for spreadsheets and plotting scripts.

All outputs are deterministic functions of the (deterministic)
simulation, so exported traces are reproducible artifacts.
"""

from __future__ import annotations

import dataclasses
import io
import json
from typing import Any

from repro.errors import ConfigurationError
from repro.simulator.spans import PATH_SEP, Span, phase_of
from repro.simulator.tracing import SimResult, TransferRecord

#: Rollup bucket for time/traffic not covered by any top-level span.
OTHER_PHASE = "other"


def _require_trace(result: SimResult) -> None:
    if not result.trace and result.total_messages:
        raise ConfigurationError(
            "result has no transfer trace; rerun with trace=True "
            "(or Engine(collect_trace=True))"
        )


# ---------------------------------------------------------------------------
# Per-phase rollup
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PhaseStat:
    """Aggregate for one phase on one rank.

    ``seconds`` is wall (virtual) time inside the phase's top-level
    spans; ``messages``/``bytes`` count transfers *sent* by the rank
    while inside the phase.
    """

    name: str
    seconds: float
    fraction: float
    spans: int
    messages: int
    bytes: int


@dataclasses.dataclass(frozen=True)
class PhaseBreakdown:
    """How one rank's clock splits across its top-level phase spans.

    The rows always include an ``other`` bucket holding the clock time
    not covered by any top-level span, so ``sum(row.seconds) ==
    total`` exactly (it is computed by subtraction, not measurement).
    """

    rank: int
    total: float
    rows: tuple[PhaseStat, ...]

    @property
    def attributed_total(self) -> float:
        """Sum of all row times; equals ``total`` by construction."""
        return sum(r.seconds for r in self.rows)

    def __getitem__(self, phase: str) -> PhaseStat:
        for row in self.rows:
            if row.name == phase:
                return row
        raise KeyError(phase)

    def to_table(self) -> str:
        """Aligned text table (phase, time, share, spans, msgs, bytes)."""
        header = ("phase", "time (s)", "share", "spans", "msgs", "bytes sent")
        body = [
            (r.name, f"{r.seconds:.6f}", f"{100 * r.fraction:5.1f}%",
             str(r.spans), str(r.messages), str(r.bytes))
            for r in self.rows
        ]
        body.append(("total", f"{self.total:.6f}", "100.0%",
                     str(sum(r.spans for r in self.rows)),
                     str(sum(r.messages for r in self.rows)),
                     str(sum(r.bytes for r in self.rows))))
        widths = [max(len(header[c]), *(len(row[c]) for row in body))
                  for c in range(len(header))]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write("phase,seconds,fraction,spans,messages,bytes\n")
        for r in self.rows:
            out.write(f"{r.name},{r.seconds!r},{r.fraction!r},"
                      f"{r.spans},{r.messages},{r.bytes}\n")
        return out.getvalue()


def phase_rollup(result: SimResult, rank: int | None = None) -> PhaseBreakdown:
    """Roll the clock of ``rank`` (default: the critical rank, whose
    clock is the makespan) up into its top-level phase spans.

    Phases appear in order of first opening; the ``other`` bucket is
    last.  Transfers are attributed to the phase the *sender* had open
    at post time; untraced sends land in ``other``.
    """
    _require_trace(result)
    if rank is None:
        rank = result.critical_rank
    if not (0 <= rank < result.nranks):
        raise ConfigurationError(f"rank {rank} outside world of {result.nranks}")
    clock = result.stats[rank].clock

    order: list[str] = []
    seconds: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in result.spans_for(rank):
        if span.name not in seconds:
            order.append(span.name)
            seconds[span.name] = 0.0
            counts[span.name] = 0
        seconds[span.name] += span.duration
        counts[span.name] += 1

    messages: dict[str, int] = {name: 0 for name in order}
    nbytes: dict[str, int] = {name: 0 for name in order}
    other_msgs = other_bytes = 0
    for rec in result.trace:
        if rec.src != rank:
            continue
        phase = phase_of(rec.span)
        if phase in seconds:
            messages[phase] += 1
            nbytes[phase] += rec.nbytes
        else:
            other_msgs += 1
            other_bytes += rec.nbytes

    rows = []
    for name in order:
        rows.append(PhaseStat(
            name=name,
            seconds=seconds[name],
            fraction=seconds[name] / clock if clock > 0 else 0.0,
            spans=counts[name],
            messages=messages[name],
            bytes=nbytes[name],
        ))
    other_seconds = clock - sum(seconds.values())
    rows.append(PhaseStat(
        name=OTHER_PHASE,
        seconds=other_seconds,
        fraction=other_seconds / clock if clock > 0 else 0.0,
        spans=0,
        messages=other_msgs,
        bytes=other_bytes,
    ))
    return PhaseBreakdown(rank=rank, total=clock, rows=tuple(rows))


# ---------------------------------------------------------------------------
# Critical path over the transfer DAG
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One link of the critical path.

    ``kind`` is ``"transfer"`` (a recorded wire transfer; ``rank`` is
    the sender, ``peer`` the receiver) or ``"local"`` (compute or
    matching delay on ``rank`` between transfers).  ``phase`` is the
    top-level span covering the segment, when spans were recorded.
    """

    kind: str
    rank: int
    start: float
    finish: float
    peer: int | None = None
    nbytes: int = 0
    phase: str | None = None

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """The dependency chain ending at the makespan.

    Extracted by a deterministic backward walk over the recorded
    transfers: starting from the last rank to finish, repeatedly take
    the latest transfer touching the current rank, then hop to the
    endpoint whose prior activity finished later (the endpoint that
    actually gated the transfer's start).  Intervals between transfers
    are reported as ``local`` segments (compute, or waiting absorbed by
    the matching rule).
    """

    segments: tuple[PathSegment, ...]
    makespan: float

    @property
    def transfer_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "transfer")

    @property
    def local_time(self) -> float:
        return sum(s.duration for s in self.segments if s.kind == "local")

    def phase_times(self) -> dict[str, float]:
        """Path time per phase (None-phase time under ``other``)."""
        acc: dict[str, float] = {}
        for seg in self.segments:
            key = seg.phase if seg.phase is not None else OTHER_PHASE
            acc[key] = acc.get(key, 0.0) + seg.duration
        return acc

    def to_table(self) -> str:
        lines = [
            f"critical path: {len(self.segments)} segments, "
            f"makespan {self.makespan:.6f}s "
            f"(transfers {self.transfer_time:.6f}s, "
            f"local {self.local_time:.6f}s)",
        ]
        for seg in self.segments:
            where = (f"rank {seg.rank}->{seg.peer}" if seg.kind == "transfer"
                     else f"rank {seg.rank}")
            extra = f" {seg.nbytes}B" if seg.kind == "transfer" else ""
            phase = f" [{seg.phase}]" if seg.phase else ""
            lines.append(
                f"  {seg.start:.6f} - {seg.finish:.6f}  "
                f"{seg.kind:8s} {where}{extra}{phase}"
            )
        return "\n".join(lines)


def _phase_at(result: SimResult, rank: int, start: float, finish: float) -> str | None:
    """Top-level span of ``rank`` covering the interval's midpoint."""
    mid = 0.5 * (start + finish)
    for span in result.spans_for(rank):
        if span.start <= mid < span.end:
            return span.name
    return None


def critical_path(result: SimResult) -> CriticalPath:
    """Extract the chain of transfers that determined the makespan.

    Requires a transfer trace (``trace=True``).  The walk is a
    heuristic in one place only: when a transfer's start was gated by
    *both* endpoints at the same instant, it hops to the sender.
    """
    _require_trace(result)
    makespan = result.total_time
    # Transfers touching each rank, kept in trace (completion) order.
    by_rank: dict[int, list[TransferRecord]] = {}
    for rec in result.trace:
        by_rank.setdefault(rec.src, []).append(rec)
        if rec.dst != rec.src:
            by_rank.setdefault(rec.dst, []).append(rec)

    def latest_before(rank: int, t: float) -> TransferRecord | None:
        """Latest-finishing transfer on ``rank`` finishing by ``t`` and
        starting strictly before it (strict start keeps the walk
        monotone even through zero-duration transfers)."""
        best: TransferRecord | None = None
        for rec in by_rank.get(rank, ()):
            if rec.finish <= t + 1e-18 and rec.start < t:
                if best is None or rec.finish > best.finish:
                    best = rec
        return best

    segments: list[PathSegment] = []
    rank = result.critical_rank
    t = result.stats[rank].clock if result.stats else 0.0
    for _guard in range(2 * len(result.trace) + 2):
        rec = latest_before(rank, t)
        if rec is None:
            if t > 0:
                segments.append(PathSegment(
                    kind="local", rank=rank, start=0.0, finish=t,
                    phase=_phase_at(result, rank, 0.0, t),
                ))
            break
        if rec.finish < t:
            segments.append(PathSegment(
                kind="local", rank=rank, start=rec.finish, finish=t,
                phase=_phase_at(result, rank, rec.finish, t),
            ))
        segments.append(PathSegment(
            kind="transfer", rank=rec.src, peer=rec.dst,
            start=rec.start, finish=rec.finish, nbytes=rec.nbytes,
            phase=phase_of(rec.span),
        ))
        # Hop to the endpoint that gated the start: the one whose prior
        # activity ran later (ties and no-prior-activity go to the
        # sender, who at minimum had to produce the data).
        prev_src = latest_before(rec.src, rec.start)
        prev_dst = latest_before(rec.dst, rec.start)
        src_busy = prev_src.finish if prev_src is not None else -1.0
        dst_busy = prev_dst.finish if prev_dst is not None else -1.0
        rank = rec.dst if dst_busy > src_busy else rec.src
        t = rec.start
        if t <= 0:
            break
    segments.reverse()
    return CriticalPath(segments=tuple(segments), makespan=makespan)


# ---------------------------------------------------------------------------
# Chrome trace_event export (Perfetto-loadable)
# ---------------------------------------------------------------------------


def _span_events(span: Span) -> list[dict[str, Any]]:
    events = [{
        "name": span.name,
        "cat": phase_of(span.name) or "span",
        "ph": "X",
        "pid": 0,
        "tid": span.rank,
        "ts": span.start * 1e6,  # trace_event wants microseconds
        "dur": span.duration * 1e6,
        "args": {k: _jsonable(v) for k, v in sorted(span.attrs.items())},
    }]
    for child in span.children:
        events.extend(_span_events(child))
    return events


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def to_chrome_trace(result: SimResult) -> dict[str, Any]:
    """Spans + transfers as a Chrome ``trace_event`` JSON object.

    One process, one thread per rank.  Spans become complete (``X``)
    slices; each transfer becomes an ``X`` slice on the sender's track
    plus a flow arrow (``s``/``f``) to the receiver, so Perfetto draws
    the message lines between rank tracks.
    """
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "repro simulated ranks"},
    }]
    for rank in range(result.nranks):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
            "args": {"name": f"rank {rank}"},
        })
    for root in result.spans:
        events.extend(_span_events(root))
    for i, rec in enumerate(result.trace):
        args = {
            "nbytes": rec.nbytes,
            "span": rec.span,
            "tag": _jsonable(rec.tag),
        }
        events.append({
            "name": f"xfer -> {rec.dst}",
            "cat": "transfer",
            "ph": "X",
            "pid": 0,
            "tid": rec.src,
            "ts": rec.start * 1e6,
            "dur": rec.duration * 1e6,
            "args": args,
        })
        if rec.dst != rec.src:
            events.append({
                "name": "msg", "cat": "transfer", "ph": "s", "id": i,
                "pid": 0, "tid": rec.src, "ts": rec.start * 1e6,
            })
            events.append({
                "name": "msg", "cat": "transfer", "ph": "f", "bp": "e",
                "id": i, "pid": 0, "tid": rec.dst, "ts": rec.finish * 1e6,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.metrics.to_chrome_trace",
            "nranks": result.nranks,
            "total_time_s": result.total_time,
        },
    }


def to_chrome_json(result: SimResult) -> str:
    """Deterministic JSON text of :func:`to_chrome_trace`."""
    return json.dumps(to_chrome_trace(result), sort_keys=True, indent=1)


def write_chrome_trace(result: SimResult, path: str) -> None:
    """Write the Chrome trace to ``path`` (open in ui.perfetto.dev)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_chrome_json(result))
        fh.write("\n")


# ---------------------------------------------------------------------------
# CSV export
# ---------------------------------------------------------------------------


def spans_to_csv(result: SimResult) -> str:
    """Every span as one CSV row (rank, path, timings, attributes).

    ``path`` is the slash-joined ancestry; ``attrs`` is a
    semicolon-joined ``key=value`` list so the file stays one row per
    span.
    """
    out = io.StringIO()
    out.write("rank,path,name,start,end,duration,self_time,attrs\n")

    def emit(span: Span, prefix: str) -> None:
        path = f"{prefix}{PATH_SEP}{span.name}" if prefix else span.name
        attrs = ";".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        out.write(
            f"{span.rank},{path},{span.name},{span.start!r},{span.end!r},"
            f"{span.duration!r},{span.self_time!r},{attrs}\n"
        )
        for child in span.children:
            emit(child, path)

    for root in result.spans:
        emit(root, "")
    return out.getvalue()


# ---------------------------------------------------------------------------
# Fault accounting
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FaultRow:
    """One rank's fault-recovery counters (see ``docs/robustness.md``).

    ``retries`` counts engine-level retransmissions of dropped
    messages, ``timeouts`` counts timed receives that expired,
    ``recoveries`` counts successful fallbacks after a timeout, and
    ``fault_delay`` is the virtual time this rank's transfers and
    computations lost to injected faults.
    """

    rank: int
    retries: int
    timeouts: int
    recoveries: int
    fault_delay: float


@dataclasses.dataclass(frozen=True)
class FaultReport:
    """Per-rank fault counters for a run, plus totals.

    ``rows`` holds only the ranks that saw any fault activity; a
    fault-free run yields an empty report (``faulted`` is False).
    """

    nranks: int
    rows: tuple[FaultRow, ...]

    @property
    def faulted(self) -> bool:
        """True when any rank recorded fault activity."""
        return bool(self.rows)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.rows)

    @property
    def total_timeouts(self) -> int:
        return sum(r.timeouts for r in self.rows)

    @property
    def total_recoveries(self) -> int:
        return sum(r.recoveries for r in self.rows)

    @property
    def total_fault_delay(self) -> float:
        return sum(r.fault_delay for r in self.rows)

    def __getitem__(self, rank: int) -> FaultRow:
        for row in self.rows:
            if row.rank == rank:
                return row
        raise KeyError(rank)

    def to_table(self) -> str:
        """Aligned text table (rank, retries, timeouts, recoveries, delay)."""
        header = ("rank", "retries", "timeouts", "recoveries", "fault delay (s)")
        body = [
            (str(r.rank), str(r.retries), str(r.timeouts),
             str(r.recoveries), f"{r.fault_delay:.6f}")
            for r in self.rows
        ]
        body.append(("total", str(self.total_retries), str(self.total_timeouts),
                     str(self.total_recoveries),
                     f"{self.total_fault_delay:.6f}"))
        widths = [max(len(header[c]), *(len(row[c]) for row in body))
                  for c in range(len(header))]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write("rank,retries,timeouts,recoveries,fault_delay\n")
        for r in self.rows:
            out.write(f"{r.rank},{r.retries},{r.timeouts},"
                      f"{r.recoveries},{r.fault_delay!r}\n")
        return out.getvalue()


def fault_report(result: SimResult) -> FaultReport:
    """Per-rank fault-recovery counters of a run.

    Works on any :class:`SimResult` (no trace needed).  Ranks with no
    fault activity are omitted, so a clean run returns an empty report.
    """
    rows = tuple(
        FaultRow(rank=s.rank, retries=s.retries, timeouts=s.timeouts,
                 recoveries=s.recoveries, fault_delay=s.fault_delay)
        for s in result.stats
        if s.retries or s.timeouts or s.recoveries or s.fault_delay
    )
    return FaultReport(nranks=result.nranks, rows=rows)
