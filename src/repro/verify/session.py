"""Verification sessions: wire the recorder and checks into a run.

:func:`run_verified` is the one entry point runners use.  With
``verify=None`` it is exactly ``resolve_backend(...).run(programs)`` —
no wrapper, no recorder, bit-identical traces and timings.  With
verification enabled it wraps every rank program, runs the structural
checks at finalize, optionally reruns the program under K perturbed
delivery schedules (:mod:`repro.verify.schedules`), and attaches the
resulting :class:`~repro.verify.verdict.Verdict` to
``SimResult.verdict`` — or to the exception, when the run dies.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    VerificationError,
)
from repro.simulator.tracing import SimResult
from repro.verify.checks import (
    checks_run,
    finding_for_exception,
    run_structural_checks,
)
from repro.verify.deadlock import diagnose_deadlock
from repro.verify.recorder import Recorder
from repro.verify.verdict import Finding, Verdict


@dataclasses.dataclass(frozen=True)
class VerifyOptions:
    """Configuration of one verification pass.

    Attributes
    ----------
    schedules:
        Number of perturbed delivery schedules the determinism harness
        reruns the program under (0 disables the rerun pass; structural
        checks still run).
    strict:
        Raise :class:`~repro.errors.VerificationError` when the verdict
        is not clean, instead of only attaching it to the result.
    seed:
        Base seed of the schedule jitter (schedule ``k`` uses
        ``seed + 1 + k``).
    amplitude:
        Relative wire-time jitter amplitude (each edge's transfer time
        is scaled by a fixed factor in ``[1, 1 + amplitude)``).
    """

    schedules: int = 2
    strict: bool = False
    seed: int = 0
    amplitude: float = 0.05

    def __post_init__(self) -> None:
        if self.schedules < 0:
            raise ConfigurationError(
                f"verify schedules must be >= 0, got {self.schedules}"
            )


def coerce_verify(verify: Any) -> VerifyOptions | None:
    """Normalise the ``verify=`` kwarg every runner accepts.

    ``None``/``False`` -> off; ``True`` -> defaults; a
    :class:`VerifyOptions` passes through; a dict is keyword arguments
    for one.
    """
    if verify is None or verify is False:
        return None
    if verify is True:
        return VerifyOptions()
    if isinstance(verify, VerifyOptions):
        return verify
    if isinstance(verify, dict):
        return VerifyOptions(**verify)
    raise ConfigurationError(
        f"verify must be None, a bool, a dict or VerifyOptions; "
        f"got {verify!r}"
    )


class VerifySession:
    """Owns the recorder and verdict of one verified run."""

    def __init__(self, options: VerifyOptions, nranks: int):
        self.options = options
        self.recorder = Recorder(nranks)
        self.meta: dict[str, Any] = {}

    def wrap_programs(self, programs: Iterable) -> list:
        return [self.recorder.wrap(rank, gen)
                for rank, gen in enumerate(programs)]

    def execute(self, engine: Any, programs: Iterable) -> SimResult:
        """Run ``programs`` (wrapped) on ``engine``.

        On a library exception the verdict is finalized from what was
        observed up to the failure, attached to the exception as
        ``exc.verdict``, and the exception re-raised — so even a
        deadlocked run yields the structured diagnosis.
        """
        wrapped = self.wrap_programs(programs)
        try:
            return engine.run(wrapped)
        except DeadlockError as exc:
            exc.verdict = self.finalize(outcome="deadlock", exc=exc)
            raise
        except ReproError as exc:
            exc.verdict = self.finalize(outcome="error", exc=exc)
            raise

    def finalize(self, outcome: str = "clean",
                 exc: BaseException | None = None,
                 schedule_findings: Iterable[Finding] = ()) -> Verdict:
        findings: list[Finding] = []
        if exc is not None:
            if isinstance(exc, DeadlockError):
                findings.append(diagnose_deadlock(exc, self.recorder))
            else:
                mapped = finding_for_exception(exc)
                if mapped is not None:
                    findings.append(mapped)
        findings.extend(run_structural_checks(self.recorder, outcome))
        findings.extend(schedule_findings)
        meta = dict(self.meta)
        meta["outcome"] = outcome
        meta["observed_ops"] = self.recorder.total_ops()
        meta["observed_collectives"] = len(self.recorder.collectives)
        return Verdict(
            findings=findings,
            nranks=self.recorder.nranks,
            checks=checks_run(outcome),
            meta=meta,
        )


def run_verified(
    make_programs: Callable[[], Iterable],
    *,
    verify: Any,
    backend: Any,
    network: Any,
    contention: bool = False,
    collect_trace: bool = False,
    eager_threshold: int = 0,
    coster: Any = None,
    faults: Any = None,
    symmetry: Any = None,
    meta: dict | None = None,
) -> SimResult:
    """Execute a rank-program set, optionally under verification.

    ``make_programs`` must return a *fresh* list of rank generators on
    every call — the determinism pass calls it once per schedule.  All
    other keyword arguments mirror
    :func:`repro.simulator.backends.resolve_backend`; ``symmetry``
    additionally enables the macro backend's symmetry-collapsed fast
    path (bit-identical, see :mod:`repro.simulator.collapse`), which
    engages only on the unverified path — the recorder must observe
    every rank, so a verified run always steps per rank.

    With ``verify=None`` this is exactly
    ``resolve_backend(...).run(make_programs())`` (modulo the collapse
    fast path, which is bit-identical by construction); nothing is
    wrapped or recorded and the run reproduces the pre-verifier code
    path.
    """
    from repro.simulator.backends import resolve_backend
    from repro.simulator.engine import Engine

    def build(net: Any, with_faults: Any) -> Any:
        return resolve_backend(
            backend, net,
            contention=contention, collect_trace=collect_trace,
            eager_threshold=eager_threshold, coster=coster,
            faults=with_faults, symmetry=symmetry,
        )

    opts = coerce_verify(verify)
    if opts is None:
        engine = build(network, faults)
        collapse = getattr(engine, "run_with_factory", None)
        if collapse is not None:
            sim = collapse(make_programs)
        else:
            sim = engine.run(make_programs())
        sim.collapse = getattr(engine, "collapse_report", None)
        return sim

    programs = list(make_programs())
    session = VerifySession(opts, len(programs))
    if meta:
        session.meta.update(meta)
    engine = build(network, faults)
    sim = session.execute(engine, programs)
    # The recorder must observe every rank, so verified runs never take
    # the collapse fast path — but the report (with its fallback reason)
    # still surfaces, both on the result and in the verdict meta.
    sim.collapse = getattr(engine, "collapse_report", None)
    if sim.collapse is not None:
        session.meta["collapse"] = sim.collapse

    schedule_findings: list[Finding] = []
    if opts.schedules:
        if isinstance(backend, Engine):
            # A prebuilt engine is bound to its own network; there is
            # no way to rebuild it around a jittered one.
            session.meta["schedules_skipped"] = (
                "prebuilt engine backend cannot be rebuilt with a "
                "jittered network"
            )
        else:
            from repro.verify.schedules import check_schedules

            def rerun(net: Any) -> Any:
                # Faults off: drops/degradation only move virtual time,
                # never numerics, so the fault-free rerun must still
                # reproduce the baseline bit-for-bit.
                return build(net, None).run(make_programs()).return_values

            schedule_findings = check_schedules(
                rerun, network,
                schedules=opts.schedules,
                seed=opts.seed,
                amplitude=opts.amplitude,
                baseline=sim.return_values,
                label="return values",
            )
            session.meta["schedules"] = opts.schedules

    verdict = session.finalize(outcome="clean",
                               schedule_findings=schedule_findings)
    sim.verdict = verdict
    if opts.strict and not verdict.ok:
        raise VerificationError(verdict)
    return sim
