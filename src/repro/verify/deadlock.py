"""Deadlock diagnosis: from "it stopped" to *why* it stopped.

The engine's quiescence check names the blocked ranks; this module
turns that into a wait-for graph (who is waiting on whom, derived from
the recorder's unmatched-operation state), extracts a minimal blocking
cycle when one exists, and falls back to orphaned-wait chains (a rank
waiting on a peer that already finished — the signature of a dropped
send or receive) when the stall is acyclic.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DeadlockError
from repro.simulator.requests import (
    CollectiveRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
    WaitRequest,
)
from repro.verify.recorder import Recorder
from repro.verify.verdict import Finding


def diagnose_deadlock(exc: DeadlockError, recorder: Recorder) -> Finding:
    """Build the structured ``deadlock`` finding for a quiesced run."""
    recorder.reconstruct_matching()
    blocked = dict(exc.blocked)
    pending = recorder.pending_ops()
    edges: dict[int, tuple[int, ...]] = {}
    waits: dict[int, str] = {}
    for rank in sorted(blocked):
        request = pending.get(rank)
        peers = _edges_for(rank, request, recorder)
        if not peers:
            peer = blocked[rank].get("peer")
            if peer is not None:
                peers = (peer,)
        edges[rank] = peers
        waits[rank] = _describe_wait(rank, request, blocked[rank], recorder)

    cycle = _shortest_cycle(edges)
    detail: dict[str, Any] = {
        "blocked": {str(r): dict(blocked[r], on=waits[r])
                    for r in sorted(blocked)},
        "wait_for": {str(r): list(p) for r, p in edges.items()},
    }

    if cycle:
        detail["cycle"] = cycle
        arrows = " -> ".join(str(r) for r in cycle + [cycle[0]])
        legs = "; ".join(waits[r] for r in cycle)
        return Finding(
            "deadlock", "error",
            f"blocking cycle {arrows}: {legs}",
            tuple(cycle),
            detail,
        )

    orphans = _orphan_waits(edges, set(blocked), recorder)
    if orphans:
        detail["orphans"] = [[r, p] for r, p in orphans]
        r, p = orphans[0]
        state = "finished" if recorder.ranks[p].finished else "not blocked"
        hint = (f"rank {r} waits on rank {p}, which {state} — "
                "likely a dropped or mis-addressed send/recv")
    else:
        hint = "no blocking cycle found; see per-rank pending operations"
    legs = "; ".join(waits[r] for r in sorted(blocked)[:6])
    more = "" if len(blocked) <= 6 else f" (+{len(blocked) - 6} more)"
    return Finding(
        "deadlock", "error",
        f"{len(blocked)} rank(s) stalled without a cycle: {hint} "
        f"[{legs}{more}]",
        tuple(sorted(blocked)),
        detail,
    )


def _edges_for(rank: int, request: Any, recorder: Recorder) -> tuple[int, ...]:
    """World ranks ``rank`` is transitively waiting on, from its pending
    request.  At quiescence every matched transfer has completed, so a
    still-blocked operation is necessarily unmatched — the edge target
    is simply the operation's peer."""
    if request is None:
        return ()
    cls = request.__class__
    if cls is SendRequest:
        return (request.dst,)
    if cls is RecvRequest:
        return (request.src,)
    if cls is SendRecvRequest:
        return _fused_edges(rank, request, recorder)
    if cls is WaitRequest:
        return _handle_edges(rank, (request.handle,), recorder)
    if cls is RequestHandle:
        return _handle_edges(rank, (request,), recorder)
    if cls is tuple and len(request) == 2:
        a, b = request
        if a.__class__ is RequestHandle and b.__class__ is RequestHandle:
            return _handle_edges(rank, (a, b), recorder)
        return ()
    if cls is CollectiveRequest:
        key = (request.cid, request.seq)
        group = recorder.collectives.get(key)
        if group is not None:
            return tuple(group.missing)
        return ()
    return ()


def _fused_edges(rank: int, request: SendRecvRequest,
                 recorder: Recorder) -> tuple[int, ...]:
    peers = []
    chan = recorder.channels.get((rank, request.dst, request.sendtag))
    if chan is not None and chan.sends and not chan.sends[-1].matched:
        peers.append(request.dst)
    chan = recorder.channels.get((request.src, rank, request.recvtag))
    if chan is not None and chan.recvs and not chan.recvs[-1].matched:
        peers.append(request.src)
    return tuple(peers)


def _handle_edges(rank: int, handles: tuple, recorder: Recorder
                  ) -> tuple[int, ...]:
    peers = []
    for handle in handles:
        if getattr(handle, "done", False):
            continue
        op = recorder.op_for_handle(rank, handle)
        if op is not None and not op.matched:
            peers.append(op.peer)
    return tuple(peers)


def _describe_wait(rank: int, request: Any, info: dict,
                   recorder: Recorder) -> str:
    if request is not None:
        cls = request.__class__
        if cls is WaitRequest or cls is RequestHandle:
            handle = request.handle if cls is WaitRequest else request
            op = recorder.op_for_handle(rank, handle)
            if op is not None:
                return f"rank {rank} waits on {op.describe()[len(f'rank {rank}: '):]}"
        return f"rank {rank} blocked in {request!r}"
    return f"rank {rank} blocked in {info.get('repr', '?')}"


def _shortest_cycle(edges: dict[int, tuple[int, ...]]) -> list[int]:
    """Shortest directed cycle through the wait-for graph (BFS from each
    node; graphs here have at most a few thousand nodes and out-degree
    of 1-2, so this stays cheap)."""
    best: list[int] = []
    for start in edges:
        # BFS for a path start -> ... -> start.
        parents: dict[int, int] = {}
        frontier = [start]
        seen = {start}
        found = False
        while frontier and not found:
            nxt = []
            for node in frontier:
                for peer in edges.get(node, ()):
                    if peer == start:
                        # Reconstruct start -> ... -> node, cycle closes.
                        path = [node]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        if not best or len(path) < len(best):
                            best = path
                        found = True
                        break
                    if peer not in seen and peer in edges:
                        seen.add(peer)
                        parents[peer] = node
                        nxt.append(peer)
                if found:
                    break
            frontier = nxt
        if len(best) == 2:
            break  # no shorter cycle exists in a graph without self-loops
    # Canonicalise: start the cycle at its smallest rank.
    if best:
        pivot = best.index(min(best))
        best = best[pivot:] + best[:pivot]
    return best


def _orphan_waits(edges: dict[int, tuple[int, ...]], blocked: set[int],
                  recorder: Recorder) -> list[tuple[int, int]]:
    """(waiter, target) pairs where the target is not itself blocked."""
    orphans = []
    for rank in sorted(edges):
        for peer in edges[rank]:
            if peer not in blocked and 0 <= peer < recorder.nranks:
                orphans.append((rank, peer))
    return orphans
