"""repro.verify — communication-correctness and determinism verifier.

Observes an SPMD simulation (without perturbing it) and renders a
structured :class:`Verdict`:

* **Recorder** (:mod:`repro.verify.recorder`) — wraps each rank
  program's generator and rebuilds the engine's match graph of sends,
  receives and collective announcements from the program side.  Zero
  virtual-time cost; with verification off nothing is even installed.
* **Structural checks** (:mod:`repro.verify.checks`) — unmatched and
  leaked operations, collective call-order/argument consistency per
  communicator, payload-size mismatches, self-send hazards.
* **Deadlock diagnoser** (:mod:`repro.verify.deadlock`) — wait-for
  graph, minimal blocking cycle, per-rank pending-operation naming.
* **Determinism harness** (:mod:`repro.verify.schedules`) — reruns the
  program under K legally perturbed delivery schedules and asserts the
  numeric results stay bit-identical.

Every runner accepts ``verify=`` (None/True/:class:`VerifyOptions`);
the CLI exposes ``repro verify`` over the built-in corpus.  See
``docs/verification.md`` for the check catalogue and verdict schema.
"""

from repro.verify.checks import CHECKS, run_structural_checks
from repro.verify.corpus import CorpusCase, build_corpus, run_corpus
from repro.verify.deadlock import diagnose_deadlock
from repro.verify.recorder import Recorder
from repro.verify.schedules import JitteredNetwork, bit_identical, check_schedules
from repro.verify.session import (
    VerifyOptions,
    VerifySession,
    coerce_verify,
    run_verified,
)
from repro.verify.verdict import Finding, Verdict

__all__ = [
    "CHECKS",
    "CorpusCase",
    "Finding",
    "JitteredNetwork",
    "Recorder",
    "Verdict",
    "VerifyOptions",
    "VerifySession",
    "bit_identical",
    "build_corpus",
    "check_schedules",
    "coerce_verify",
    "diagnose_deadlock",
    "run_corpus",
    "run_structural_checks",
    "run_verified",
]
