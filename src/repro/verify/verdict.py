"""Verdict model: structured findings a verified run renders.

A verification pass reduces everything it observed to a
:class:`Verdict` — a list of :class:`Finding`\\ s, each tagged with a
check id from the catalogue in :mod:`repro.verify.checks`, a severity,
the ranks involved and a JSON-safe detail payload.  ``Verdict.ok`` is
the single bit CI gates on: no *error*-severity findings (warnings —
e.g. the fault-tolerant broadcast's deliberately leaked backup sends —
do not fail a run).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Iterable

#: Finding severities, in increasing order of badness.
SEVERITIES = ("info", "warning", "error")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One verification finding.

    Attributes
    ----------
    check:
        Check id from :data:`repro.verify.checks.CHECKS`.
    severity:
        ``"error"`` findings fail the verdict; ``"warning"`` and
        ``"info"`` findings are reported but keep it clean.
    message:
        Human-readable one-liner.
    ranks:
        World ranks involved (empty when not rank-specific).
    detail:
        Machine-readable payload (JSON-serialisable via ``default=str``).
    """

    check: str
    severity: str
    message: str
    ranks: tuple[int, ...] = ()
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "severity": self.severity,
            "message": self.message,
            "ranks": list(self.ranks),
            "detail": dict(self.detail),
        }


@dataclasses.dataclass
class Verdict:
    """Outcome of one verification pass over a rank program set.

    Attributes
    ----------
    findings:
        Every finding, in detection order.
    nranks:
        Number of ranks the verified run spawned.
    checks:
        Ids of the checks that ran (a finding's absence only means
        something for checks listed here).
    meta:
        Free-form context: program name, backend, schedule count, the
        exception that ended the run, ...
    """

    findings: list[Finding] = dataclasses.field(default_factory=list)
    nranks: int = 0
    checks: tuple[str, ...] = ()
    meta: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def by_check(self, check: str) -> list[Finding]:
        """Findings carrying a given check id."""
        return [f for f in self.findings if f.check == check]

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "nranks": self.nranks,
            "checks": list(self.checks),
            "findings": [f.to_dict() for f in self.findings],
            "meta": dict(self.meta),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Render as JSON (tuples become lists, exotic values stringify)."""
        return json.dumps(self.to_dict(), indent=indent, default=str,
                          sort_keys=False)

    def to_text(self) -> str:
        """Multi-line human report."""
        lines = [self.summary()]
        for f in self.findings:
            ranks = "" if not f.ranks else " ranks=" + _format_ranks(f.ranks)
            lines.append(f"  [{f.severity}] {f.check}{ranks}: {f.message}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line outcome."""
        state = "CLEAN" if self.ok else "FAIL"
        nerr = len(self.errors)
        nwarn = len(self.warnings)
        return (
            f"verify: {state} ({self.nranks} ranks, "
            f"{len(self.checks)} checks, {nerr} errors, {nwarn} warnings)"
        )


def _format_ranks(ranks: tuple[int, ...], limit: int = 8) -> str:
    shown = ",".join(str(r) for r in ranks[:limit])
    if len(ranks) > limit:
        shown += f",+{len(ranks) - limit}"
    return "{" + shown + "}"
