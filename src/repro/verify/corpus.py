"""The verification corpus: every shipped algorithm as a runnable case.

Each :class:`CorpusCase` wraps one runner in a small, fast
configuration and executes it with the verifier enabled.  The corpus is
what ``hsumma verify`` and the CI verify job run: it asserts that the
whole algorithm zoo — SUMMA, HSUMMA (two-level and multilevel), the
overlap schedules, block-cyclic, Cannon, Fox, the 3-D and 2.5D
algorithms, heterogeneous 1-D SUMMA, the LU/QR factorizations, and the
segmented broadcast family (pipelined tree, 4-color ring,
hyper-systolic ring) — passes every structural check and the
K-schedule determinism harness.  The ``*-collapsed`` cases pin the
symmetry-collapsed macro engine's congruence contract instead
(collapse engages and replays the per-rank engine bit-identically);
they run without the recorder, which is a collapse blocker by design.

The sizes are deliberately tiny (tens of rows, single-digit grids):
the verifier checks communication *structure*, which does not depend on
matrix size, and the corpus must stay cheap enough to run on every CI
push.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.verify.session import VerifyOptions, coerce_verify
from repro.verify.verdict import Verdict


@dataclasses.dataclass(frozen=True)
class CorpusCase:
    """One verifiable configuration of a shipped algorithm."""

    name: str
    run: Callable[[Any], Verdict]
    description: str = ""


def _matrices(n: int = 24, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def _multiply_case(name: str, description: str, **kwargs: Any) -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.core.api import multiply

        A, B = _matrices()
        result = multiply(A, B, verify=verify, **kwargs)
        return result.sim.verdict

    return CorpusCase(name=name, run=run, description=description)


def _multilevel_case() -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.core.hsumma import run_hsumma_multilevel

        A, B = _matrices(32)
        _, sim = run_hsumma_multilevel(
            A, B, grid=(4, 4), row_factors=(2, 2), col_factors=(2, 2),
            blocks=(8, 4), verify=verify,
        )
        return sim.verdict

    return CorpusCase(
        name="hsumma-multilevel",
        run=run,
        description="three-level hierarchy on a 4x4 grid",
    )


def _hetero_case() -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.hetero.summa1d import run_hetero_summa1d

        A, B = _matrices()
        _, sim = run_hetero_summa1d(
            A, B, speeds=[1.0, 2.0, 1.0, 4.0], block=6, groups=2,
            verify=verify,
        )
        return sim.verdict

    return CorpusCase(
        name="hetero-summa1d",
        run=run,
        description="heterogeneous 1-D SUMMA, grouped broadcasts",
    )


def _lu_case() -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.factorization.lu import run_block_lu

        A, _ = _matrices()
        M = A @ A.T + A.shape[0] * np.eye(A.shape[0])
        _, _, sim = run_block_lu(M, grid=(2, 2), block=6, groups=(2, 2),
                                 verify=verify)
        return sim.verdict

    return CorpusCase(name="lu", run=run,
                      description="hierarchical block LU on a 2x2 grid")


def _qr_case() -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.factorization.qr import run_block_qr

        A, _ = _matrices()
        _, sim = run_block_qr(A, grid=(2, 2), block=6, verify=verify)
        return sim.verdict

    return CorpusCase(name="qr", run=run,
                      description="blocked Householder QR on a 2x2 grid")


def _collapsed_case(name: str, description: str, runner_name: str,
                    nranks: int, symmetry_args: tuple,
                    **kwargs: Any) -> CorpusCase:
    """Run one runner through the symmetry-collapsed macro engine and
    through the per-rank engine, and render the congruence contract —
    collapse actually engaged, per-rank stats bit-identical — as a
    verdict.

    These cases do not use the message recorder (collapse and
    verification are mutually exclusive by design: the recorder must
    watch every rank, which is a collapse blocker); the structural
    property they pin is the congruence itself.
    """
    def run(verify: Any) -> Verdict:
        from repro.network.homogeneous import HomogeneousNetwork
        from repro.network.model import HockneyParams
        from repro.payloads import PhantomArray
        from repro.simulator.backends import MacroBackend
        from repro.simulator import collapse as collapse_mod
        from repro.verify.verdict import Finding

        import repro.algorithms.algo25d as algo25d
        import repro.algorithms.cannon as cannon
        import repro.algorithms.dns3d as dns3d

        runner = {"cannon": cannon.run_cannon, "dns3d": dns3d.run_dns3d,
                  "25d": algo25d.run_25d}[runner_name]
        factory = {"cannon": collapse_mod.cannon_symmetry,
                   "dns3d": collapse_mod.dns3d_symmetry,
                   "25d": collapse_mod.summa25d_symmetry}[runner_name]
        n = 24
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        net = HomogeneousNetwork(nranks, HockneyParams(1e-4, 1e-9))
        col = MacroBackend(net, symmetry=factory(*symmetry_args))
        _, sim_col = runner(A, B, network=net, gamma=1e-10, backend=col,
                            **kwargs)
        ref = MacroBackend(net)
        _, sim_ref = runner(A, B, network=net, gamma=1e-10, backend=ref,
                            **kwargs)

        findings = []
        report = col.collapse_report or {}
        if report.get("mode") != "collapsed":
            findings.append(Finding(
                check="collapse-congruence", severity="error",
                message=f"collapse did not engage: {report!r}",
                detail=dict(report),
            ))
        diverged = [
            a.rank for a, b in zip(sim_col.stats, sim_ref.stats)
            if (a.clock, a.comm_time, a.compute_time,
                a.messages_sent, a.bytes_sent)
            != (b.clock, b.comm_time, b.compute_time,
                b.messages_sent, b.bytes_sent)
        ]
        if diverged:
            findings.append(Finding(
                check="collapse-congruence", severity="error",
                message=f"{len(diverged)} rank(s) diverged from the "
                        "per-rank engine",
                ranks=tuple(diverged[:8]),
            ))
        if not findings:
            findings.append(Finding(
                check="collapse-congruence", severity="info",
                message=f"probed {report.get('probed')} of "
                        f"{report.get('ranks')} ranks, bit-identical",
                detail=dict(report),
            ))
        clean = not any(f.severity == "error" for f in findings)
        # observed_ops counts the congruence comparisons: one five-field
        # stat record per rank, collapsed vs per-rank.
        return Verdict(findings=findings, nranks=nranks,
                       checks=("collapse-congruence",),
                       meta={"backend": "macro+collapse",
                             "runner": runner_name,
                             "outcome": "clean" if clean else "error",
                             "observed_ops": len(sim_ref.stats)})

    return CorpusCase(name=name, run=run, description=description)


def _ft_bcast_case() -> CorpusCase:
    def run(verify: Any) -> Verdict:
        from repro.simulator.runtime import run_spmd

        def program(ctx):
            def gen():
                payload = np.arange(8.0) if ctx.world.rank == 0 else None
                out = yield from ctx.world.bcast(payload, root=0)
                total = yield from ctx.world.allreduce(float(out.sum()))
                return total
            return gen()

        sim = run_spmd(program, 4, verify=verify)
        return sim.verdict

    return CorpusCase(
        name="spmd-collectives",
        run=run,
        description="plain run_spmd program mixing bcast and allreduce",
    )


def _pipelined_spmd_case(name: str, algorithm: str, nranks: int,
                         segments: int, description: str) -> CorpusCase:
    """A bare segmented-family broadcast on an awkward (odd/prime) comm
    size: the verifier must see clean matching and K-schedule
    determinism from the pre-posted stage receives and the
    fire-and-forget forwards."""
    def run(verify: Any) -> Verdict:
        from repro.simulator.runtime import run_spmd

        def program(ctx):
            def gen():
                ctx.options = ctx.options.replace(bcast_segments=segments)
                payload = np.arange(30.0) if ctx.world.rank == 1 else None
                out = yield from ctx.world.bcast(payload, root=1,
                                                 algorithm=algorithm)
                total = yield from ctx.world.allreduce(float(out.sum()))
                return total
            return gen()

        sim = run_spmd(program, nranks, verify=verify)
        return sim.verdict

    return CorpusCase(name=name, run=run, description=description)


def build_corpus() -> list[CorpusCase]:
    """The full corpus, in the order reports print it."""
    return [
        _multiply_case("summa", "pivot-broadcast SUMMA on a 2x2 grid",
                       nprocs=4, algorithm="summa"),
        _multiply_case("hsumma", "two-level HSUMMA on a 2x2 grid",
                       nprocs=4, algorithm="hsumma"),
        _multilevel_case(),
        _multiply_case("summa-overlap", "SUMMA with one-step lookahead",
                       nprocs=4, algorithm="summa", overlap=True),
        _multiply_case("hsumma-overlap", "HSUMMA with one-step lookahead",
                       nprocs=4, algorithm="hsumma", overlap=True),
        _multiply_case("cyclic", "block-cyclic SUMMA", nprocs=4,
                       algorithm="cyclic", block=6),
        _multiply_case("cannon", "Cannon's shift algorithm", nprocs=4,
                       algorithm="cannon"),
        _multiply_case("fox", "Fox's broadcast-roll algorithm", nprocs=4,
                       algorithm="fox"),
        _multiply_case("dns3d", "3-D (DNS) algorithm on a 2x2x2 mesh",
                       nprocs=8, algorithm="3d"),
        _multiply_case("25d", "2.5D algorithm, replication 2",
                       nprocs=8, algorithm="2.5d", replication=2),
        _collapsed_case(
            "cannon-collapsed",
            "Cannon through the torus-shift-collapsed macro engine, "
            "bit-identical to per-rank", "cannon", 16, (4,), grid=(4, 4),
        ),
        _collapsed_case(
            "dns3d-collapsed",
            "DNS 3-D through the flag-class-collapsed macro engine on a "
            "4x4x4 mesh, bit-identical to per-rank", "dns3d", 64, (4,),
            nprocs=64,
        ),
        _collapsed_case(
            "25d-collapsed",
            "2.5D through the layer-collapsed macro engine (q=4, c=2), "
            "bit-identical to per-rank", "25d", 32, (4, 2),
            nprocs=32, replication=2,
        ),
        _hetero_case(),
        _lu_case(),
        _qr_case(),
        _ft_bcast_case(),
        _multiply_case(
            "summa-segmented",
            "SUMMA over the pipelined binary-tree broadcast, depth 3",
            nprocs=4, algorithm="summa", bcast="segmented",
            bcast_segments=3,
        ),
        _pipelined_spmd_case(
            "spmd-fourcolor", "fourcolor", 5, 2,
            "4-color bidirectional ring multicast on 5 ranks, root 1",
        ),
        _pipelined_spmd_case(
            "spmd-hypersystolic", "hypersystolic", 7, 3,
            "hyper-systolic ring broadcast on 7 ranks, root 1",
        ),
    ]


def run_corpus(
    names: Iterable[str] | None = None,
    *,
    verify: Any = True,
) -> list[tuple[CorpusCase, Verdict]]:
    """Run (a subset of) the corpus; returns ``(case, verdict)`` pairs.

    ``verify`` accepts anything :func:`repro.verify.coerce_verify`
    does; the default enables the standard checks plus the two-schedule
    determinism pass.
    """
    options = coerce_verify(verify) or VerifyOptions()
    corpus = build_corpus()
    if names is not None:
        wanted = set(names)
        unknown = wanted - {case.name for case in corpus}
        if unknown:
            known = ", ".join(case.name for case in corpus)
            raise ConfigurationError(
                f"unknown corpus case(s) {sorted(unknown)}; known: {known}"
            )
        corpus = [case for case in corpus if case.name in wanted]
    return [(case, case.run(options)) for case in corpus]
