"""Determinism harness: rerun under perturbed-but-legal schedules.

A correct SPMD program in this library must compute bit-identical
results regardless of *when* messages arrive, because matching is
FIFO per channel with no wildcards — delivery timing may only affect
virtual clocks, never numerics.  A program whose output depends on
timing (polling ``handle.done``, racing a timed receive against real
traffic, keying behaviour off the clock) is nondeterministic, and this
harness exposes it by rerunning the program under K *jittered*
delivery schedules and asserting the results stay bit-identical.

The jitter is multiplicative per ``(src, dst, nbytes)`` and driven by
the same splitmix64 hashing the fault layer uses
(:func:`repro.faults.schedule.unit_hash`), so schedules are themselves
reproducible: seed k always produces the same perturbation.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.faults.schedule import unit_hash
from repro.network.model import Network
from repro.verify.verdict import Finding


class JitteredNetwork(Network):
    """Wrap ``base`` with deterministic per-edge transfer-time jitter.

    Each ``(src, dst, nbytes)`` triple gets a fixed multiplier in
    ``[1, 1 + amplitude)``; self-transfers stay at the base cost (zero,
    by the :class:`~repro.network.model.Network` contract).  Routing
    (``links``/``hops``) delegates unchanged, so contention behaviour
    perturbs consistently with the times.
    """

    def __init__(self, base: Network, seed: int, amplitude: float = 0.05):
        super().__init__(base.nranks)
        if amplitude <= 0:
            raise ValueError(f"jitter amplitude must be > 0, got {amplitude}")
        self.base = base
        self.seed = seed
        self.amplitude = amplitude

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        t = self.base.transfer_time(src, dst, nbytes)
        if src == dst:
            return t
        return t * (1.0 + self.amplitude * unit_hash(
            self.seed, src, dst, int(nbytes)))

    def links(self, src: int, dst: int):
        return self.base.links(src, dst)

    def hops(self, src: int, dst: int) -> int:
        return self.base.hops(src, dst)


def check_schedules(
    run: Callable[[Network], Any],
    base_network: Network,
    *,
    schedules: int,
    seed: int = 0,
    amplitude: float = 0.05,
    baseline: Any = None,
    label: str = "results",
) -> list[Finding]:
    """Rerun ``run`` under ``schedules`` jittered networks and compare.

    ``run`` is invoked once per schedule with a perturbed network and
    must return the comparable outcome (rank return values, a result
    matrix, ...).  ``baseline`` is the unperturbed outcome; when None
    it is computed with ``run(base_network)`` first.

    Returns a list of findings: empty when every schedule reproduced
    the baseline bit-identically, else one ``nondeterminism`` finding
    per deviating schedule.
    """
    findings: list[Finding] = []
    if baseline is None:
        baseline = run(base_network)
    for k in range(schedules):
        net = JitteredNetwork(base_network, seed=seed + 1 + k,
                              amplitude=amplitude)
        try:
            outcome = run(net)
        except Exception as exc:  # a schedule-dependent crash
            findings.append(Finding(
                "nondeterminism", "error",
                f"schedule {k + 1}/{schedules} (seed {net.seed}) raised "
                f"{type(exc).__name__}: {exc} — the program's control flow "
                "depends on delivery timing",
                (),
                {"schedule": k + 1, "seed": net.seed,
                 "exception": type(exc).__name__},
            ))
            continue
        where = _first_difference(baseline, outcome, path=label)
        if where is not None:
            findings.append(Finding(
                "nondeterminism", "error",
                f"schedule {k + 1}/{schedules} (seed {net.seed}) changed "
                f"{where} — numeric results must not depend on message "
                "timing",
                (),
                {"schedule": k + 1, "seed": net.seed, "difference": where},
            ))
    return findings


def bit_identical(a: Any, b: Any) -> bool:
    """True when ``a`` and ``b`` are bit-identical comparable outcomes."""
    return _first_difference(a, b, path="value") is None


def _first_difference(a: Any, b: Any, path: str) -> str | None:
    """Path of the first bitwise difference between two outcomes, or
    None when identical.  Understands numpy arrays (compared via raw
    bytes, so NaN payloads and signed zeros count), phantom payloads,
    containers, and floats (NaN == NaN here: reproducing the same NaN
    *is* deterministic)."""
    if a is b:
        return None
    if type(a) is not type(b):
        return f"{path} (type {type(a).__name__} vs {type(b).__name__})"
    tobytes = getattr(a, "tobytes", None)
    if tobytes is not None and hasattr(b, "tobytes"):  # numpy arrays
        shape_a = getattr(a, "shape", None)
        if shape_a != getattr(b, "shape", None):
            return f"{path}.shape"
        if getattr(a, "dtype", None) != getattr(b, "dtype", None):
            return f"{path}.dtype"
        if a.tobytes() != b.tobytes():
            return f"{path} (array bytes)"
        return None
    if isinstance(a, float):
        if math.isnan(a) and math.isnan(b):
            return None
        return None if a == b else path
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}.len"
        for i, (xa, xb) in enumerate(zip(a, b)):
            where = _first_difference(xa, xb, f"{path}[{i}]")
            if where is not None:
                return where
        return None
    if isinstance(a, dict):
        if set(a) != set(b):
            return f"{path}.keys"
        for key in a:
            where = _first_difference(a[key], b[key], f"{path}[{key!r}]")
            if where is not None:
                return where
        return None
    fields = getattr(a, "__dataclass_fields__", None)
    if fields is not None:  # PhantomArray and friends
        for name in fields:
            where = _first_difference(getattr(a, name), getattr(b, name),
                                      f"{path}.{name}")
            if where is not None:
                return where
        return None
    try:
        equal = bool(a == b)
    except Exception:
        return f"{path} (incomparable)"
    return None if equal else path
