"""Structural communication checks over a recorded run.

Each check has a stable id (the key a test or CI gate greps for).  The
classification policy encodes one library idiom explicitly: the
fault-tolerant broadcast *deliberately* posts backup isends that are
never waited on and mostly never matched (see
:mod:`repro.collectives.ft`), so never-waited nonblocking leftovers are
**warnings** (``leaked-send`` / ``leaked-recv`` / ``unwaited-handle``)
while leftovers the program synchronised on — a blocking send that
eagerly completed into the void, a wait that can never return — are
**errors** (``unmatched-send`` / ``unmatched-recv``).
"""

from __future__ import annotations

from repro.verify.recorder import CollectiveGroup, OpRecord, Recorder
from repro.verify.verdict import Finding

#: Check id -> one-line description (the catalogue documented in
#: ``docs/verification.md`` and printed by ``repro verify --list``).
CHECKS: dict[str, str] = {
    "self-send": "a rank posted a blocking send to itself (cannot match)",
    "unmatched-send": "a message was sent (and the sender released) but "
                      "no receive ever consumed it",
    "unmatched-recv": "a receive was posted but no send ever arrived",
    "leaked-send": "a nonblocking send was never matched and never waited "
                   "on (intentional for backup traffic; otherwise a leak)",
    "leaked-recv": "a nonblocking receive was never matched and never "
                   "waited on",
    "unwaited-handle": "a nonblocking operation completed but its handle "
                       "was never waited on",
    "recv-timeout": "a timed receive expired without matching",
    "collective-op-mismatch": "ranks called different operations for the "
                              "same collective slot",
    "collective-root-mismatch": "ranks disagree on the root of a rooted "
                                "collective",
    "collective-arg-mismatch": "ranks disagree on algorithm/segment "
                               "arguments of a collective",
    "collective-comm-mismatch": "ranks announced the same collective slot "
                                "with different memberships",
    "collective-payload-mismatch": "reduction contributions differ in size "
                                   "across ranks",
    "collective-incomplete": "some declared participants never reached a "
                             "collective call",
    "deadlock": "a blocking cycle (or orphaned wait) stopped the run",
    "nondeterminism": "results changed under a legally perturbed delivery "
                      "schedule",
    "rank-failure": "a rank died from an injected fail-stop fault",
    "run-error": "the run raised before completing",
    "collapse-congruence": "the symmetry-collapsed macro engine either "
                           "fell back per-rank or produced stats that "
                           "differ from the per-rank engine's",
}

#: How many example operations a rolled-up finding quotes in detail.
_EXAMPLES = 4

#: Collectives whose per-rank contributions must agree in size (the
#: combine step requires identical shapes).
_UNIFORM_PAYLOAD_OPS = frozenset({"reduce", "allreduce"})

#: Signature field -> check id, compared across every announcement of a
#: collective slot (mirrors the communicator layer's early validation).
_COLLECTIVE_FIELDS = (
    ("participants", "collective-comm-mismatch"),
    ("op", "collective-op-mismatch"),
    ("root", "collective-root-mismatch"),
    ("algorithm", "collective-arg-mismatch"),
    ("segments", "collective-arg-mismatch"),
)


def run_structural_checks(recorder: Recorder,
                          outcome: str = "clean") -> list[Finding]:
    """Evaluate every structural check against a recorded run.

    ``outcome`` is how the run ended: ``"clean"`` (ran to completion),
    ``"deadlock"`` (engine quiescence), or ``"error"`` (some other
    exception).  On ``"error"`` the leftover-operation and
    completeness checks are suppressed — an aborted run legitimately
    strands operations mid-flight, and the run-level finding already
    fails the verdict.
    """
    findings: list[Finding] = []
    for check, message, ranks, detail in recorder.immediate:
        findings.append(Finding(check, "error", message, ranks, detail))

    recorder.reconstruct_matching()

    for key, group in sorted(recorder.collectives.items(),
                             key=lambda kv: (repr(kv[0][0]), kv[0][1])):
        findings.extend(_check_collective(group, outcome))

    if outcome != "error":
        findings.extend(_check_leftovers(recorder))
    findings.extend(_check_timeouts(recorder))
    return findings


def checks_run(outcome: str = "clean") -> tuple[str, ...]:
    """The check ids a structural pass evaluates for ``outcome``."""
    skipped = set()
    if outcome == "error":
        skipped = {"unmatched-send", "unmatched-recv", "leaked-send",
                   "leaked-recv", "unwaited-handle", "collective-incomplete"}
    return tuple(c for c in CHECKS if c not in skipped)


# -- leftover point-to-point operations ------------------------------------


def _check_leftovers(recorder: Recorder) -> list[Finding]:
    buckets: dict[str, list[OpRecord]] = {}
    for chan in recorder.channels.values():
        for op in chan.sends:
            if op.matched:
                if not op.blocking and op.handle is not None and not op.waited:
                    buckets.setdefault("unwaited-handle", []).append(op)
                continue
            if op.blocking or op.waited:
                buckets.setdefault("unmatched-send", []).append(op)
            else:
                buckets.setdefault("leaked-send", []).append(op)
        for op in chan.recvs:
            if op.timed_out or op.matched:
                if (op.matched and not op.blocking and op.handle is not None
                        and not op.waited):
                    buckets.setdefault("unwaited-handle", []).append(op)
                continue
            if op.blocking or op.waited:
                buckets.setdefault("unmatched-recv", []).append(op)
            else:
                buckets.setdefault("leaked-recv", []).append(op)

    severity = {"unmatched-send": "error", "unmatched-recv": "error",
                "leaked-send": "warning", "leaked-recv": "warning",
                "unwaited-handle": "warning"}
    findings = []
    for check in ("unmatched-send", "unmatched-recv", "leaked-send",
                  "leaked-recv", "unwaited-handle"):
        ops = buckets.get(check)
        if ops:
            findings.append(_rollup(check, severity[check], ops))
    return findings


def _rollup(check: str, severity: str, ops: list[OpRecord]) -> Finding:
    ranks = tuple(sorted({op.rank for op in ops}))
    examples = [op.describe() for op in ops[:_EXAMPLES]]
    noun = CHECKS[check].split(" (")[0]
    message = f"{len(ops)} operation(s): {noun}"
    if len(ops) == 1:
        message = f"{ops[0].describe()}: {noun}"
    return Finding(check, severity, message, ranks, {
        "count": len(ops),
        "examples": examples,
        "pending": sum(1 for op in ops if not op.resumed),
    })


def _check_timeouts(recorder: Recorder) -> list[Finding]:
    expired = [op for chan in recorder.channels.values()
               for op in chan.recvs if op.timed_out]
    if not expired:
        return []
    ranks = tuple(sorted({op.rank for op in expired}))
    return [Finding(
        "recv-timeout", "warning",
        f"{len(expired)} timed receive(s) expired without matching "
        "(expected under fault injection; suspicious otherwise)",
        ranks,
        {"count": len(expired),
         "examples": [op.describe() for op in expired[:_EXAMPLES]]},
    )]


# -- collective consistency -------------------------------------------------


def _check_collective(group: CollectiveGroup, outcome: str) -> list[Finding]:
    findings: list[Finding] = []
    first_rank = group.order[0]
    first = group.by_rank[first_rank]
    slot = {"cid": repr(group.cid), "seq": group.seq, "op": first.op}

    for field, check in _COLLECTIVE_FIELDS:
        expected = getattr(first, field)
        for rank in group.order[1:]:
            observed = getattr(group.by_rank[rank], field)
            if observed != expected:
                findings.append(Finding(
                    check, "error",
                    f"collective {first.op} (cid={group.cid!r}, "
                    f"seq={group.seq}): rank {rank} announced "
                    f"{field}={observed!r} but rank {first_rank} announced "
                    f"{expected!r}",
                    (first_rank, rank),
                    dict(slot, field=field, expected=repr(expected),
                         observed=repr(observed)),
                ))
                break  # one finding per field is enough

    if first.op in _UNIFORM_PAYLOAD_OPS:
        sizes = {r: group.by_rank[r].nbytes for r in group.order}
        if len(set(sizes.values())) > 1:
            findings.append(Finding(
                "collective-payload-mismatch", "error",
                f"collective {first.op} (cid={group.cid!r}, "
                f"seq={group.seq}): contribution sizes differ across ranks "
                f"({_size_summary(sizes)})",
                tuple(sorted(sizes)),
                dict(slot, sizes={str(r): n for r, n in sizes.items()}),
            ))

    if outcome != "error":
        missing = group.missing
        if missing:
            findings.append(Finding(
                "collective-incomplete", "error",
                f"collective {first.op} (cid={group.cid!r}, "
                f"seq={group.seq}): rank(s) "
                f"{sorted(missing)} never made the call "
                f"({len(group.by_rank)}/{len(group.participants)} announced)",
                tuple(sorted(missing)),
                dict(slot, missing=sorted(missing),
                     announced=sorted(group.by_rank)),
            ))
    return findings


def _size_summary(sizes: dict[int, int]) -> str:
    pairs = sorted(sizes.items())
    shown = ", ".join(f"rank {r}: {n}B" for r, n in pairs[:_EXAMPLES])
    if len(pairs) > _EXAMPLES:
        shown += f", +{len(pairs) - _EXAMPLES} more"
    return shown


def finding_for_exception(exc: BaseException) -> Finding | None:
    """Map a run-ending library exception to its finding, if it has one.

    The deadlock case is handled separately (by the diagnoser, which
    produces a richer finding than the exception alone could).
    """
    from repro.errors import (
        CollectiveMismatchError,
        DeadlockError,
        RankFailure,
        ReproError,
    )

    if isinstance(exc, CollectiveMismatchError):
        return Finding(
            exc.check, "error", str(exc), (),
            {"cid": repr(exc.cid), "seq": exc.seq,
             "expected": {k: repr(v) for k, v in exc.expected.items()},
             "observed": {k: repr(v) for k, v in exc.observed.items()},
             "source": "communicator early validation"},
        )
    if isinstance(exc, RankFailure):
        return Finding(
            "rank-failure", "error", str(exc), (exc.rank,),
            {"rank": exc.rank, "time": exc.time, "reason": exc.reason},
        )
    if isinstance(exc, DeadlockError):
        return None  # the diagnoser owns this case
    if isinstance(exc, ReproError):
        return Finding(
            "run-error", "error",
            f"{type(exc).__name__}: {exc}", (),
            {"exception": type(exc).__name__},
        )
    return None
