"""Observation layer: build a match graph of a run without touching it.

The recorder wraps each rank program's generator.  Every request the
program yields is observed *before* it reaches the engine, and every
value the engine resumes the program with is observed on the way back
— so the recorder sees exactly the engine's post order (the engine
handles a request in the same step that yields it) and can reconstruct
its FIFO matching from the program side alone.

Nothing is injected into the run: no extra requests, no virtual time,
no change to the values flowing either way.  A verified run is
bit-identical to an unverified one; with verification off the wrapper
is not even installed.

Matching reconstruction
-----------------------
The engine matches FIFO per ``(src, dst, tag)`` channel; a timed
receive that expires is removed from its queue (and its program resumes
with ``RECV_TIMEOUT``).  From the program side the pairing is therefore
exact: on each channel, zip the sends in post order against the
receives that did not time out, in post order.  Leftovers are the
unmatched operations the structural checks classify at finalize.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simulator.requests import (
    RECV_TIMEOUT,
    CollectiveRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
    WaitRequest,
)


class OpRecord:
    """One observed point-to-point operation (one side of a message)."""

    __slots__ = ("rank", "kind", "peer", "tag", "nbytes", "blocking",
                 "fused", "handle", "index", "resumed", "timed_out",
                 "waited", "matched", "timeout")

    def __init__(self, rank: int, kind: str, peer: int, tag: Any,
                 nbytes: int, *, blocking: bool, index: int,
                 fused: bool = False, timeout: float | None = None):
        self.rank = rank
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.blocking = blocking
        self.fused = fused  # leg of a SendRecvRequest
        self.handle: RequestHandle | None = None
        self.index = index  # per-rank observation ordinal
        self.resumed = False  # generator got a value back for this op
        self.timed_out = False  # recv resumed with RECV_TIMEOUT
        self.waited = False  # a wait was issued on the handle
        self.matched = False  # set by reconstruction at finalize
        self.timeout = timeout

    def describe(self) -> str:
        arrow = "->" if self.kind == "send" else "<-"
        mode = "" if self.blocking else "i"
        return (f"rank {self.rank}: {mode}{self.kind} {arrow} rank "
                f"{self.peer} tag={self.tag!r} nbytes={self.nbytes}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpRecord({self.describe()})"


class ChannelRecord:
    """Post-order operation lists of one ``(src, dst, tag)`` channel."""

    __slots__ = ("src", "dst", "tag", "sends", "recvs")

    def __init__(self, src: int, dst: int, tag: Any):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.sends: list[OpRecord] = []
        self.recvs: list[OpRecord] = []


class CollectiveGroup:
    """All announcements observed for one ``(cid, seq)`` collective."""

    __slots__ = ("cid", "seq", "by_rank", "order")

    def __init__(self, cid: tuple, seq: int):
        self.cid = cid
        self.seq = seq
        #: world rank -> the CollectiveRequest it announced
        self.by_rank: dict[int, CollectiveRequest] = {}
        self.order: list[int] = []  # announcement order (world ranks)

    @property
    def participants(self) -> tuple:
        """Declared membership (world ranks) of the first announcement."""
        first = self.by_rank[self.order[0]]
        return first.participants

    @property
    def missing(self) -> list[int]:
        """Declared participants that never announced."""
        return [r for r in self.participants if r not in self.by_rank]


class RankObservation:
    """Per-rank recorder state."""

    __slots__ = ("rank", "nops", "pending", "finished", "crashed",
                 "handles", "retval")

    def __init__(self, rank: int):
        self.rank = rank
        self.nops = 0
        #: the request observed but not yet resumed (None when idle)
        self.pending: Any = None
        self.finished = False
        self.crashed = False
        #: id(handle) -> OpRecord for program-visible handles (identity
        #: keyed; handles returned to programs are fresh objects, never
        #: engine-pooled, so ids stay unique while referenced here)
        self.handles: dict[int, OpRecord] = {}
        self.retval: Any = None


class Recorder:
    """Record one run's communication structure via generator wrapping.

    Use :meth:`wrap` on every rank program before handing the set to
    the engine; after the run (clean or not), hand the recorder to
    :func:`repro.verify.checks.run_structural_checks` or to the
    deadlock diagnoser.
    """

    def __init__(self, nranks: int):
        self.nranks = nranks
        self.ranks = [RankObservation(r) for r in range(nranks)]
        self.channels: dict[tuple, ChannelRecord] = {}
        self.collectives: dict[tuple, CollectiveGroup] = {}
        #: (check, message, ranks, detail) found at observe time
        self.immediate: list[tuple[str, str, tuple, dict]] = []
        self._reconstructed = False
        # Records created by the most recent _observe call; at most one
        # rank steps at a time and _observe_result runs before the next
        # _observe, so single stash slots suffice.
        self._last: OpRecord | None = None
        self._last_pair: tuple[OpRecord | None, OpRecord | None] = (None, None)

    # -- wrapping -----------------------------------------------------------

    def wrap(self, rank: int, gen: Generator) -> Generator:
        """Wrap ``gen`` so every request/resume pair is observed.

        The wrapper is transparent: requests and resume values pass
        through unchanged, the program's return value is re-raised via
        ``StopIteration``, and exceptions propagate untouched.
        """
        return self._wrapped(self.ranks[rank], gen)

    def _wrapped(self, obs: RankObservation, gen: Generator) -> Generator:
        send = gen.send
        value: Any = None
        while True:
            try:
                request = send(value)
            except StopIteration as stop:
                obs.finished = True
                obs.pending = None
                obs.retval = stop.value
                return stop.value
            except BaseException:
                obs.crashed = True
                raise
            self._observe(obs, request)
            value = yield request
            self._observe_result(obs, request, value)

    # -- observation --------------------------------------------------------

    def _observe(self, obs: RankObservation, request: Any) -> OpRecord | None:
        """Record ``request``; return the OpRecord for p2p posts."""
        obs.pending = request
        cls = request.__class__
        if cls is SendRequest:
            return self._obs_send(obs, request.dst, request.tag,
                                  request.nbytes, blocking=True)
        if cls is RecvRequest:
            return self._obs_recv(obs, request.src, request.tag,
                                  blocking=True, timeout=request.timeout)
        if cls is ISendRequest:
            return self._obs_send(obs, request.dst, request.tag,
                                  request.nbytes, blocking=False)
        if cls is IRecvRequest:
            return self._obs_recv(obs, request.src, request.tag,
                                  blocking=False)
        if cls is SendRecvRequest:
            self._obs_send(obs, request.dst, request.sendtag, request.nbytes,
                           blocking=True, fused=True)
            self._obs_recv(obs, request.src, request.recvtag, blocking=True,
                           fused=True)
            return None
        if cls is WaitRequest:
            self._obs_wait(obs, request.handle)
            return None
        if cls is RequestHandle:
            self._obs_wait(obs, request)
            return None
        if cls is tuple and len(request) == 2:
            a, b = request
            if a.__class__ is RequestHandle and b.__class__ is RequestHandle:
                self._obs_wait(obs, a)
                self._obs_wait(obs, b)
            else:
                ra = self._observe(obs, a)
                rb = self._observe(obs, b)
                self._last_pair = (ra, rb)
                obs.pending = request
            return None
        if cls is CollectiveRequest:
            self._obs_collective(obs, request)
        # ComputeRequest, CounterRequest, span requests: no comm content.
        return None

    def _observe_result(self, obs: RankObservation, request: Any,
                        value: Any) -> None:
        obs.pending = None
        cls = request.__class__
        if cls is SendRequest:
            self._last.resumed = True
        elif cls is RecvRequest:
            rec = self._last
            rec.resumed = True
            if value is RECV_TIMEOUT:
                rec.timed_out = True
        elif cls is ISendRequest or cls is IRecvRequest:
            self._bind_handle(obs, self._last, value)
        elif cls is SendRecvRequest:
            # The fused wait covers both legs; a resume means both ran.
            chan_s = self._channel(obs.rank, request.dst, request.sendtag)
            chan_s.sends[-1].resumed = True
            chan_r = self._channel(request.src, obs.rank, request.recvtag)
            chan_r.recvs[-1].resumed = True
        elif cls is tuple and len(request) == 2:
            ra, rb = self._last_pair
            if ((ra is not None or rb is not None)
                    and isinstance(value, tuple) and len(value) == 2):
                if ra is not None:
                    self._bind_handle(obs, ra, value[0])
                if rb is not None:
                    self._bind_handle(obs, rb, value[1])
            self._last_pair = (None, None)
        # Waits were fully handled at observe time.

    def _obs_send(self, obs: RankObservation, dst: int, tag: Any,
                  nbytes: int, *, blocking: bool,
                  fused: bool = False) -> OpRecord:
        rank = obs.rank
        rec = OpRecord(rank, "send", dst, tag, nbytes, blocking=blocking,
                       index=obs.nops, fused=fused)
        obs.nops += 1
        self._last = rec
        if blocking and not fused and dst == rank:
            self.immediate.append((
                "self-send",
                f"rank {rank}: blocking send to self on tag {tag!r} "
                "can never match (rendezvous semantics)",
                (rank,),
                {"tag": repr(tag), "nbytes": nbytes},
            ))
        self._channel(rank, dst, tag).sends.append(rec)
        return rec

    def _obs_recv(self, obs: RankObservation, src: int, tag: Any, *,
                  blocking: bool, fused: bool = False,
                  timeout: float | None = None) -> OpRecord:
        rank = obs.rank
        rec = OpRecord(rank, "recv", src, tag, 0, blocking=blocking,
                       index=obs.nops, fused=fused, timeout=timeout)
        obs.nops += 1
        self._last = rec
        self._channel(src, rank, tag).recvs.append(rec)
        return rec

    def _obs_wait(self, obs: RankObservation, handle: RequestHandle) -> None:
        rec = obs.handles.get(id(handle))
        if rec is not None:
            rec.waited = True
            rec.resumed = True

    def _obs_collective(self, obs: RankObservation,
                        request: CollectiveRequest) -> None:
        key = (request.cid, request.seq)
        group = self.collectives.get(key)
        if group is None:
            group = self.collectives[key] = CollectiveGroup(
                request.cid, request.seq
            )
        world = request.participants[request.me]
        if world not in group.by_rank:
            group.order.append(world)
        group.by_rank[world] = request

    def _bind_handle(self, obs: RankObservation, rec: OpRecord,
                     value: Any) -> None:
        if value.__class__ is RequestHandle:
            rec.handle = value
            obs.handles[id(value)] = rec
        rec.resumed = True

    def _channel(self, src: int, dst: int, tag: Any) -> ChannelRecord:
        key = (src, dst, tag)
        chan = self.channels.get(key)
        if chan is None:
            chan = self.channels[key] = ChannelRecord(src, dst, tag)
        return chan

    # -- reconstruction -----------------------------------------------------

    def reconstruct_matching(self) -> None:
        """Pair sends with receives per channel, mirroring the engine.

        Idempotent; called by the structural checks and the deadlock
        diagnoser before they read ``matched`` flags.
        """
        if self._reconstructed:
            return
        self._reconstructed = True
        for chan in self.channels.values():
            live_recvs = [r for r in chan.recvs if not r.timed_out]
            for send, recv in zip(chan.sends, live_recvs):
                send.matched = True
                recv.matched = True

    # -- convenience views --------------------------------------------------

    def unmatched_sends(self) -> list[OpRecord]:
        self.reconstruct_matching()
        return [s for chan in self.channels.values() for s in chan.sends
                if not s.matched]

    def unmatched_recvs(self) -> list[OpRecord]:
        self.reconstruct_matching()
        return [r for chan in self.channels.values() for r in chan.recvs
                if not r.matched and not r.timed_out]

    def pending_ops(self) -> dict[int, Any]:
        """Rank -> the request it was blocked in when the run ended."""
        return {obs.rank: obs.pending for obs in self.ranks
                if obs.pending is not None and not obs.finished}

    def op_for_handle(self, rank: int, handle: Any) -> OpRecord | None:
        """The OpRecord a program-visible handle belongs to, if known."""
        return self.ranks[rank].handles.get(id(handle))

    def total_ops(self) -> int:
        return sum(obs.nops for obs in self.ranks)
