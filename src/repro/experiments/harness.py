"""Sweep/series plumbing for experiment drivers and benchmarks.

A :class:`Series` is the in-memory form of one paper figure: an x axis
(group counts, processor counts) and named y columns (comm time,
overall time, per algorithm).  It renders to the same aligned text
tables the benchmarks print and to CSV for external plotting.
"""

from __future__ import annotations

import dataclasses
import io

from repro.errors import ConfigurationError
from repro.util.tables import format_table


@dataclasses.dataclass
class Series:
    """One experiment's results.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fig8"``.
    xlabel:
        Name of the x axis (``"groups"``, ``"procs"``).
    x:
        The x values.
    columns:
        Mapping of column name to y values (same length as ``x``).
    meta:
        Free-form run parameters for the caption.
    """

    name: str
    xlabel: str
    x: list
    columns: dict[str, list[float]]
    meta: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for cname, col in self.columns.items():
            if len(col) != len(self.x):
                raise ConfigurationError(
                    f"column {cname!r} has {len(col)} values for {len(self.x)} x points"
                )

    def column(self, name: str) -> list[float]:
        try:
            return self.columns[name]
        except KeyError:
            raise ConfigurationError(
                f"series {self.name!r} has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from None

    def min_of(self, name: str) -> tuple[object, float]:
        """``(x, y)`` at the minimum of column ``name``."""
        col = self.column(name)
        idx = min(range(len(col)), key=lambda i: col[i])
        return self.x[idx], col[idx]

    def to_table(self, title: str | None = None) -> str:
        """Aligned text table (x column first)."""
        headers = [self.xlabel] + list(self.columns)
        rows = [
            [self.x[i]] + [self.columns[c][i] for c in self.columns]
            for i in range(len(self.x))
        ]
        caption = title or self._caption()
        return format_table(headers, rows, title=caption)

    def to_csv(self) -> str:
        """Comma-separated form, header row first."""
        buf = io.StringIO()
        headers = [self.xlabel] + list(self.columns)
        buf.write(",".join(headers) + "\n")
        for i in range(len(self.x)):
            cells = [str(self.x[i])] + [
                repr(self.columns[c][i]) for c in self.columns
            ]
            buf.write(",".join(cells) + "\n")
        return buf.getvalue()

    def _caption(self) -> str:
        meta = ", ".join(f"{k}={v}" for k, v in self.meta.items())
        return f"{self.name}" + (f" ({meta})" if meta else "")


def speedup(series: Series, baseline: str, improved: str) -> list[float]:
    """Element-wise ``baseline / improved`` ratio of two columns."""
    base = series.column(baseline)
    imp = series.column(improved)
    out = []
    for b, i in zip(base, imp):
        if i <= 0:
            raise ConfigurationError(f"non-positive value {i} in column {improved!r}")
        out.append(b / i)
    return out
