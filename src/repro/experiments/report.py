"""Reproduction scorecard: quick end-to-end verification of the paper's
claims at reduced scale.

``build_scorecard`` runs a scaled-down version of every headline check
(seconds, not minutes) and returns structured pass/fail results;
``hsumma report`` prints them.  This gives a newcomer a one-command
answer to "does this reproduction actually hold?" without running the
full benchmark suite.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """One scorecard line."""

    name: str
    passed: bool
    detail: str


def _check(name: str, fn: Callable[[], tuple[bool, str]]) -> CheckResult:
    try:
        ok, detail = fn()
    except Exception as exc:  # pragma: no cover - defensive surface
        return CheckResult(name, False, f"crashed: {exc}")
    return CheckResult(name, ok, detail)


def build_scorecard() -> list[CheckResult]:
    """Run every quick check; ~10 seconds total."""
    from repro.core.api import multiply
    from repro.core.hsumma import run_hsumma
    from repro.core.summa import run_summa
    from repro.mpi.comm import CollectiveOptions
    from repro.models.optimizer import hsumma_beats_summa, optimal_group_count
    from repro.network.model import HockneyParams
    from repro.payloads import PhantomArray

    params = HockneyParams(alpha=1e-4, beta=1e-9)
    vdg = CollectiveOptions(bcast="vandegeijn")
    checks: list[CheckResult] = []

    def numerics():
        rng = np.random.default_rng(0)
        A = rng.standard_normal((48, 48))
        B = rng.standard_normal((48, 48))
        worst = 0.0
        for algo, kw in [("summa", dict(grid=(4, 4), block=4)),
                         ("hsumma", dict(grid=(4, 4), block=4, groups=4)),
                         ("cannon", dict(grid=(4, 4))),
                         ("3d", dict(nprocs=8))]:
            r = multiply(A, B, algorithm=algo, params=params, **kw)
            worst = max(worst, float(np.max(np.abs(r.C - A @ B))))
        return worst < 1e-9, f"max |C - AB| = {worst:.2e} over 4 algorithms"

    checks.append(_check("distributed numerics match numpy", numerics))

    def degeneration():
        n = 128
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, s = run_summa(A, B, grid=(4, 4), block=8, params=params,
                         options=vdg)
        diffs = []
        for G in (1, 16):
            _, h = run_hsumma(A, B, grid=(4, 4), groups=G, outer_block=8,
                              params=params, options=vdg)
            diffs.append(abs(h.total_time - s.total_time) / s.total_time)
        return max(diffs) < 1e-9, (
            f"HSUMMA(G=1)=HSUMMA(G=p)=SUMMA within {max(diffs):.1e}"
        )

    checks.append(_check("degeneration identity (G in {1, p})", degeneration))

    def interior_optimum():
        n = 512
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        times = {}
        for G in (1, 8, 64):
            _, h = run_hsumma(A, B, grid=(8, 8), groups=G, outer_block=16,
                              params=params, options=vdg)
            times[G] = h.comm_time
        ok = times[8] < times[1] and times[8] < times[64]
        return ok, (
            f"comm(G=8)={times[8]:.4f} < comm(G=1)={times[1]:.4f}, "
            f"comm(G=64)={times[64]:.4f}"
        )

    checks.append(_check("interior optimum near sqrt(p) under vdg",
                         interior_optimum))

    def threshold():
        verdicts = [
            hsumma_beats_summa(8192, 64, 128, 1e-4, 1e-9),
            hsumma_beats_summa(65536, 256, 16384, 3e-6, 1e-9),
            hsumma_beats_summa(2**22, 256, 2**20, 500e-9, 8e-11),
        ]
        return all(verdicts), (
            "Grid5000 / BG-P / exascale all pass alpha/beta > 2nb/p"
        )

    checks.append(_check("paper's threshold test on all platforms",
                         threshold))

    def exascale_opt():
        G, _ = optimal_group_count(2**22, 2**20, 256, 500e-9, 8e-11)
        return G == 1024, f"model optimum G={G} (sqrt(p)=1024)"

    checks.append(_check("exascale optimum at G = sqrt(p)", exascale_opt))

    def stepmodel_matches_des():
        from repro.core.summa import SummaConfig
        from repro.experiments.stepmodel import AnalyticCoster, summa_step_model

        n = 256
        cfg = SummaConfig(m=n, l=n, n=n, s=4, t=4, block=16)
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, sim = run_summa(A, B, grid=(4, 4), block=16, params=params,
                           options=vdg, gamma=1e-9)
        rep = summa_step_model(cfg, AnalyticCoster(params, "vandegeijn"),
                               1e-9)
        rel = abs(rep.total_time - sim.total_time) / sim.total_time
        return rel < 1e-9, f"step model vs full DES differ by {rel:.1e}"

    checks.append(_check("step model == event simulation", stepmodel_matches_des))

    def future_work():
        from repro.core.overlap import run_summa_overlap
        from repro.factorization import run_block_lu

        n = 256
        A, B = PhantomArray((n, n)), PhantomArray((n, n))
        _, plain = run_summa(A, B, grid=(4, 4), block=16, params=params,
                             gamma=5e-9)
        _, over = run_summa_overlap(A, B, grid=(4, 4), block=16,
                                    params=params, gamma=5e-9)
        _, _, lu_flat = run_block_lu(PhantomArray((512, 512)), grid=(4, 4),
                                     block=32, params=params, options=vdg)
        _, _, lu_hier = run_block_lu(PhantomArray((512, 512)), grid=(4, 4),
                                     block=32, groups=(2, 2), params=params,
                                     options=vdg)
        ok = over.total_time < plain.total_time and \
            lu_hier.comm_time < lu_flat.comm_time
        return ok, (
            f"overlap {plain.total_time:.4f}->{over.total_time:.4f}s; "
            f"HLU comm {lu_flat.comm_time:.4f}->{lu_hier.comm_time:.4f}s"
        )

    checks.append(_check("future work: overlap + hierarchical LU",
                         future_work))
    return checks


def render_scorecard(results: list[CheckResult]) -> str:
    """Human-readable scorecard text."""
    lines = ["HSUMMA reproduction scorecard", "=" * 48]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.name}")
        lines.append(f"       {r.detail}")
    npass = sum(r.passed for r in results)
    lines.append("-" * 48)
    lines.append(f"{npass}/{len(results)} checks passed")
    return "\n".join(lines)
