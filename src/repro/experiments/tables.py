"""Tables I and II plus the model-validation checks of Sections IV-C/V.

The paper's tables are symbolic; these drivers evaluate every cell for
a concrete ``(n, p, b, G)`` so the benchmark can print the comparison
numerically, and additionally verify the two structural identities the
paper proves:

* HSUMMA's factors at ``G = 1`` and ``G = p`` equal SUMMA's;
* at ``G = sqrt(p)`` with the Van de Geijn broadcast the cost matches
  the closed form of equation (12).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ModelError
from repro.models.broadcast_model import BINOMIAL_MODEL, VANDEGEIJN_MODEL, BroadcastModel
from repro.models.hsumma_model import (
    hsumma_bandwidth_factor,
    hsumma_latency_factor,
    hsumma_optimal_vdg_cost,
)
from repro.models.optimizer import (
    critical_ratio,
    hsumma_beats_summa,
    predicted_extremum_kind,
)
from repro.models.summa_model import (
    summa_bandwidth_factor,
    summa_latency_factor,
)
from repro.util.tables import format_table


@dataclasses.dataclass(frozen=True)
class CostTableRow:
    """One evaluated row of Table I/II."""

    algorithm: str
    computation: float  # flops (gamma multiplier)
    latency_factor: float  # alpha multiplier
    bandwidth_factor: float  # beta multiplier (elements)


def cost_table(
    n: int,
    p: int,
    b: int,
    model: BroadcastModel,
    groups: list[int] | None = None,
) -> list[CostTableRow]:
    """Evaluate the SUMMA row and HSUMMA rows (per ``G``) of the paper's
    cost tables for broadcast ``model`` (Table I: binomial; Table II:
    Van de Geijn)."""
    if groups is None:
        q = math.isqrt(p)
        groups = sorted({1, q if q * q == p else 1, p})
    comp = 2.0 * n**3 / p
    rows = [
        CostTableRow(
            algorithm="SUMMA",
            computation=comp,
            latency_factor=summa_latency_factor(n, p, b, model),
            bandwidth_factor=summa_bandwidth_factor(n, p, model),
        )
    ]
    for G in groups:
        rows.append(
            CostTableRow(
                algorithm=f"HSUMMA(G={G})",
                computation=comp,
                latency_factor=hsumma_latency_factor(n, p, G, b, model),
                bandwidth_factor=hsumma_bandwidth_factor(n, p, G, model),
            )
        )
    return rows


def render_cost_table(
    n: int, p: int, b: int, model: BroadcastModel, groups: list[int] | None = None
) -> str:
    """Text rendering of :func:`cost_table`."""
    rows = cost_table(n, p, b, model, groups)
    title = (
        f"Cost factors with {model.name} broadcast "
        f"(n={n}, p={p}, b=B={b}); multiply by alpha/beta/gamma"
    )
    return format_table(
        ["algorithm", "computation", "latency factor", "bandwidth factor"],
        [[r.algorithm, r.computation, r.latency_factor, r.bandwidth_factor]
         for r in rows],
        title=title,
    )


def table1(n: int = 65536, p: int = 16384, b: int = 256) -> str:
    """Table I (binomial tree broadcast), evaluated."""
    q = math.isqrt(p)
    groups = sorted({1, q, p}) if q * q == p else [1, p]
    return render_cost_table(n, p, b, BINOMIAL_MODEL, groups)


def table2(n: int = 65536, p: int = 16384, b: int = 256) -> str:
    """Table II (Van de Geijn broadcast), evaluated, including the
    optimal ``G = sqrt(p)`` row of the paper."""
    q = math.isqrt(p)
    groups = sorted({1, q, p}) if q * q == p else [1, p]
    return render_cost_table(n, p, b, VANDEGEIJN_MODEL, groups)


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Section IV-C / V-A-1 / V-B-1 style model validation."""

    platform: str
    n: int
    p: int
    b: int
    alpha_over_beta: float
    threshold: float  # 2nb/p
    hsumma_wins: bool
    extremum: str  # "minimum" / "maximum" / "flat" at G = sqrt(p)
    optimal_cost: float  # eq. (12) value when a minimum exists

    def summary(self) -> str:
        verdict = (
            "HSUMMA has an interior minimum at G=sqrt(p)"
            if self.hsumma_wins
            else "HSUMMA degenerates to SUMMA (G=1 or G=p optimal)"
        )
        return (
            f"{self.platform}: alpha/beta={self.alpha_over_beta:.4g} vs "
            f"2nb/p={self.threshold:.4g} -> {verdict}"
        )


def validate_model(
    platform: str, n: int, p: int, b: int, alpha: float, beta: float
) -> ValidationReport:
    """Run the paper's threshold test for a platform parameter set."""
    if alpha <= 0 or beta <= 0:
        raise ModelError(f"need alpha, beta > 0; got {alpha}, {beta}")
    wins = hsumma_beats_summa(n, b, p, alpha, beta)
    return ValidationReport(
        platform=platform,
        n=n,
        p=p,
        b=b,
        alpha_over_beta=alpha / beta,
        threshold=critical_ratio(n, b, p),
        hsumma_wins=wins,
        extremum=predicted_extremum_kind(n, b, p, alpha, beta),
        optimal_cost=hsumma_optimal_vdg_cost(n, p, b, alpha, beta),
    )
