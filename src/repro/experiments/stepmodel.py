"""Step-synchronous fast executor for SUMMA and HSUMMA.

The full discrete-event simulator moves every message; at the paper's
BlueGene/P scale (16384 ranks) and the exascale prediction (2^20) that
is billions of events.  But SUMMA-family algorithms are *bulk
synchronous*: each step is a fixed set of broadcasts followed by a
gemm, and on the paper's no-overlap schedule the makespan is simply the
sum over steps of

    ``max_over_row_comms(T_bcast(A)) + max_over_col_comms(T_bcast(B))
      + T_gemm``

(generalised to outer + inner phases for HSUMMA).  This module computes
that sum with pluggable per-broadcast *costers*:

* :class:`AnalyticCoster` — closed-form Hockney costs (homogeneous
  networks; exactly what the full DES produces there, see the
  cross-validation tests);
* :class:`MicroDesCoster` — run just one broadcast's message schedule
  through a small engine on the real topology (exact, memoised);
* :class:`TopologyCoster` — closed-form ``L/W`` shape with
  per-communicator effective ``alpha``/``beta`` taken as the mean
  pairwise link cost among participants (fast topology sensitivity for
  the 16384-rank torus sweeps; this is what re-creates the paper's
  Figure-8 zigzags).
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Sequence

from repro.blocks.ops import gemm_flops
from repro.collectives.cost import bcast_time
from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, MpiContext
from repro.network.model import HockneyParams, Network
from repro.network.subnet import SubNetwork
from repro.payloads import PhantomArray
from repro.platforms.base import WORD_BYTES
from repro.simulator.engine import Engine


@dataclasses.dataclass(frozen=True)
class StepModelReport:
    """Timing prediction of one SUMMA/HSUMMA run."""

    total_time: float
    comm_time: float
    compute_time: float
    nsteps: int

    def __post_init__(self) -> None:
        if self.total_time < 0 or self.comm_time < 0 or self.compute_time < 0:
            raise ConfigurationError("negative time in step-model report")


class CollectiveCoster(ABC):
    """Cost oracle for one broadcast among explicit world ranks."""

    @abstractmethod
    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        """Seconds for a broadcast of ``nbytes`` among ``participants``
        (world ranks) rooted at ``participants[root_index]``."""


class AnalyticCoster(CollectiveCoster):
    """Closed-form Hockney cost; topology-blind (homogeneous networks)."""

    def __init__(
        self,
        params: HockneyParams,
        algorithm: str = "binomial",
        *,
        segments: int | None = None,
    ):
        self.params = params
        self.algorithm = algorithm
        self.segments = segments

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        return bcast_time(
            self.algorithm,
            nbytes,
            len(participants),
            self.params,
            segments=self.segments,
        )


class MicroDesCoster(CollectiveCoster):
    """Exact per-broadcast cost by simulating its message schedule on
    the real topology.  Results are memoised on
    ``(participants, root, nbytes)`` — and just on ``(size, nbytes)``
    for homogeneous networks, where position is irrelevant."""

    def __init__(
        self,
        network: Network,
        algorithm: str = "binomial",
        *,
        contention: bool = False,
        segments: int | None = None,
    ):
        self.network = network
        self.algorithm = algorithm
        self.contention = contention
        self.segments = segments
        self._memo: dict = {}
        from repro.network.homogeneous import HomogeneousNetwork

        self._uniform = (
            isinstance(network, HomogeneousNetwork) and network.intra_params is None
        )

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        participants = tuple(participants)
        if len(participants) <= 1:
            return 0.0
        if self._uniform:
            key = (len(participants), 0, nbytes)
            root = 0
        else:
            key = (participants, root_index, nbytes)
            root = root_index
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        t = self._simulate(participants, root, nbytes)
        self._memo[key] = t
        return t

    def _simulate(
        self, participants: tuple[int, ...], root: int, nbytes: int
    ) -> float:
        subnet = SubNetwork(self.network, participants)
        options = CollectiveOptions(bcast=self.algorithm, bcast_segments=self.segments)
        algorithm = self.algorithm

        def program(ctx: MpiContext):
            payload = (
                PhantomArray((nbytes,), itemsize=1) if ctx.rank == root else None
            )
            yield from ctx.world.bcast(payload, root=root, algorithm=algorithm)

        programs = [
            program(MpiContext(r, len(participants), options=options))
            for r in range(len(participants))
        ]
        sim = Engine(subnet, contention=self.contention).run(programs)
        return sim.total_time


class TopologyCoster(CollectiveCoster):
    """``L/W``-form cost with effective parameters per communicator.

    ``alpha_eff`` / ``beta_eff`` are the mean pairwise zero-byte latency
    and per-byte slope among the participants on the real topology, so
    a group whose members straddle the torus pays more than a compact
    one — cheap topology sensitivity at 16384 ranks.
    """

    #: Pairs sampled per communicator before falling back to all pairs.
    MAX_PAIR_SAMPLES = 512
    #: Probe size for estimating the per-byte slope.
    PROBE_BYTES = 1 << 20

    def __init__(self, network: Network, algorithm: str = "binomial"):
        self.network = network
        self.algorithm = algorithm
        self._memo: dict[tuple[int, ...], HockneyParams] = {}

    def _effective_params(self, participants: tuple[int, ...]) -> HockneyParams:
        hit = self._memo.get(participants)
        if hit is not None:
            return hit
        pairs = self._pairs(participants)
        total_alpha = 0.0
        total_full = 0.0
        for a, b in pairs:
            total_alpha += self.network.transfer_time(a, b, 0)
            total_full += self.network.transfer_time(a, b, self.PROBE_BYTES)
        npairs = len(pairs)
        alpha = total_alpha / npairs
        beta = (total_full - total_alpha) / (npairs * self.PROBE_BYTES)
        params = HockneyParams(alpha=max(alpha, 1e-30), beta=max(beta, 1e-30))
        self._memo[participants] = params
        return params

    def _pairs(self, participants: tuple[int, ...]) -> list[tuple[int, int]]:
        n = len(participants)
        all_pairs = n * (n - 1)
        if all_pairs <= self.MAX_PAIR_SAMPLES:
            return [
                (a, b) for a in participants for b in participants if a != b
            ]
        # Deterministic stride sampling over the ordered-pair lattice.
        pairs = []
        stride = max(1, all_pairs // self.MAX_PAIR_SAMPLES)
        idx = 0
        while len(pairs) < self.MAX_PAIR_SAMPLES:
            i, j = divmod(idx % all_pairs, n - 1)
            a = participants[i % n]
            others = idx % (n - 1)
            b = participants[(i + 1 + others) % n]
            if a != b:
                pairs.append((a, b))
            idx += stride + 1
        return pairs

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        participants = tuple(participants)
        if len(participants) <= 1:
            return 0.0
        params = self._effective_params(participants)
        return bcast_time(self.algorithm, nbytes, len(participants), params)


# ---------------------------------------------------------------------------
# Step models
# ---------------------------------------------------------------------------


def summa_step_model(
    cfg: SummaConfig, coster: CollectiveCoster, gamma: float = 0.0
) -> StepModelReport:
    """Predict a SUMMA run's times under the step-synchronous schedule."""
    s, t = cfg.s, cfg.t
    row_ranks = [tuple(i * t + j for j in range(t)) for i in range(s)]
    col_ranks = [tuple(i * t + j for i in range(s)) for j in range(t)]
    a_bytes = (cfg.m // s) * cfg.block * WORD_BYTES
    b_bytes = cfg.block * (cfg.n // t) * WORD_BYTES
    gemm = gamma * gemm_flops(cfg.m // s, cfg.block, cfg.n // t)
    a_tile_cols = cfg.l // t
    b_tile_rows = cfg.l // s

    # The per-step maxima depend only on the owner coordinates, which
    # cycle over the grid; memoise them.
    a_max: dict[int, float] = {}
    b_max: dict[int, float] = {}
    comm = 0.0
    for k in range(cfg.nsteps):
        g0 = k * cfg.block
        owner_col = g0 // a_tile_cols
        owner_row = g0 // b_tile_rows
        if owner_col not in a_max:
            a_max[owner_col] = max(
                coster.bcast_time(ranks, owner_col, a_bytes) for ranks in row_ranks
            )
        if owner_row not in b_max:
            b_max[owner_row] = max(
                coster.bcast_time(ranks, owner_row, b_bytes) for ranks in col_ranks
            )
        comm += a_max[owner_col] + b_max[owner_row]
    compute = cfg.nsteps * gemm
    return StepModelReport(
        total_time=comm + compute,
        comm_time=comm,
        compute_time=compute,
        nsteps=cfg.nsteps,
    )


def hsumma_step_model(
    cfg: HSummaConfig,
    coster: CollectiveCoster,
    gamma: float = 0.0,
    *,
    outer_coster: CollectiveCoster | None = None,
) -> StepModelReport:
    """Predict an HSUMMA run's times under the step-synchronous schedule.

    ``outer_coster`` allows a different broadcast algorithm between
    groups (defaults to ``coster``).
    """
    oc = outer_coster or coster
    s, t = cfg.s, cfg.t
    si, tj = cfg.inner_s, cfg.inner_t
    I, J = cfg.I, cfg.J

    # Outer-row comm for (grid row i, inner col jj): the J ranks
    # (i, y*tj + jj); comm rank == y.
    outer_row = {
        (i, jj): tuple(i * t + (y * tj + jj) for y in range(J))
        for i in range(s)
        for jj in range(tj)
    }
    outer_col = {
        (j, ii): tuple((x * si + ii) * t + j for x in range(I))
        for j in range(t)
        for ii in range(si)
    }
    # Inner-row comm for (grid row i, group col y): the tj ranks
    # (i, y*tj + jj'); comm rank == jj.
    inner_row = {
        (i, y): tuple(i * t + (y * tj + jj) for jj in range(tj))
        for i in range(s)
        for y in range(J)
    }
    inner_col = {
        (j, x): tuple((x * si + ii) * t + j for ii in range(si))
        for j in range(t)
        for x in range(I)
    }

    a_outer_bytes = (cfg.m // s) * cfg.outer_block * WORD_BYTES
    b_outer_bytes = cfg.outer_block * (cfg.n // t) * WORD_BYTES
    a_inner_bytes = (cfg.m // s) * cfg.inner_block * WORD_BYTES
    b_inner_bytes = cfg.inner_block * (cfg.n // t) * WORD_BYTES
    gemm = gamma * gemm_flops(cfg.m // s, cfg.inner_block, cfg.n // t)
    a_tile_cols = cfg.l // t
    b_tile_rows = cfg.l // s

    # Step costs depend on the step index only through the owner
    # coordinates, which cycle; memoise each phase's max on them.
    outer_a_max: dict[tuple[int, int], float] = {}
    outer_b_max: dict[tuple[int, int], float] = {}
    inner_a_max: dict[int, float] = {}
    inner_b_max: dict[int, float] = {}

    comm = 0.0
    for K in range(cfg.outer_steps):
        g0 = K * cfg.outer_block
        yk, jk = divmod(g0 // a_tile_cols, tj)
        xk, ik = divmod(g0 // b_tile_rows, si)
        # Outer phase: only the (i, jk) row comms / (j, ik) col comms act.
        if (yk, jk) not in outer_a_max:
            outer_a_max[(yk, jk)] = max(
                oc.bcast_time(outer_row[(i, jk)], yk, a_outer_bytes)
                for i in range(s)
            )
        comm += outer_a_max[(yk, jk)]
        if (xk, ik) not in outer_b_max:
            outer_b_max[(xk, ik)] = max(
                oc.bcast_time(outer_col[(j, ik)], xk, b_outer_bytes)
                for j in range(t)
            )
        comm += outer_b_max[(xk, ik)]
        # Inner phase: every group broadcasts from its jk column / ik row.
        if jk not in inner_a_max:
            inner_a_max[jk] = max(
                coster.bcast_time(inner_row[(i, y)], jk, a_inner_bytes)
                for i in range(s)
                for y in range(J)
            )
        if ik not in inner_b_max:
            inner_b_max[ik] = max(
                coster.bcast_time(inner_col[(j, x)], ik, b_inner_bytes)
                for j in range(t)
                for x in range(I)
            )
        comm += cfg.inner_steps * (inner_a_max[jk] + inner_b_max[ik])
    compute = cfg.outer_steps * cfg.inner_steps * gemm
    return StepModelReport(
        total_time=comm + compute,
        comm_time=comm,
        compute_time=compute,
        nsteps=cfg.outer_steps * cfg.inner_steps,
    )
