"""Step-synchronous fast executor for SUMMA and HSUMMA.

The full discrete-event simulator moves every message; at the paper's
BlueGene/P scale (16384 ranks) and the exascale prediction (2^20) that
is billions of events.  But SUMMA-family algorithms are *bulk
synchronous*: each step is a fixed set of broadcasts followed by a
gemm, and on the paper's no-overlap schedule the makespan is simply the
sum over steps of

    ``max_over_row_comms(T_bcast(A)) + max_over_col_comms(T_bcast(B))
      + T_gemm``

(generalised to outer + inner phases for HSUMMA).  This module now
delegates that computation to the macro backend
(:class:`repro.simulator.backends.MacroBackend`), which runs the *real*
rank programs and satisfies every collective from a pluggable *coster*
— so the step model and the discrete-event simulation share one
schedule description by construction.  The costers:

* :class:`AnalyticCoster` — closed-form Hockney costs (homogeneous
  networks; exactly what the full DES produces there, see the
  cross-validation tests);
* :class:`MicroDesCoster` — run just one broadcast's message schedule
  through a small engine on the real topology (exact, memoised);
* :class:`TopologyCoster` — closed-form ``L/W`` shape with
  per-communicator effective ``alpha``/``beta`` taken as the mean
  pairwise link cost among participants (fast topology sensitivity for
  the 16384-rank torus sweeps; this is what re-creates the paper's
  Figure-8 zigzags).
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Sequence

from repro.collectives.cost import bcast_time
from repro.collectives.cost import collective_time as collective_cost
from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams, Network
from repro.network.subnet import SubNetwork
from repro.payloads import PhantomArray
from repro.simulator.backends import MacroBackend
from repro.simulator.engine import Engine
from repro.simulator.runtime import DEFAULT_PARAMS


@dataclasses.dataclass(frozen=True)
class StepModelReport:
    """Timing prediction of one SUMMA/HSUMMA run."""

    total_time: float
    comm_time: float
    compute_time: float
    nsteps: int

    def __post_init__(self) -> None:
        if self.total_time < 0 or self.comm_time < 0 or self.compute_time < 0:
            raise ConfigurationError("negative time in step-model report")


class CollectiveCoster(ABC):
    """Cost oracle for one collective among explicit world ranks.

    The macro backend queries :meth:`collective_time` for every
    collective a rank program issues; :meth:`bcast_time` is the
    historical broadcast-only entry point the figure sweeps use
    directly.

    ``participant_invariant`` declares that :meth:`collective_time`
    depends only on ``(op, algorithm, len(participants), nbytes,
    segments, cid)`` — never on *which* world ranks participate or
    which is root.  The symmetry-collapsed macro path and the
    predictor rely on it (see ``docs/cost_model.md``); costers that
    price by topology position must leave it False.
    """

    participant_invariant: bool = False

    @abstractmethod
    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        """Seconds for a broadcast of ``nbytes`` among ``participants``
        (world ranks) rooted at ``participants[root_index]``."""

    def collective_time(
        self,
        op: str,
        algorithm: str | None,
        participants: Sequence[int],
        root_index: int,
        nbytes: int,
        *,
        segments: int | None = None,
        cid: tuple | None = None,
    ) -> float:
        """Seconds for one collective (macro-backend oracle interface).

        ``nbytes`` follows :func:`repro.collectives.cost.collective_time`
        conventions (total at root for bcast/scatter, per-rank
        contribution otherwise).  ``cid`` is the communicator context id
        of the requesting collective, for costers that discriminate by
        communicator; the closed-form costers ignore it.
        """
        if op == "bcast":
            return self.bcast_time(participants, root_index, nbytes)
        raise ConfigurationError(
            f"{type(self).__name__} cannot cost collective op {op!r}"
        )


class AnalyticCoster(CollectiveCoster):
    """Closed-form Hockney cost; topology-blind (homogeneous networks)."""

    participant_invariant = True

    def __init__(
        self,
        params: HockneyParams,
        algorithm: str = "binomial",
        *,
        segments: int | None = None,
    ):
        self.params = params
        self.algorithm = algorithm
        self.segments = segments

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        return bcast_time(
            self.algorithm,
            nbytes,
            len(participants),
            self.params,
            segments=self.segments,
        )

    def collective_time(
        self,
        op: str,
        algorithm: str | None,
        participants: Sequence[int],
        root_index: int,
        nbytes: int,
        *,
        segments: int | None = None,
        cid: tuple | None = None,
    ) -> float:
        return collective_cost(
            op,
            algorithm or self.algorithm,
            nbytes,
            len(participants),
            self.params,
            segments=segments if segments is not None else self.segments,
        )


class MicroDesCoster(CollectiveCoster):
    """Exact per-collective cost by simulating its message schedule on
    the real topology.  Results are memoised on
    ``(op, algorithm, participants, root, nbytes)`` — with the
    participant tuple collapsed to its size for homogeneous networks,
    where position is irrelevant."""

    def __init__(
        self,
        network: Network,
        algorithm: str = "binomial",
        *,
        contention: bool = False,
        segments: int | None = None,
    ):
        self.network = network
        self.algorithm = algorithm
        self.contention = contention
        self.segments = segments
        self._memo: dict = {}
        self._uniform = (
            isinstance(network, HomogeneousNetwork) and network.intra_params is None
        )
        # On a uniform network the memo key already collapses the
        # participant tuple to its size, which is exactly the
        # invariance contract.
        self.participant_invariant = self._uniform

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        return self.collective_time(
            "bcast", self.algorithm, participants, root_index, nbytes,
            segments=self.segments,
        )

    def collective_time(
        self,
        op: str,
        algorithm: str | None,
        participants: Sequence[int],
        root_index: int,
        nbytes: int,
        *,
        segments: int | None = None,
        cid: tuple | None = None,
    ) -> float:
        participants = tuple(participants)
        if len(participants) <= 1:
            return 0.0
        if op == "bcast":
            algorithm = algorithm or self.algorithm
            if segments is None:
                segments = self.segments
        if self._uniform:
            key = (op, algorithm, segments, len(participants), 0, nbytes)
            root = 0
        else:
            key = (op, algorithm, segments, participants, root_index, nbytes)
            root = root_index
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        t = self._simulate(op, algorithm, participants, root, nbytes, segments)
        self._memo[key] = t
        return t

    def _simulate(
        self,
        op: str,
        algorithm: str | None,
        participants: tuple[int, ...],
        root: int,
        nbytes: int,
        segments: int | None,
    ) -> float:
        subnet = SubNetwork(self.network, participants)
        n = len(participants)
        kwargs: dict = {}
        if algorithm is not None and op in ("bcast", "allgather", "reduce",
                                            "allreduce"):
            kwargs[op] = algorithm
        if op == "bcast":
            kwargs["bcast_segments"] = segments
        options = CollectiveOptions(**kwargs)

        def program(ctx: MpiContext):
            comm = ctx.world
            if op == "bcast":
                payload = (
                    PhantomArray((nbytes,), itemsize=1)
                    if ctx.rank == root else None
                )
                yield from comm.bcast(payload, root=root, algorithm=algorithm)
            elif op == "scatter":
                parts = None
                if ctx.rank == root:
                    base, extra = divmod(nbytes, n)
                    parts = [
                        PhantomArray((base + (1 if i < extra else 0),),
                                     itemsize=1)
                        for i in range(n)
                    ]
                yield from comm.scatter(parts, root=root)
            elif op == "gather":
                yield from comm.gather(
                    PhantomArray((nbytes,), itemsize=1), root=root
                )
            elif op == "allgather":
                yield from comm.allgather(PhantomArray((nbytes,), itemsize=1))
            elif op == "reduce":
                yield from comm.reduce(
                    PhantomArray((nbytes,), itemsize=1), root=root
                )
            elif op == "allreduce":
                yield from comm.allreduce(PhantomArray((nbytes,), itemsize=1))
            elif op == "barrier":
                yield from comm.barrier()
            else:
                raise ConfigurationError(
                    f"micro-DES coster cannot simulate op {op!r}"
                )

        programs = [
            program(MpiContext(r, n, options=options)) for r in range(n)
        ]
        sim = Engine(subnet, contention=self.contention).run(programs)
        return sim.total_time


class TopologyCoster(CollectiveCoster):
    """``L/W``-form cost with effective parameters per communicator.

    ``alpha_eff`` / ``beta_eff`` are the mean pairwise zero-byte latency
    and per-byte slope among the participants on the real topology, so
    a group whose members straddle the torus pays more than a compact
    one — cheap topology sensitivity at 16384 ranks.
    """

    #: Pairs sampled per communicator before falling back to all pairs.
    MAX_PAIR_SAMPLES = 512
    #: Probe size for estimating the per-byte slope.
    PROBE_BYTES = 1 << 20

    def __init__(self, network: Network, algorithm: str = "binomial"):
        self.network = network
        self.algorithm = algorithm
        self._memo: dict[tuple[int, ...], HockneyParams] = {}

    def _effective_params(self, participants: tuple[int, ...]) -> HockneyParams:
        hit = self._memo.get(participants)
        if hit is not None:
            return hit
        pairs = self._pairs(participants)
        total_alpha = 0.0
        total_full = 0.0
        for a, b in pairs:
            total_alpha += self.network.transfer_time(a, b, 0)
            total_full += self.network.transfer_time(a, b, self.PROBE_BYTES)
        npairs = len(pairs)
        alpha = total_alpha / npairs
        beta = (total_full - total_alpha) / (npairs * self.PROBE_BYTES)
        params = HockneyParams(alpha=max(alpha, 1e-30), beta=max(beta, 1e-30))
        self._memo[participants] = params
        return params

    def _pairs(self, participants: tuple[int, ...]) -> list[tuple[int, int]]:
        n = len(participants)
        all_pairs = n * (n - 1)
        if all_pairs <= self.MAX_PAIR_SAMPLES:
            return [
                (a, b) for a in participants for b in participants if a != b
            ]
        # Deterministic sample of MAX_PAIR_SAMPLES *distinct* ordered
        # pairs, spread evenly over the pair lattice.  Enumerate the
        # lattice as q in [0, all_pairs): q = a_idx*(n-1) + b_off, where
        # b_off skips the diagonal.  Taking q = floor(i*all_pairs/M) for
        # i in [0, M) gives strictly increasing q (since all_pairs > M),
        # hence distinct pairs with uniform coverage of senders and
        # receivers.
        pairs = []
        for i in range(self.MAX_PAIR_SAMPLES):
            q = (i * all_pairs) // self.MAX_PAIR_SAMPLES
            a_idx, b_off = divmod(q, n - 1)
            b_idx = b_off if b_off < a_idx else b_off + 1
            pairs.append((participants[a_idx], participants[b_idx]))
        return pairs

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        participants = tuple(participants)
        if len(participants) <= 1:
            return 0.0
        params = self._effective_params(participants)
        return bcast_time(self.algorithm, nbytes, len(participants), params)

    def collective_time(
        self,
        op: str,
        algorithm: str | None,
        participants: Sequence[int],
        root_index: int,
        nbytes: int,
        *,
        segments: int | None = None,
        cid: tuple | None = None,
    ) -> float:
        participants = tuple(participants)
        if len(participants) <= 1:
            return 0.0
        params = self._effective_params(participants)
        return collective_cost(
            op,
            algorithm or self.algorithm,
            nbytes,
            len(participants),
            params,
            segments=segments,
        )


# ---------------------------------------------------------------------------
# Step models: thin compatibility wrappers over the macro backend
# ---------------------------------------------------------------------------
#
# Historically these functions re-implemented the SUMMA/HSUMMA schedules
# as hand-derived per-step maxima — a drift hazard against the rank
# programs.  They now run the *real* rank programs on the macro backend
# (collectives priced by the coster, everything else inherited from the
# engine), so there is exactly one description of each schedule in the
# repository.


class _HsummaPhaseCoster(CollectiveCoster):
    """Routes HSUMMA outer-phase collectives to a separate coster.

    Discrimination is by communicator context id: ``hsumma_program``
    derives its communicators from the world in a fixed order (Cart
    row, Cart col, outer row, outer col, inner row, inner col), so the
    outer-group communicators carry world child sequence numbers 2 and
    3.  Coupled to that construction order by design.
    """

    _OUTER_SEQS = (2, 3)

    def __init__(self, inner: CollectiveCoster, outer: CollectiveCoster):
        self._inner = inner
        self._outer = outer
        self.algorithm = getattr(inner, "algorithm", "binomial")
        self.segments = getattr(inner, "segments", None)
        self.participant_invariant = (
            getattr(inner, "participant_invariant", False)
            and getattr(outer, "participant_invariant", False)
        )

    def bcast_time(
        self, participants: Sequence[int], root_index: int, nbytes: int
    ) -> float:
        return self._inner.bcast_time(participants, root_index, nbytes)

    def collective_time(
        self,
        op: str,
        algorithm: str | None,
        participants: Sequence[int],
        root_index: int,
        nbytes: int,
        *,
        segments: int | None = None,
        cid: tuple | None = None,
    ) -> float:
        if cid and cid[0] in self._OUTER_SEQS:
            coster = self._outer
            algorithm = getattr(coster, "algorithm", algorithm)
            segments = getattr(coster, "segments", segments)
        else:
            coster = self._inner
        return coster.collective_time(
            op, algorithm, participants, root_index, nbytes,
            segments=segments, cid=cid,
        )


def _coster_network(coster: CollectiveCoster, nranks: int) -> Network:
    """The network the macro backend should run over for ``coster``."""
    net = getattr(coster, "network", None)
    if net is not None and net.nranks >= nranks:
        return net
    params = getattr(coster, "params", None) or DEFAULT_PARAMS
    return HomogeneousNetwork(nranks, params)


def _run_macro(
    cfg,
    program_factory,
    coster: CollectiveCoster,
    gamma: float,
    nsteps: int,
    *,
    network_coster: CollectiveCoster | None = None,
    symmetry=None,
) -> StepModelReport:
    nranks = cfg.s * cfg.t
    options = CollectiveOptions(
        bcast=getattr(coster, "algorithm", "binomial"),
        bcast_segments=getattr(coster, "segments", None),
    )
    a_tile = PhantomArray((cfg.m // cfg.s, cfg.l // cfg.t))
    b_tile = PhantomArray((cfg.l // cfg.s, cfg.n // cfg.t))

    def make_programs():
        return [
            program_factory(ctx, a_tile, b_tile, cfg)
            for ctx in make_contexts(nranks, options=options, gamma=gamma)
        ]

    network = _coster_network(network_coster or coster, nranks)
    backend = MacroBackend(network, coster=coster, symmetry=symmetry)
    sim = backend.run_with_factory(make_programs)
    return StepModelReport(
        total_time=sim.total_time,
        comm_time=sim.comm_time,
        compute_time=sim.compute_time,
        nsteps=nsteps,
    )


def summa_step_model(
    cfg: SummaConfig, coster: CollectiveCoster, gamma: float = 0.0
) -> StepModelReport:
    """Predict a SUMMA run's times under the step-synchronous schedule."""
    from repro.core.summa import summa_program
    from repro.simulator.collapse import summa_symmetry

    return _run_macro(
        cfg, summa_program, coster, gamma, cfg.nsteps,
        symmetry=summa_symmetry(cfg.s, cfg.t),
    )


def hsumma_step_model(
    cfg: HSummaConfig,
    coster: CollectiveCoster,
    gamma: float = 0.0,
    *,
    outer_coster: CollectiveCoster | None = None,
) -> StepModelReport:
    """Predict an HSUMMA run's times under the step-synchronous schedule.

    ``outer_coster`` allows a different broadcast algorithm between
    groups (defaults to ``coster``).
    """
    from repro.core.hsumma import hsumma_program
    from repro.simulator.collapse import hsumma_symmetry

    effective = coster
    if outer_coster is not None:
        effective = _HsummaPhaseCoster(coster, outer_coster)
    return _run_macro(
        cfg,
        hsumma_program,
        effective,
        gamma,
        cfg.outer_steps * cfg.inner_steps,
        network_coster=coster,
        symmetry=hsumma_symmetry(cfg.s, cfg.t, cfg.I, cfg.J),
    )
