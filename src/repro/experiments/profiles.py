"""Per-step cost profiles of SUMMA/HSUMMA schedules.

Where :mod:`repro.experiments.stepmodel` returns totals, these
functions return the *series* of per-step communication costs, which
exposes schedule structure: SUMMA's per-step cost is constant on a
homogeneous network, steps cluster by pivot owner on a topology-aware
one, and HSUMMA's outer steps are visibly heavier than its inner ones
when ``b < B``.
"""

from __future__ import annotations

import dataclasses

from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.experiments.stepmodel import CollectiveCoster
from repro.platforms.base import WORD_BYTES


@dataclasses.dataclass(frozen=True)
class StepProfile:
    """Per-step communication costs of one schedule."""

    comm_per_step: tuple[float, ...]
    gemm_per_step: float

    @property
    def total_comm(self) -> float:
        return sum(self.comm_per_step)

    @property
    def peak_step(self) -> int:
        """Index of the most expensive step."""
        return max(range(len(self.comm_per_step)),
                   key=lambda i: self.comm_per_step[i])

    def variability(self) -> float:
        """Max/min ratio of per-step costs (1.0 = perfectly regular)."""
        lo = min(self.comm_per_step)
        hi = max(self.comm_per_step)
        return hi / lo if lo > 0 else float("inf")


def summa_step_profile(
    cfg: SummaConfig, coster: CollectiveCoster, gamma: float = 0.0
) -> StepProfile:
    """Per-step comm costs of the SUMMA schedule."""
    s, t = cfg.s, cfg.t
    row_ranks = [tuple(i * t + j for j in range(t)) for i in range(s)]
    col_ranks = [tuple(i * t + j for i in range(s)) for j in range(t)]
    a_bytes = (cfg.m // s) * cfg.block * WORD_BYTES
    b_bytes = cfg.block * (cfg.n // t) * WORD_BYTES
    a_tile_cols = cfg.l // t
    b_tile_rows = cfg.l // s
    gemm = gamma * 2.0 * (cfg.m // s) * cfg.block * (cfg.n // t)

    steps = []
    for k in range(cfg.nsteps):
        g0 = k * cfg.block
        owner_col = g0 // a_tile_cols
        owner_row = g0 // b_tile_rows
        cost = max(
            coster.bcast_time(r, owner_col, a_bytes) for r in row_ranks
        ) + max(
            coster.bcast_time(c, owner_row, b_bytes) for c in col_ranks
        )
        steps.append(cost)
    return StepProfile(comm_per_step=tuple(steps), gemm_per_step=gemm)


def hsumma_step_profile(
    cfg: HSummaConfig, coster: CollectiveCoster, gamma: float = 0.0
) -> StepProfile:
    """Per-*inner*-step comm costs of the HSUMMA schedule (outer-phase
    cost charged to the first inner step of each outer block)."""
    s, t = cfg.s, cfg.t
    si, tj = cfg.inner_s, cfg.inner_t
    I, J = cfg.I, cfg.J
    outer_row = {
        (i, jj): tuple(i * t + (y * tj + jj) for y in range(J))
        for i in range(s) for jj in range(tj)
    }
    outer_col = {
        (j, ii): tuple((x * si + ii) * t + j for x in range(I))
        for j in range(t) for ii in range(si)
    }
    inner_row = {
        (i, y): tuple(i * t + (y * tj + jj) for jj in range(tj))
        for i in range(s) for y in range(J)
    }
    inner_col = {
        (j, x): tuple((x * si + ii) * t + j for ii in range(si))
        for j in range(t) for x in range(I)
    }
    a_outer = (cfg.m // s) * cfg.outer_block * WORD_BYTES
    b_outer = cfg.outer_block * (cfg.n // t) * WORD_BYTES
    a_inner = (cfg.m // s) * cfg.inner_block * WORD_BYTES
    b_inner = cfg.inner_block * (cfg.n // t) * WORD_BYTES
    a_tile_cols = cfg.l // t
    b_tile_rows = cfg.l // s
    gemm = gamma * 2.0 * (cfg.m // s) * cfg.inner_block * (cfg.n // t)

    steps = []
    for K in range(cfg.outer_steps):
        g0 = K * cfg.outer_block
        yk, jk = divmod(g0 // a_tile_cols, tj)
        xk, ik = divmod(g0 // b_tile_rows, si)
        outer_cost = max(
            coster.bcast_time(outer_row[(i, jk)], yk, a_outer)
            for i in range(s)
        ) + max(
            coster.bcast_time(outer_col[(j, ik)], xk, b_outer)
            for j in range(t)
        )
        inner_cost = max(
            coster.bcast_time(inner_row[(i, y)], jk, a_inner)
            for i in range(s) for y in range(J)
        ) + max(
            coster.bcast_time(inner_col[(j, x)], ik, b_inner)
            for j in range(t) for x in range(I)
        )
        for kk in range(cfg.inner_steps):
            steps.append(inner_cost + (outer_cost if kk == 0 else 0.0))
    return StepProfile(comm_per_step=tuple(steps), gemm_per_step=gemm)
