"""Experiment reproduction machinery.

* :mod:`repro.experiments.stepmodel` — the fast step-synchronous
  executor: charges every SUMMA/HSUMMA step the cost of its constituent
  broadcasts (costed analytically, by micro-simulation, or by a
  topology-effective approximation) and scales to the paper's 16384-
  and 2^20-rank settings.
* :mod:`repro.experiments.harness` — sweep/series plumbing and table
  output.
* :mod:`repro.experiments.figures` — one driver per paper figure
  (5-10).
* :mod:`repro.experiments.tables` — Tables I and II plus the Section
  IV-C/V model-validation checks.
"""

from repro.experiments.harness import Series
from repro.experiments.stepmodel import (
    AnalyticCoster,
    MicroDesCoster,
    TopologyCoster,
    StepModelReport,
    hsumma_step_model,
    summa_step_model,
)

__all__ = [
    "Series",
    "AnalyticCoster",
    "MicroDesCoster",
    "TopologyCoster",
    "StepModelReport",
    "hsumma_step_model",
    "summa_step_model",
]
