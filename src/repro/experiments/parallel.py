"""Parallel sweep execution with an on-disk content-hash result cache.

Every paper figure is a *sweep*: the same deterministic simulation (or
step model) evaluated at many independent configurations — group
counts, processor counts, block sizes.  Points share nothing, so they
are embarrassingly parallel; and because the simulator is bit-exact,
a point's result is a pure function of its configuration, so it can be
cached on disk and reused across runs forever (until the algorithms
themselves change — see :data:`SWEEP_CACHE_SALT`).

Two pieces:

* :func:`parallel_map` — evaluate ``fn(spec)`` over a list of specs,
  optionally across worker processes, returning results **in input
  order** regardless of completion order (the deterministic merge; a
  sweep's output must not depend on ``--jobs``).
* :class:`SweepCache` — maps ``sha256(fn, salt, spec)`` to the point's
  JSON result under a cache directory (the benchmarks use
  ``benchmarks/results/.cache/``).

Constraints for ``fn``: it must be a *module-level* function (worker
processes import it by qualified name via pickle) and ``spec``/result
must be JSON-serialisable — which they want to be anyway, since the
spec doubles as the cache key and the result as the cached value.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError

#: Version salt folded into every cache key.  Bump whenever a change —
#: an engine optimisation gone wrong, a collective algorithm fix, a
#: cost-model correction — could alter any sweep point's value: every
#: previously cached entry then misses and is recomputed.
SWEEP_CACHE_SALT = "des-hotpath-1"

#: Distinguishes "not cached" from a cached ``None``.
_MISS = object()


def spec_key(fn_name: str, spec: Mapping[str, Any],
             salt: str = SWEEP_CACHE_SALT) -> str:
    """Content hash of one sweep point: function identity + version
    salt + canonical-JSON spec.  Any parameter that can influence the
    result — network parameters, grid shape, block sizes, fault spec —
    must be inside ``spec``; two specs differing in any leaf hash to
    different keys."""
    try:
        blob = json.dumps(
            {"fn": fn_name, "salt": salt, "spec": spec},
            sort_keys=True, separators=(",", ":"),
        )
    except TypeError as exc:
        raise ConfigurationError(
            f"sweep spec is not JSON-serialisable: {exc}"
        ) from None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """On-disk result cache for sweep points.

    One JSON file per point under ``root``, named by the content hash
    of (function, salt, spec).  Entries record their spec and salt, so
    the cache is self-describing and :meth:`prune` can drop entries
    written under older salts.  Writes are atomic (rename from a temp
    file), making concurrent sweeps over the same cache safe.
    """

    def __init__(self, root: str | os.PathLike,
                 *, salt: str = SWEEP_CACHE_SALT):
        self.root = pathlib.Path(root)
        self.salt = salt

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def lookup(self, fn_name: str, spec: Mapping[str, Any]) -> Any:
        """Cached value for the point, or the module's miss sentinel."""
        path = self._path(spec_key(fn_name, spec, self.salt))
        try:
            entry = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return _MISS
        return entry.get("value")

    def store(self, fn_name: str, spec: Mapping[str, Any], value: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        key = spec_key(fn_name, spec, self.salt)
        entry = {"fn": fn_name, "salt": self.salt, "spec": dict(spec),
                 "value": value}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def prune(self) -> int:
        """Delete entries written under a different salt; returns the
        number removed.  (Stale entries are already unreachable — their
        keys embed the old salt — so this is purely disk hygiene.)"""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if entry.get("salt") != self.salt:
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def parallel_map(
    fn: Callable[[Mapping[str, Any]], Any],
    specs: Sequence[Mapping[str, Any]],
    *,
    jobs: int | None = 1,
    cache: SweepCache | None = None,
) -> list[Any]:
    """Evaluate ``fn`` at every spec; return results in input order.

    ``jobs > 1`` fans uncached points across that many worker
    processes.  Completion order is arbitrary, but results are merged
    by input index, so the returned list — and anything derived from
    it — is identical for every ``jobs`` value.  With a ``cache``,
    hits are served from disk and misses are stored after evaluation.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    fn_name = f"{fn.__module__}.{fn.__qualname__}"
    results: list[Any] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            hit = cache.lookup(fn_name, spec)
            if hit is not _MISS:
                results[i] = hit
                continue
        pending.append(i)

    if jobs is not None and jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(fn, specs[i]): i for i in pending}
            for fut in as_completed(futures):
                results[futures[fut]] = fut.result()
    else:
        for i in pending:
            results[i] = fn(specs[i])

    if cache is not None:
        for i in pending:
            cache.store(fn_name, specs[i], results[i])
    return results
