"""Ascii timelines from simulation traces.

``render_timeline`` turns a traced :class:`~repro.simulator.SimResult`
into a per-rank Gantt chart: one row per rank, time bucketed into
columns, each cell showing what dominated that bucket (sending,
receiving, both, or idle).  Meant for debugging schedules — e.g. seeing
the lookahead pipeline of :mod:`repro.core.overlap` actually overlap —
and for teaching, not for publication plots.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.simulator.tracing import SimResult

#: Cell glyphs: sending, receiving, both directions, idle.
GLYPH_SEND = "s"
GLYPH_RECV = "r"
GLYPH_BOTH = "x"
GLYPH_IDLE = "."


def render_timeline(
    result: SimResult,
    *,
    width: int = 80,
    ranks: list[int] | None = None,
) -> str:
    """Render the transfer activity of a traced run.

    Parameters
    ----------
    result:
        A result produced with ``collect_trace=True`` (raises if the
        trace is empty but messages were sent).
    width:
        Number of time buckets (columns).
    ranks:
        Subset of ranks to show (default: all).
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if not result.trace and result.total_messages:
        raise ConfigurationError(
            "result has no trace; rerun the engine with collect_trace=True"
        )
    total = result.total_time
    if total <= 0:
        return "(empty timeline: no virtual time elapsed)"
    ranks = list(range(result.nranks)) if ranks is None else ranks
    rows = {r: [GLYPH_IDLE] * width for r in ranks}
    rankset = set(ranks)

    def buckets(start: float, finish: float) -> range:
        lo = min(width - 1, int(start / total * width))
        hi = min(width - 1, int(max(start, finish - 1e-18) / total * width))
        return range(lo, hi + 1)

    for rec in result.trace:
        if rec.src in rankset:
            row = rows[rec.src]
            for cell in buckets(rec.start, rec.finish):
                row[cell] = GLYPH_BOTH if row[cell] == GLYPH_RECV else GLYPH_SEND
        if rec.dst in rankset:
            row = rows[rec.dst]
            for cell in buckets(rec.start, rec.finish):
                row[cell] = GLYPH_BOTH if row[cell] == GLYPH_SEND else GLYPH_RECV

    label_w = max(len(f"rank {r}") for r in ranks)
    lines = [
        f"{'':>{label_w}} 0{'':{width - 2}}{total:.3g}s",
        f"{'':>{label_w}} {'-' * width}",
    ]
    for r in ranks:
        lines.append(f"{f'rank {r}':>{label_w}} {''.join(rows[r])}")
    lines.append(
        f"{'':>{label_w}} {GLYPH_SEND}=send {GLYPH_RECV}=recv "
        f"{GLYPH_BOTH}=both {GLYPH_IDLE}=no transfer"
    )
    return "\n".join(lines)


def communication_matrix(result: SimResult) -> list[list[int]]:
    """Bytes sent between every rank pair (``matrix[src][dst]``)."""
    if not result.trace and result.total_messages:
        raise ConfigurationError(
            "result has no trace; rerun the engine with collect_trace=True"
        )
    n = result.nranks
    matrix = [[0] * n for _ in range(n)]
    for rec in result.trace:
        matrix[rec.src][rec.dst] += rec.nbytes
    return matrix
