"""Ascii timelines from simulation traces and spans.

Two Gantt views over a traced :class:`~repro.simulator.SimResult`, one
row per rank, time bucketed into columns:

* :func:`render_timeline` — the *wire* view: each cell shows what
  transfer activity dominated that bucket (sending, receiving, both,
  or idle).  Meant for debugging schedules, e.g. seeing the lookahead
  pipeline of :mod:`repro.core.overlap` actually overlap.
* :func:`render_phase_timeline` — the *phase* view, built on the span
  trees of :mod:`repro.simulator.spans`: each cell shows which
  top-level phase span (``bcast.inter``, ``bcast.intra``, ``gemm``,
  ...) covered most of the bucket — the paper's two-phase broadcast
  structure made visible.

Both are for debugging and teaching, not for publication plots.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.simulator.tracing import SimResult

#: Cell glyphs: sending, receiving, both directions, idle.
GLYPH_SEND = "s"
GLYPH_RECV = "r"
GLYPH_BOTH = "x"
GLYPH_IDLE = "."

#: Preferred glyphs for the phase view's well-known span names;
#: anything else draws from ``_PHASE_FALLBACK`` in appearance order.
PHASE_GLYPHS = {
    "bcast.inter": "O",
    "bcast.intra": "i",
    "bcast.row": "a",
    "bcast.col": "b",
    "gemm": "#",
}
_PHASE_FALLBACK = "cdefghjklmnpqrtuvwyz"


def render_timeline(
    result: SimResult,
    *,
    width: int = 80,
    ranks: list[int] | None = None,
) -> str:
    """Render the transfer activity of a traced run.

    Parameters
    ----------
    result:
        A result produced with ``collect_trace=True`` (raises if the
        trace is empty but messages were sent).
    width:
        Number of time buckets (columns).
    ranks:
        Subset of ranks to show (default: all).
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if not result.trace and result.total_messages:
        raise ConfigurationError(
            "result has no trace; rerun the engine with collect_trace=True"
        )
    total = result.total_time
    if total <= 0:
        return "(empty timeline: no virtual time elapsed)"
    ranks = list(range(result.nranks)) if ranks is None else ranks
    rows = {r: [GLYPH_IDLE] * width for r in ranks}
    rankset = set(ranks)

    def buckets(start: float, finish: float) -> range:
        lo = min(width - 1, int(start / total * width))
        hi = min(width - 1, int(max(start, finish - 1e-18) / total * width))
        return range(lo, hi + 1)

    for rec in result.trace:
        if rec.src in rankset:
            row = rows[rec.src]
            for cell in buckets(rec.start, rec.finish):
                row[cell] = GLYPH_BOTH if row[cell] == GLYPH_RECV else GLYPH_SEND
        if rec.dst in rankset:
            row = rows[rec.dst]
            for cell in buckets(rec.start, rec.finish):
                row[cell] = GLYPH_BOTH if row[cell] == GLYPH_SEND else GLYPH_RECV

    label_w = max(len(f"rank {r}") for r in ranks)
    lines = [
        f"{'':>{label_w}} 0{'':{width - 2}}{total:.3g}s",
        f"{'':>{label_w}} {'-' * width}",
    ]
    for r in ranks:
        lines.append(f"{f'rank {r}':>{label_w}} {''.join(rows[r])}")
    lines.append(
        f"{'':>{label_w}} {GLYPH_SEND}=send {GLYPH_RECV}=recv "
        f"{GLYPH_BOTH}=both {GLYPH_IDLE}=no transfer"
    )
    return "\n".join(lines)


def render_phase_timeline(
    result: SimResult,
    *,
    width: int = 80,
    ranks: list[int] | None = None,
) -> str:
    """Render which phase span dominated each time bucket per rank.

    Parameters
    ----------
    result:
        A result produced with tracing on (``trace=True``) so its
        ``spans`` are populated (raises otherwise).
    width:
        Number of time buckets (columns).
    ranks:
        Subset of ranks to show (default: all).
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if not result.spans:
        raise ConfigurationError(
            "result has no spans; rerun with trace=True"
        )
    total = result.total_time
    if total <= 0:
        return "(empty timeline: no virtual time elapsed)"
    ranks = list(range(result.nranks)) if ranks is None else ranks

    # Deterministic glyph per phase: preferred glyphs for the known
    # names, then a fallback palette in order of first appearance.
    glyphs: dict[str, str] = {}
    fallback = iter(_PHASE_FALLBACK)
    for span in result.spans:
        if span.name in glyphs:
            continue
        glyphs[span.name] = PHASE_GLYPHS.get(span.name) or next(fallback, "?")

    bucket_len = total / width
    rows = {}
    for r in ranks:
        # Dominant phase per bucket: accumulate covered time per phase.
        cover = [dict() for _ in range(width)]
        for span in result.spans_for(r):
            if span.duration <= 0:
                continue
            lo = min(width - 1, int(span.start / total * width))
            hi = min(width - 1, int(max(span.start, span.end - 1e-18)
                                     / total * width))
            for cell in range(lo, hi + 1):
                c0, c1 = cell * bucket_len, (cell + 1) * bucket_len
                overlap = min(span.end, c1) - max(span.start, c0)
                if overlap > 0:
                    acc = cover[cell]
                    acc[span.name] = acc.get(span.name, 0.0) + overlap
        row = []
        for acc in cover:
            if not acc:
                row.append(GLYPH_IDLE)
            else:
                name = max(acc, key=lambda n: (acc[n], n))
                row.append(glyphs[name])
        rows[r] = row

    label_w = max(len(f"rank {r}") for r in ranks)
    lines = [
        f"{'':>{label_w}} 0{'':{width - 2}}{total:.3g}s",
        f"{'':>{label_w}} {'-' * width}",
    ]
    for r in ranks:
        lines.append(f"{f'rank {r}':>{label_w}} {''.join(rows[r])}")
    legend = " ".join(f"{g}={name}" for name, g in glyphs.items())
    lines.append(f"{'':>{label_w}} {legend} {GLYPH_IDLE}=outside spans")
    return "\n".join(lines)


def communication_matrix(result: SimResult) -> list[list[int]]:
    """Bytes sent between every rank pair (``matrix[src][dst]``)."""
    if not result.trace and result.total_messages:
        raise ConfigurationError(
            "result has no trace; rerun the engine with collect_trace=True"
        )
    n = result.nranks
    matrix = [[0] * n for _ in range(n)]
    for rec in result.trace:
        matrix[rec.src][rec.dst] += rec.nbytes
    return matrix
