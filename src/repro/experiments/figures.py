"""One driver per paper figure (Section V).

Each driver returns a :class:`~repro.experiments.harness.Series` with
the same x axis and curves as the paper's plot; the benchmarks print
them.  Paper defaults are baked in, but every parameter can be
overridden (the test suite runs scaled-down variants).

==========  ============================================================
``fig5``    Grid5000, p=128, n=8192, b=B=64: comm time vs group count
``fig6``    same with b=B=512 (the largest block)
``fig7``    Grid5000 scalability: p in {16,32,64,128}, b=B=512
``fig8``    BG/P, p=16384, n=65536, b=B=256: overall + comm time vs G
``fig9``    BG/P scalability: p in {2048..16384}, comm time
``fig10``   exascale prediction, p=2^20: model time vs G
==========  ============================================================
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from repro.core.grouping import choose_group_grid, valid_group_counts
from repro.core.hsumma import HSummaConfig
from repro.core.summa import SummaConfig
from repro.errors import ConfigurationError
from repro.experiments.harness import Series
from repro.experiments.parallel import SweepCache, parallel_map
from repro.experiments.stepmodel import (
    AnalyticCoster,
    CollectiveCoster,
    MicroDesCoster,
    TopologyCoster,
    hsumma_step_model,
    summa_step_model,
)
from repro.models.exascale import ExascaleScenario, exascale_prediction
from repro.platforms.base import Platform
from repro.platforms.bluegene import bluegene_p
from repro.platforms.exa import exascale_2012
from repro.platforms.grid5000 import grid5000_graphene
from repro.util.gridmath import factor_grid


def _coster(platform: Platform, p: int, kind: str) -> CollectiveCoster:
    algo = platform.options.bcast
    if kind == "analytic":
        return AnalyticCoster(platform.params, algo)
    if kind == "micro":
        return MicroDesCoster(platform.network(p), algo)
    if kind == "topology":
        return TopologyCoster(platform.network(p), algo)
    raise ConfigurationError(
        f"unknown coster kind {kind!r}; use analytic, micro, topology "
        "or predictor"
    )


# -- sweep points -------------------------------------------------------------
#
# One sweep point = one (platform, p, n, block, G) evaluation; G=None is
# the SUMMA reference.  Points are described by JSON specs so they can
# cross a process boundary and double as cache keys (see
# repro.experiments.parallel).  Worker processes rebuild the platform
# from its registered factory; the spec embeds the platform signature
# (Hockney parameters, gamma, collective options), so any preset change
# invalidates cached entries and _portable() refuses to ship customised
# platform objects to workers that would rebuild the stock one.

_PLATFORM_FACTORIES = {
    "grid5000-graphene": grid5000_graphene,
    "bluegene-p": bluegene_p,
    "exascale-2012": exascale_2012,
}


def _platform_sig(platform: Platform) -> dict[str, Any]:
    return {
        "alpha": platform.params.alpha,
        "beta": platform.params.beta,
        "gamma": platform.gamma,
        "options": dataclasses.asdict(platform.options),
    }


def _portable(platform: Platform) -> bool:
    """True when worker processes can rebuild ``platform`` faithfully
    from its name alone."""
    factory = _PLATFORM_FACTORIES.get(platform.name)
    if factory is None:
        return False
    return _platform_sig(factory(platform.nranks)) == _platform_sig(platform)


def _point_spec(platform: Platform, p: int, n: int, block: int,
                kind: str, G: int | None) -> dict[str, Any]:
    return {
        "kind": kind,
        "platform": platform.name,
        "sig": _platform_sig(platform),
        "p": p,
        "n": n,
        "block": block,
        "G": G,
        "faults": None,  # reserved: sweeps are healthy-run today
    }


def _eval_point(platform: Platform, spec: Mapping[str, Any]) -> dict[str, float]:
    """Evaluate one sweep point on an already-built platform."""
    p, n, block, G = spec["p"], spec["n"], spec["block"], spec["G"]
    kind = spec["kind"]
    s, t = factor_grid(p)
    gamma = platform.gamma
    if kind == "des":
        from repro.core.hsumma import run_hsumma
        from repro.core.summa import run_summa
        from repro.payloads import PhantomArray

        A = PhantomArray((n, n))
        B = PhantomArray((n, n))
        if G is None:
            _, sim = run_summa(
                A, B, grid=(s, t), block=block, network=platform.network(p),
                options=platform.options, gamma=gamma,
            )
        else:
            _, sim = run_hsumma(
                A, B, grid=(s, t), groups=G, outer_block=block,
                network=platform.network(p), options=platform.options,
                gamma=gamma,
            )
        return {"comm": sim.comm_time, "total": sim.total_time}
    if kind == "predictor":
        # Zero stepping: compose the analytic closed forms per phase
        # (topology-blind — the platform's Hockney parameters price
        # every communicator).  See docs/cost_model.md for the
        # fidelity contract versus the macro backend.
        from repro.simulator.predictor import predict_hsumma, predict_summa

        coster = AnalyticCoster(platform.params, platform.options.bcast)
        net = platform.network(p)
        if G is None:
            scfg = SummaConfig(m=n, l=n, n=n, s=s, t=t, block=block)
            sim = predict_summa(scfg, network=net, options=platform.options,
                                gamma=gamma, coster=coster)
        else:
            I, J = choose_group_grid(s, t, G)
            hcfg = HSummaConfig(
                m=n, l=n, n=n, s=s, t=t, I=I, J=J,
                outer_block=block, inner_block=block,
            )
            sim = predict_hsumma(hcfg, network=net, options=platform.options,
                                 gamma=gamma, coster=coster)
        return {"comm": sim.comm_time, "total": sim.total_time}
    coster = _coster(platform, p, kind)
    if G is None:
        scfg = SummaConfig(m=n, l=n, n=n, s=s, t=t, block=block)
        rep = summa_step_model(scfg, coster, gamma)
    else:
        I, J = choose_group_grid(s, t, G)
        hcfg = HSummaConfig(
            m=n, l=n, n=n, s=s, t=t, I=I, J=J,
            outer_block=block, inner_block=block,
        )
        rep = hsumma_step_model(hcfg, coster, gamma)
    return {"comm": rep.comm_time, "total": rep.total_time}


def _sweep_point(spec: Mapping[str, Any]) -> dict[str, float]:
    """Worker entry point: rebuild the platform by name, then evaluate."""
    factory = _PLATFORM_FACTORIES[spec["platform"]]
    return _eval_point(factory(spec["p"]), spec)


def group_sweep(
    platform: Platform,
    p: int,
    n: int,
    block: int,
    *,
    groups: Sequence[int] | None = None,
    coster_kind: str = "micro",
    name: str = "sweep",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Comm/total time of HSUMMA per group count, with the SUMMA
    reference — the common core of figures 5, 6, 8 and 10.

    ``coster_kind="des"`` bypasses the step model entirely and runs the
    full event simulation per configuration (phantom payloads) —
    exact, but only sensible for small ``p``.

    Points are independent: ``jobs > 1`` fans them across worker
    processes and ``cache`` reuses previously computed points from
    disk.  Both are transparent — the Series is identical for every
    ``jobs`` value and cache state (results merge in input order, and
    cache keys hash every parameter that can influence a point).
    Platforms not rebuildable from their registered name are computed
    in-process and uncached.
    """
    s, t = factor_grid(p)
    if groups is None:
        groups = valid_group_counts(s, t)

    specs = [_point_spec(platform, p, n, block, coster_kind, G)
             for G in (None, *groups)]
    if _portable(platform):
        points = parallel_map(_sweep_point, specs, jobs=jobs, cache=cache)
    else:
        points = [_eval_point(platform, spec) for spec in specs]

    sref, hs = points[0], points[1:]
    meta: dict[str, Any] = {"platform": platform.name, "p": p, "n": n,
                            "b": block}
    if coster_kind == "des":
        meta["fidelity"] = "des"
    return Series(
        name=name,
        xlabel="groups",
        x=list(groups),
        columns={
            "hsumma_comm": [pt["comm"] for pt in hs],
            "summa_comm": [sref["comm"]] * len(groups),
            "hsumma_total": [pt["total"] for pt in hs],
            "summa_total": [sref["total"]] * len(groups),
        },
        meta=meta,
    )


def fig5(
    p: int = 128,
    n: int = 8192,
    block: int = 64,
    *,
    coster_kind: str = "micro",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 5: HSUMMA vs SUMMA comm time on Grid5000, b = B = 64."""
    return group_sweep(
        grid5000_graphene(p), p, n, block,
        coster_kind=coster_kind, name="fig5", jobs=jobs, cache=cache,
    )


def fig6(
    p: int = 128,
    n: int = 8192,
    block: int = 512,
    *,
    coster_kind: str = "micro",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 6: same sweep with the largest block, b = B = 512."""
    return group_sweep(
        grid5000_graphene(p), p, n, block,
        coster_kind=coster_kind, name="fig6", jobs=jobs, cache=cache,
    )


def fig7(
    procs: Sequence[int] = (16, 32, 64, 128),
    n: int = 8192,
    block: int = 512,
    *,
    coster_kind: str = "micro",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 7: Grid5000 scalability — comm time vs processor count,
    HSUMMA at its per-p best group count."""
    hs, su, best_g = [], [], []
    for p in procs:
        sweep = group_sweep(
            grid5000_graphene(p), p, n, block,
            coster_kind=coster_kind, name="fig7-inner",
            jobs=jobs, cache=cache,
        )
        g, t = sweep.min_of("hsumma_comm")
        hs.append(t)
        su.append(sweep.column("summa_comm")[0])
        best_g.append(g)
    return Series(
        name="fig7",
        xlabel="procs",
        x=list(procs),
        columns={"hsumma_comm": hs, "summa_comm": su, "best_groups": best_g},
        meta={"platform": "grid5000-graphene", "n": n, "b": block},
    )


def fig8(
    p: int = 16384,
    n: int = 65536,
    block: int = 256,
    *,
    groups: Sequence[int] | None = None,
    coster_kind: str = "topology",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 8: BlueGene/P 16384 cores — overall and comm time vs G."""
    if groups is None:
        s, t = factor_grid(p)
        groups = [g for g in valid_group_counts(s, t)
                  if (g & (g - 1)) == 0]  # powers of two, as in the paper
    return group_sweep(
        bluegene_p(p), p, n, block,
        groups=groups, coster_kind=coster_kind, name="fig8",
        jobs=jobs, cache=cache,
    )


def fig9(
    procs: Sequence[int] = (2048, 4096, 8192, 16384),
    n: int = 65536,
    block: int = 256,
    *,
    coster_kind: str = "topology",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 9: BlueGene/P scalability — comm time vs core count,
    HSUMMA at its per-p best group count."""
    hs, su, best_g = [], [], []
    for p in procs:
        s, t = factor_grid(p)
        groups = [g for g in valid_group_counts(s, t) if (g & (g - 1)) == 0]
        sweep = group_sweep(
            bluegene_p(p), p, n, block,
            groups=groups, coster_kind=coster_kind, name="fig9-inner",
            jobs=jobs, cache=cache,
        )
        g, tmin = sweep.min_of("hsumma_comm")
        hs.append(tmin)
        su.append(sweep.column("summa_comm")[0])
        best_g.append(g)
    return Series(
        name="fig9",
        xlabel="procs",
        x=list(procs),
        columns={"hsumma_comm": hs, "summa_comm": su, "best_groups": best_g},
        meta={"platform": "bluegene-p", "n": n, "b": block},
    )


def fig10(
    scenario: ExascaleScenario | None = None,
    groups: Sequence[int] | None = None,
    *,
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Series:
    """Figure 10: exascale prediction — model time vs G, p = 2^20.

    ``jobs``/``cache`` are accepted for driver uniformity but unused:
    the prediction is a closed-form model evaluated in microseconds,
    so there is nothing worth fanning out or caching."""
    del jobs, cache
    sc = scenario or ExascaleScenario()
    pred = exascale_prediction(sc, list(groups) if groups else None)
    gs = pred["groups"]
    return Series(
        name="fig10",
        xlabel="groups",
        x=list(gs),
        columns={
            "hsumma_comm": list(pred["hsumma"]),
            "summa_comm": [pred["summa"]] * len(gs),
        },
        meta={
            "platform": "exascale-2012",
            "p": sc.p,
            "n": sc.n,
            "b": sc.b,
            "optimal_G": pred["optimal_G"],
        },
    )


def headline_ratios(
    procs: Sequence[int] = (2048, 16384),
    n: int = 65536,
    block: int = 256,
    *,
    coster_kind: str = "topology",
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> dict[int, dict[str, float]]:
    """The paper's headline claims: comm-time and overall-time ratios of
    SUMMA over best-G HSUMMA on BG/P (2.08x / 5.89x comm, 1.2x / 2.36x
    overall on 2048 / 16384 cores)."""
    out: dict[int, dict[str, float]] = {}
    for p in procs:
        s, t = factor_grid(p)
        groups = [g for g in valid_group_counts(s, t) if (g & (g - 1)) == 0]
        sweep = group_sweep(
            bluegene_p(p), p, n, block,
            groups=groups, coster_kind=coster_kind, name="headline",
            jobs=jobs, cache=cache,
        )
        g_c, hs_comm = sweep.min_of("hsumma_comm")
        _, hs_total = sweep.min_of("hsumma_total")
        out[p] = {
            "comm_ratio": sweep.column("summa_comm")[0] / hs_comm,
            "total_ratio": sweep.column("summa_total")[0] / hs_total,
            "best_groups": g_c,
            "summa_comm": sweep.column("summa_comm")[0],
            "hsumma_comm": hs_comm,
            "summa_total": sweep.column("summa_total")[0],
            "hsumma_total": hs_total,
        }
    return out
