"""Switched commodity cluster in the style of Grid5000's Graphene site.

Graphene is a classical Ethernet/Infiniband cluster: nodes hang off
edge switches which connect through an aggregation layer.  We model two
levels:

* ranks on the same node — shared-memory parameters;
* nodes under the same edge switch — one switch traversal;
* nodes under different switches — edge switch, core, edge switch.

Each traversal adds latency; bandwidth is set by the slowest segment
(we use a single ``beta`` since the paper's model has one bandwidth).
Uplinks may be exposed as shared links for contention studies.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.network.mapping import RankMapping, block_mapping
from repro.network.model import HockneyParams, LinkClaim, Network


class SwitchedCluster(Network):
    """Two-level switched cluster.

    Parameters
    ----------
    nnodes:
        Number of compute nodes.
    nodes_per_switch:
        Nodes attached to each edge switch.
    params:
        Hockney parameters of a node's NIC link (one switch traversal).
    ranks_per_node:
        Ranks sharing a node.
    switch_hop_alpha:
        Extra latency for crossing the core between two edge switches.
        Defaults to ``params.alpha`` (a second traversal of comparable
        cost).
    intra_params:
        Parameters for on-node messages; defaults to 1/20 latency and
        1/8 per-byte cost of the NIC link.
    mapping:
        Rank placement, defaults to block mapping.
    """

    def __init__(
        self,
        nnodes: int,
        nodes_per_switch: int,
        params: HockneyParams,
        *,
        ranks_per_node: int = 1,
        switch_hop_alpha: float | None = None,
        intra_params: HockneyParams | None = None,
        mapping: RankMapping | None = None,
    ) -> None:
        if nnodes < 1 or nodes_per_switch < 1:
            raise TopologyError(
                f"need nnodes >= 1 and nodes_per_switch >= 1, got {nnodes}, {nodes_per_switch}"
            )
        nranks = nnodes * ranks_per_node
        super().__init__(nranks)
        self.nnodes = nnodes
        self.nodes_per_switch = nodes_per_switch
        self.params = params
        self.switch_hop_alpha = (
            params.alpha if switch_hop_alpha is None else switch_hop_alpha
        )
        if self.switch_hop_alpha < 0:
            raise TopologyError(
                f"switch_hop_alpha must be >= 0, got {self.switch_hop_alpha}"
            )
        self.intra_params = intra_params or HockneyParams(
            alpha=params.alpha / 20.0, beta=params.beta / 8.0
        )
        self.mapping = mapping or block_mapping(nranks, ranks_per_node)
        if self.mapping.nranks != nranks:
            raise TopologyError(
                f"mapping covers {self.mapping.nranks} ranks, cluster has {nranks}"
            )

    def switch_of(self, node: int) -> int:
        """Edge switch index of ``node``."""
        if not (0 <= node < self.nnodes):
            raise TopologyError(f"node {node} outside cluster of {self.nnodes}")
        return node // self.nodes_per_switch

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        a, b = self.mapping.node(src), self.mapping.node(dst)
        if a == b:
            return 0
        return 1 if self.switch_of(a) == self.switch_of(b) else 2

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        h = self.hops(src, dst)
        if h == 0:
            return self.intra_params.transfer_time(nbytes)
        extra = self.switch_hop_alpha * (h - 1)
        return self.params.alpha + extra + nbytes * self.params.beta

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        """NIC links and, across switches, the shared uplinks.

        Claims: ``("nic", node, dir)`` for the endpoints' NIC wires and
        ``("uplink", switch, dir)`` for edge-to-core uplinks (shared by
        every node under that switch — the contended resource).
        """
        self._check_pair(src, dst)
        a, b = self.mapping.node(src), self.mapping.node(dst)
        if a == b:
            return ()
        claims: list[LinkClaim] = [("nic", a, "out")]
        sa, sb = self.switch_of(a), self.switch_of(b)
        if sa != sb:
            claims.append(("uplink", sa, "up"))
            claims.append(("uplink", sb, "down"))
        claims.append(("nic", b, "in"))
        return tuple(claims)
