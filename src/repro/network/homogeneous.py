"""Fully-connected homogeneous network — the paper's analytical model.

Every pair of distinct ranks is connected by an identical, un-shared
Hockney link.  Optionally, ranks co-located on a node (per a
:class:`~repro.network.mapping.RankMapping`) communicate with cheaper
intra-node parameters, which matters on BlueGene/P VN mode where four
ranks share a compute node.
"""

from __future__ import annotations

from typing import Sequence

from repro.network.mapping import RankMapping
from repro.network.model import HockneyParams, LinkClaim, Network


class HomogeneousNetwork(Network):
    """No-contention, all-pairs-equal network.

    Parameters
    ----------
    nranks:
        Number of ranks.
    params:
        Hockney parameters for inter-node messages.
    intra_params:
        Optional cheaper parameters for messages between ranks on the
        same node; requires ``mapping``.
    mapping:
        Optional rank-to-node mapping (defaults to one rank per node).
    """

    def __init__(
        self,
        nranks: int,
        params: HockneyParams,
        *,
        intra_params: HockneyParams | None = None,
        mapping: RankMapping | None = None,
    ) -> None:
        super().__init__(nranks)
        self.params = params
        self.intra_params = intra_params
        self.mapping = mapping
        if intra_params is not None and mapping is None:
            # Intra-node params are meaningless without knowing who is
            # co-located; default to everyone on their own node would
            # silently disable them, so refuse instead.
            from repro.errors import TopologyError

            raise TopologyError("intra_params requires a rank mapping")

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        if (
            self.intra_params is not None
            and self.mapping is not None
            and self.mapping.colocated(src, dst)
        ):
            return self.intra_params.transfer_time(nbytes)
        return self.params.transfer_time(nbytes)

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        # Dedicated link per ordered pair: never contended.
        self._check_pair(src, dst)
        if src == dst:
            return ()
        return ((src, dst),)
