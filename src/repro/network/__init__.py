"""Network/platform models used by the simulator to cost messages.

Every model answers one question: how long does a point-to-point message
of ``nbytes`` take from rank ``src`` to rank ``dst``?  All models are
parameterised by the Hockney model the paper uses, ``T(m) = alpha +
m * beta``, and differ in how ``alpha``/``beta`` vary with the pair of
ranks (same node? how many torus hops?) and whether links are shared.
"""

from repro.network.model import HockneyParams, Network, LinkClaim
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.torus import Torus3D
from repro.network.tree import SwitchedCluster
from repro.network.mapping import (
    RankMapping,
    block_mapping,
    identity_mapping,
    round_robin_mapping,
    subgrid_blocks,
    subgrid_order,
)

__all__ = [
    "HockneyParams",
    "Network",
    "LinkClaim",
    "HomogeneousNetwork",
    "Torus3D",
    "SwitchedCluster",
    "RankMapping",
    "block_mapping",
    "identity_mapping",
    "round_robin_mapping",
    "subgrid_blocks",
    "subgrid_order",
]
