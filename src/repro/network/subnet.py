"""A communicator-sized view of a larger network.

Micro-simulations of a single collective run an engine over just the
participant ranks; :class:`SubNetwork` translates those dense indices
back to the world ranks so topology-aware costs stay exact.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.network.model import LinkClaim, Network


class SubNetwork(Network):
    """View of ``base`` restricted to ``world_ranks`` (dense re-indexing)."""

    def __init__(self, base: Network, world_ranks: Sequence[int]):
        world_ranks = tuple(world_ranks)
        if len(set(world_ranks)) != len(world_ranks):
            raise TopologyError(f"duplicate ranks in subnetwork: {world_ranks}")
        for r in world_ranks:
            if not (0 <= r < base.nranks):
                raise TopologyError(
                    f"world rank {r} outside base network of {base.nranks}"
                )
        super().__init__(len(world_ranks))
        self.base = base
        self.world_ranks = world_ranks

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        self._check_pair(src, dst)
        return self.base.transfer_time(
            self.world_ranks[src], self.world_ranks[dst], nbytes
        )

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        self._check_pair(src, dst)
        return self.base.links(self.world_ranks[src], self.world_ranks[dst])

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        return self.base.hops(self.world_ranks[src], self.world_ranks[dst])
