"""Rank-to-node mappings.

Topology models place *nodes* in a physical structure (torus
coordinates, switch membership).  A :class:`RankMapping` decides which
MPI-style rank lives on which node — e.g. BlueGene/P VN mode packs four
ranks per node.  The mapping strongly affects topology-aware costs: the
paper's Figure 8 "zigzags" come precisely from group layouts that map
unevenly onto the torus.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import TopologyError


class RankMapping:
    """Immutable mapping from rank to node index.

    Parameters
    ----------
    node_of:
        Sequence where ``node_of[rank]`` is the node hosting ``rank``.
    nnodes:
        Total node count (must cover every entry of ``node_of``).
    """

    def __init__(self, node_of: Sequence[int], nnodes: int) -> None:
        node_of = tuple(int(n) for n in node_of)
        if nnodes <= 0:
            raise TopologyError(f"nnodes must be >= 1, got {nnodes}")
        for rank, node in enumerate(node_of):
            if not (0 <= node < nnodes):
                raise TopologyError(
                    f"rank {rank} mapped to node {node}, outside [0, {nnodes})"
                )
        self._node_of = node_of
        self._nnodes = nnodes

    @property
    def nranks(self) -> int:
        return len(self._node_of)

    @property
    def nnodes(self) -> int:
        return self._nnodes

    def node(self, rank: int) -> int:
        """Node hosting ``rank``."""
        try:
            return self._node_of[rank]
        except IndexError:
            raise TopologyError(
                f"rank {rank} out of range for {self.nranks} ranks"
            ) from None

    def colocated(self, a: int, b: int) -> bool:
        """True if both ranks share a node (intra-node communication)."""
        return self.node(a) == self.node(b)

    def ranks_on(self, node: int) -> list[int]:
        """All ranks hosted on ``node``."""
        return [r for r, n in enumerate(self._node_of) if n == node]


def subgrid_order(s: int, t: int, I: int, J: int) -> tuple[int, ...]:
    """Zigzag enumeration of an ``s x t`` grid cut into ``I x J`` groups.

    Position ``k`` of the result is the row-major grid rank visited
    ``k``-th when walking group-by-group (groups row-major) and, inside
    each ``(s/I) x (t/J)`` group, row-major again.  This is the paper's
    Figure-8 group layout: consecutive positions share a group, so any
    consumer that deals consecutive positions onto consecutive resources
    (nodes, placement slots) keeps each group contiguous.

    Identity-pinned: :func:`repro.core.grouping.group_aligned_mapping`
    and the cluster placement layer both consume this exact order, and
    tests pin it against the historical inline enumeration.
    """
    if s < 1 or t < 1 or I < 1 or J < 1:
        raise TopologyError(f"need s,t,I,J >= 1; got {s}, {t}, {I}, {J}")
    if s % I or t % J:
        raise TopologyError(f"group grid {I}x{J} does not divide {s}x{t}")
    si, tj = s // I, t // J
    order = []
    for x in range(I):
        for y in range(J):
            for ii in range(si):
                for jj in range(tj):
                    order.append((x * si + ii) * t + (y * tj + jj))
    return tuple(order)


def subgrid_blocks(s: int, t: int, I: int, J: int) -> tuple[tuple[int, ...], ...]:
    """:func:`subgrid_order` cut per group: entry ``x*J + y`` lists the
    grid ranks of group ``(x, y)`` in row-major within-group order.

    This is the placement layer's candidate list when carving aligned
    ``(s/I) x (t/J)`` sub-grids out of an ``s x t`` machine: each block
    is rectangular, and its tuple order is exactly the row-major rank
    order a job expects.
    """
    order = subgrid_order(s, t, I, J)
    size = (s // I) * (t // J)
    return tuple(order[k:k + size] for k in range(0, len(order), size))


def identity_mapping(nranks: int) -> RankMapping:
    """One rank per node (SMP effects disabled)."""
    return RankMapping(range(nranks), nranks)


def block_mapping(nranks: int, ranks_per_node: int) -> RankMapping:
    """Consecutive ranks share a node: ranks ``[k*c, (k+1)*c)`` on node ``k``.

    This is the default placement of most MPI launchers and of
    BlueGene/P VN mode (``ranks_per_node = 4``).
    """
    if ranks_per_node <= 0:
        raise TopologyError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
    nnodes = -(-nranks // ranks_per_node)
    return RankMapping([r // ranks_per_node for r in range(nranks)], nnodes)


def round_robin_mapping(nranks: int, nnodes: int) -> RankMapping:
    """Cyclic placement: rank ``r`` on node ``r % nnodes``."""
    if nnodes <= 0:
        raise TopologyError(f"nnodes must be >= 1, got {nnodes}")
    return RankMapping([r % nnodes for r in range(nranks)], nnodes)


def shuffled_mapping(nranks: int, ranks_per_node: int, seed: int) -> RankMapping:
    """Random placement (deterministic per ``seed``).

    Useful as the adversarial baseline in the topology-aware-grouping
    ablation: a shuffled mapping destroys any locality HSUMMA's groups
    would otherwise enjoy.
    """
    base = block_mapping(nranks, ranks_per_node)
    order = list(range(nranks))
    random.Random(seed).shuffle(order)
    return RankMapping([base.node(order[r]) for r in range(nranks)], base.nnodes)


MappingFactory = Callable[[int], RankMapping]
