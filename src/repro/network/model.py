"""Abstract network model and the Hockney point-to-point cost.

The paper's entire analysis (Section IV) is built on Hockney's model:
sending ``m`` bytes between two processors costs ``alpha + m * beta``
where ``alpha`` is latency and ``beta`` the reciprocal bandwidth.  A
:class:`Network` generalises this per rank pair so that topology-aware
models (the BlueGene/P torus, a switched cluster) can charge different
costs for near and far pairs, and can expose the physical links a
message occupies so the simulator can optionally model contention.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Hashable, Sequence

from repro.errors import TopologyError
from repro.util.validation import require_positive


@dataclasses.dataclass(frozen=True)
class HockneyParams:
    """Parameters of the Hockney model ``T(m) = alpha + m * beta``.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Reciprocal bandwidth in seconds per byte.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        require_positive(self.alpha, "alpha")
        require_positive(self.beta, "beta")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across one such link."""
        if nbytes < 0:
            raise TopologyError(f"message size must be >= 0, got {nbytes}")
        return self.alpha + nbytes * self.beta

    @property
    def bandwidth(self) -> float:
        """Bandwidth in bytes/second (1 / beta)."""
        return 1.0 / self.beta

    @classmethod
    def from_bandwidth(cls, alpha: float, bandwidth_bytes_per_s: float) -> "HockneyParams":
        """Build params from a bandwidth instead of its reciprocal."""
        require_positive(bandwidth_bytes_per_s, "bandwidth")
        return cls(alpha=alpha, beta=1.0 / bandwidth_bytes_per_s)


# A link identifier is any hashable token; the simulator only compares
# them for equality when serialising contended transfers.
LinkClaim = Hashable


class Network(ABC):
    """Cost model for point-to-point transfers between ``nranks`` ranks.

    Subclasses must be *pure*: :meth:`transfer_time` may not mutate any
    state, because both the full discrete-event simulator and the fast
    step model call it, possibly many times for the same pair.
    """

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise TopologyError(f"network needs nranks >= 1, got {nranks}")
        self._nranks = nranks

    @property
    def nranks(self) -> int:
        """Number of addressable ranks."""
        return self._nranks

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self._nranks and 0 <= dst < self._nranks):
            raise TopologyError(
                f"rank pair ({src}, {dst}) out of range for {self._nranks} ranks"
            )

    @abstractmethod
    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Seconds for a message of ``nbytes`` from ``src`` to ``dst``.

        ``src == dst`` must cost zero: algorithms freely 'send to self'
        when a root already holds data.
        """

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        """Physical links a transfer occupies (for contention modelling).

        The default claims a single dedicated pseudo-link per ordered
        pair, i.e. no sharing; topology models override this with the
        real route.
        """
        self._check_pair(src, dst)
        if src == dst:
            return ()
        return ((src, dst),)

    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between the ranks (0 if co-located)."""
        self._check_pair(src, dst)
        return 0 if src == dst else 1
