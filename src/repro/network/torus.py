"""Three-dimensional torus network in the style of BlueGene/P.

BlueGene/P interconnects compute nodes with a 3-D point-to-point torus;
the BG-MPI implementation routes messages dimension-ordered (X then Y
then Z), with wraparound links closing each dimension.  We model a
wormhole-routed torus: per-hop latency adds to the base latency while
the bandwidth term is independent of distance,

``T(m, hops) = alpha + (hops - 1) * alpha_hop + m * beta``  (hops >= 1)

Messages between ranks on the same node (VN mode packs 4 ranks/node)
use separate, much cheaper intra-node parameters.

The :meth:`links` method exposes the physical links along the route so
the simulator can serialise transfers sharing a wire — this is what
re-creates the "zigzags" of the paper's Figure 8 when HSUMMA's group
layout folds badly onto the torus.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.errors import TopologyError
from repro.network.mapping import RankMapping, block_mapping
from repro.network.model import HockneyParams, LinkClaim, Network


@dataclasses.dataclass(frozen=True)
class TorusCoord:
    """Coordinate of a node in the 3-D torus."""

    x: int
    y: int
    z: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.x, self.y, self.z)


def _signed_hop(src: int, dst: int, extent: int) -> tuple[int, int]:
    """Shortest signed walk from ``src`` to ``dst`` around a ring of
    ``extent`` positions.  Returns ``(distance, direction)`` with
    direction in {-1, 0, +1}; ties between the two directions go the
    positive way (deterministic routing).
    """
    if extent == 1 or src == dst:
        return (0, 0)
    fwd = (dst - src) % extent
    back = (src - dst) % extent
    if fwd <= back:
        return (fwd, +1)
    return (back, -1)


class Torus3D(Network):
    """Wormhole-routed 3-D torus with dimension-ordered (XYZ) routing.

    Parameters
    ----------
    dims:
        Torus extents ``(X, Y, Z)``; the node count is their product.
    params:
        Hockney parameters of one torus link. ``alpha`` is the base
        injection latency for the first hop.
    ranks_per_node:
        How many ranks share a node (4 for BG/P VN mode).
    alpha_hop:
        Extra latency per additional hop beyond the first.  Defaults to
        5% of ``params.alpha`` — small, as wormhole routing makes the
        distance term minor but not zero.
    intra_params:
        Hockney parameters for on-node messages; defaults to 1/10 the
        latency and 1/4 the per-byte cost of a torus link (shared-memory
        copy through the node's DDR).
    mapping:
        Rank placement; defaults to block mapping, i.e. consecutive
        ranks fill a node, nodes fill X, then Y, then Z.
    """

    def __init__(
        self,
        dims: tuple[int, int, int],
        params: HockneyParams,
        *,
        ranks_per_node: int = 1,
        alpha_hop: float | None = None,
        intra_params: HockneyParams | None = None,
        mapping: RankMapping | None = None,
    ) -> None:
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise TopologyError(f"torus dims must be 3 positive ints, got {dims}")
        self.dims = (int(dims[0]), int(dims[1]), int(dims[2]))
        nnodes = self.dims[0] * self.dims[1] * self.dims[2]
        nranks = nnodes * ranks_per_node
        super().__init__(nranks)
        self.params = params
        self.alpha_hop = params.alpha * 0.05 if alpha_hop is None else alpha_hop
        if self.alpha_hop < 0:
            raise TopologyError(f"alpha_hop must be >= 0, got {self.alpha_hop}")
        self.intra_params = intra_params or HockneyParams(
            alpha=params.alpha / 10.0, beta=params.beta / 4.0
        )
        self.mapping = mapping or block_mapping(nranks, ranks_per_node)
        if self.mapping.nranks != nranks or self.mapping.nnodes > nnodes:
            raise TopologyError(
                f"mapping covers {self.mapping.nranks} ranks on "
                f"{self.mapping.nnodes} nodes; torus has {nranks} ranks on {nnodes} nodes"
            )

    # -- geometry ---------------------------------------------------------

    def coord(self, node: int) -> TorusCoord:
        """Coordinates of ``node`` (x fastest-varying)."""
        X, Y, _Z = self.dims
        if not (0 <= node < X * Y * self.dims[2]):
            raise TopologyError(f"node {node} outside torus {self.dims}")
        x = node % X
        y = (node // X) % Y
        z = node // (X * Y)
        return TorusCoord(x, y, z)

    def node_index(self, coord: TorusCoord) -> int:
        """Inverse of :meth:`coord`."""
        X, Y, Z = self.dims
        if not (0 <= coord.x < X and 0 <= coord.y < Y and 0 <= coord.z < Z):
            raise TopologyError(f"coordinate {coord} outside torus {self.dims}")
        return coord.x + X * (coord.y + Y * coord.z)

    def hops(self, src: int, dst: int) -> int:
        self._check_pair(src, dst)
        a = self.mapping.node(src)
        b = self.mapping.node(dst)
        if a == b:
            return 0
        ca, cb = self.coord(a), self.coord(b)
        total = 0
        for sa, sb, extent in zip(ca.as_tuple(), cb.as_tuple(), self.dims):
            dist, _ = _signed_hop(sa, sb, extent)
            total += dist
        return total

    # -- costing ----------------------------------------------------------

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        h = self.hops(src, dst)
        if h == 0:  # co-located ranks, shared-memory path
            return self.intra_params.transfer_time(nbytes)
        return (
            self.params.alpha
            + (h - 1) * self.alpha_hop
            + nbytes * self.params.beta
        )

    def links(self, src: int, dst: int) -> Sequence[LinkClaim]:
        """Directed physical links along the XYZ dimension-ordered route.

        Each claim is ``("torus", node, dim, direction)`` identifying the
        outgoing wire of ``node`` in dimension ``dim`` (0..2), direction
        ``+1``/``-1``.
        """
        self._check_pair(src, dst)
        a = self.mapping.node(src)
        b = self.mapping.node(dst)
        if a == b:
            return ()
        cur = list(self.coord(a).as_tuple())
        target = self.coord(b).as_tuple()
        claims: list[LinkClaim] = []
        for dim in range(3):
            extent = self.dims[dim]
            dist, direction = _signed_hop(cur[dim], target[dim], extent)
            for _ in range(dist):
                node = self.node_index(TorusCoord(*cur))
                claims.append(("torus", node, dim, direction))
                cur[dim] = (cur[dim] + direction) % extent
        return tuple(claims)
