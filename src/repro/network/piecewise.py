"""Piecewise-linear (multi-regime) point-to-point cost model.

Real MPI point-to-point times are not one straight line: the eager,
rendezvous and segmented-large-message protocols each have their own
latency/slope, producing the well-known piecewise-linear ping-pong
curves.  :class:`PiecewiseHockney` models that: a sorted list of
``(max_bytes, HockneyParams)`` regimes, the first regime whose bound
covers the message supplying the cost.  Continuity is *not* enforced —
real protocol switches jump — but monotonicity in the message size is
validated so models stay physical.

Use with :class:`PiecewiseNetwork` (homogeneous all-pairs) or embed the
regime lookup in a custom topology.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError
from repro.network.model import HockneyParams, Network


class PiecewiseHockney:
    """Sorted message-size regimes, each with its own Hockney line."""

    def __init__(self, regimes: Sequence[tuple[float, HockneyParams]]):
        if not regimes:
            raise TopologyError("need at least one regime")
        bounds = [b for b, _ in regimes]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TopologyError(
                f"regime bounds must be strictly increasing, got {bounds}"
            )
        if bounds[-1] != float("inf"):
            raise TopologyError("last regime bound must be inf")
        self.regimes = [(float(b), p) for b, p in regimes]
        self._validate_monotonic()

    def _validate_monotonic(self) -> None:
        # Spot-check that cost never decreases when the size grows
        # across each regime boundary (jumps up are fine, down are not).
        for (bound, params), (_nb, nparams) in zip(
            self.regimes, self.regimes[1:]
        ):
            if bound == float("inf"):
                continue
            at_boundary = params.transfer_time(bound)
            just_after = nparams.transfer_time(bound + 1)
            if just_after < at_boundary - 1e-15:
                raise TopologyError(
                    f"cost drops across the {bound}-byte boundary "
                    f"({at_boundary:.3g}s -> {just_after:.3g}s); "
                    "regimes must be monotone in message size"
                )

    def params_for(self, nbytes: float) -> HockneyParams:
        """The regime covering a message of ``nbytes``."""
        if nbytes < 0:
            raise TopologyError(f"message size must be >= 0, got {nbytes}")
        for bound, params in self.regimes:
            if nbytes <= bound:
                return params
        raise AssertionError("unreachable: last bound is inf")

    def transfer_time(self, nbytes: float) -> float:
        return self.params_for(nbytes).transfer_time(nbytes)

    @classmethod
    def mpi_like(
        cls,
        alpha: float,
        beta: float,
        *,
        eager_bytes: int = 4096,
        large_bytes: int = 1 << 20,
    ) -> "PiecewiseHockney":
        """A typical MPI three-regime curve built around base
        parameters: eager messages pay half the latency; very large
        messages pay an extra rendezvous-handshake latency on the same
        wire bandwidth."""
        return cls([
            (float(eager_bytes), HockneyParams(alpha * 0.5, beta)),
            (float(large_bytes), HockneyParams(alpha, beta)),
            (float("inf"), HockneyParams(alpha * 3.0, beta)),
        ])


class PiecewiseNetwork(Network):
    """Fully-connected homogeneous network with a piecewise cost."""

    def __init__(self, nranks: int, model: PiecewiseHockney):
        super().__init__(nranks)
        self.model = model

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        self._check_pair(src, dst)
        if src == dst:
            return 0.0
        return self.model.transfer_time(nbytes)
