"""Single-rank reference multiplication (sanity baseline)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.blocks.ops import gemm_flops
from repro.errors import ConfigurationError
from repro.mpi.comm import MpiContext
from repro.network.homogeneous import HomogeneousNetwork
from repro.payloads import PhantomArray, is_phantom
from repro.simulator.engine import Engine
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult


def run_serial(A: Any, B: Any, *, gamma: float = 0.0) -> tuple[Any, SimResult]:
    """Multiply on one simulated rank, charging ``2*m*l*n*gamma``."""
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")

    def program(ctx: MpiContext):
        yield from ctx.compute_flops(gemm_flops(m, l, n))
        if is_phantom(A) or is_phantom(B):
            return PhantomArray((m, n))
        return np.asarray(A, dtype=float) @ np.asarray(B, dtype=float)

    ctx = MpiContext(0, 1, gamma=gamma)
    sim = Engine(HomogeneousNetwork(1, DEFAULT_PARAMS)).run([program(ctx)])
    return sim.return_values[0], sim
