"""The 3-D (DNS / Agarwal et al.) algorithm.

``p = q^3`` ranks arranged as a ``q x q x q`` mesh.  Input matrices
start block-distributed on the front layer ``k = 0``; the algorithm

1. routes ``A``'s tile ``(i, j)`` from ``(i, j, 0)`` to ``(i, j, j)``
   and broadcasts it along the ``j`` axis — so every ``(i, *, k)``
   holds ``A_{i,k}``;
2. symmetrically routes ``B``'s tile ``(i, j)`` to ``(i, j, i)`` and
   broadcasts along the ``i`` axis — so every ``(*, j, k)`` holds
   ``B_{k,j}``;
3. multiplies locally: layer ``k`` computes ``A_{i,k} @ B_{k,j}``;
4. reduces along ``k`` back to the front layer.

This trades a factor ``p^(1/3)`` of extra memory for ``p^(1/6)`` less
communication — the memory blow-up the paper argues rules it out at
scale (100 extra matrix copies on a million cores).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]

TAG_ROUTE_A = 10
TAG_ROUTE_B = 11


def _cube_root(p: int) -> int:
    q = round(p ** (1.0 / 3.0))
    for cand in (q - 1, q, q + 1):
        if cand > 0 and cand**3 == p:
            return cand
    raise ConfigurationError(f"3D algorithm needs a cubic rank count, got {p}")


def dns3d_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, q: int
) -> Gen:
    """Per-rank 3-D algorithm generator.

    ``a_tile``/``b_tile`` are this rank's front-layer tiles (``None``
    off the front layer).  Returns the C tile on the front layer,
    ``None`` elsewhere.
    """
    world = ctx.world
    rank = world.rank
    # Rank r = (i * q + j) * q + k.
    k = rank % q
    j = (rank // q) % q
    i = rank // (q * q)

    def rank_of(ii: int, jj: int, kk: int) -> int:
        return (ii * q + jj) * q + kk

    # Axis communicators (collective construction on every rank).
    j_axis = world.split_by(lambda r: (r // (q * q)) * q + r % q,
                            key_of=lambda r: (r // q) % q)  # varying j
    i_axis = world.split_by(lambda r: ((r // q) % q) * q + r % q,
                            key_of=lambda r: r // (q * q))  # varying i
    k_axis = world.split_by(lambda r: r // q,
                            key_of=lambda r: r % q)  # varying k

    # 1. Route A(i,j): (i,j,0) -> (i,j,j), then broadcast over j axis.
    if k == 0 and j != 0:
        yield from world.send(a_tile, rank_of(i, j, j), tag=TAG_ROUTE_A)
        a_held = None
    elif k == j:
        if j != 0:
            a_held = yield from world.recv(rank_of(i, j, 0), tag=TAG_ROUTE_A)
        else:
            a_held = a_tile
    else:
        a_held = None
    # On the j axis (fixed i, k): root is the rank with j == k.
    a_held = yield from j_axis.bcast(a_held, root=k)

    # 2. Route B(i,j): (i,j,0) -> (i,j,i), then broadcast over i axis.
    if k == 0 and i != 0:
        yield from world.send(b_tile, rank_of(i, j, i), tag=TAG_ROUTE_B)
        b_held = None
    elif k == i:
        if i != 0:
            b_held = yield from world.recv(rank_of(i, j, 0), tag=TAG_ROUTE_B)
        else:
            b_held = b_tile
    else:
        b_held = None
    b_held = yield from i_axis.bcast(b_held, root=k)

    # 3. Local multiply: this rank now has A_{i,k} and B_{k,j}.
    if isinstance(a_held, PhantomArray) or isinstance(b_held, PhantomArray):
        c_partial: Any = PhantomArray((a_held.shape[0], b_held.shape[1]))
    else:
        c_partial = np.zeros((a_held.shape[0], b_held.shape[1]))
    c_partial = yield from local_gemm_acc(ctx, c_partial, a_held, b_held)

    # 4. Reduce along k to the front layer.
    c_tile = yield from k_axis.reduce(c_partial, root=0)
    return c_tile if k == 0 else None


def run_dns3d(
    A: Any,
    B: Any,
    *,
    nprocs: int,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply ``A @ B`` with the 3-D algorithm on ``nprocs = q^3`` ranks."""
    from repro.faults.spec import coerce_faults

    q = _cube_root(nprocs)
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, q, q))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, q, q))

    if network is None:
        network = HomogeneousNetwork(nprocs, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nprocs, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            k = rank % q
            j = (rank // q) % q
            i = rank // (q * q)
            a_t = da.tile(i, j) if k == 0 else None
            b_t = db.tile(i, j) if k == 0 else None
            programs.append(dns3d_program(ctx, a_t, b_t, q))
        return programs

    if backend == "predictor":
        from repro.simulator.predictor import (
            Dns3dConfig,
            _require_predictable,
            predict_dns3d,
        )

        _require_predictable(
            "the 3-D (DNS) algorithm", phantom=da.phantom or db.phantom,
            faults=faults, verify=verify, contention=contention,
        )
        sim = predict_dns3d(
            Dns3dConfig(m=m, l=l, n=n, q=q),
            network=network, options=options, gamma=gamma,
        )
        return PhantomArray((m, n)), sim

    from repro.simulator.collapse import dns3d_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults, symmetry=dns3d_symmetry(q),
        meta={"program": "dns3d", "cube": f"{q}x{q}x{q}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, q, q),
    )
    tiles = {}
    for rank in range(nprocs):
        if rank % q == 0:
            j = (rank // q) % q
            i = rank // (q * q)
            tiles[(i, j)] = sim.return_values[rank]
    return dc.assemble(tiles), sim
