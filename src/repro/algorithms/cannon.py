"""Cannon's algorithm (1969) — the square-grid shift algorithm.

Requires a square ``q x q`` grid (the restriction the paper cites as
the reason Cannon never made it into general-purpose libraries).  After
the initial skew — tile row ``i`` of ``A`` rotated left by ``i``, tile
column ``j`` of ``B`` rotated up by ``j`` — there are ``q`` rounds of
local multiply followed by a single-step rotation of both operands.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]

TAG_SKEW_A = 1
TAG_SKEW_B = 2
TAG_SHIFT_A = 3
TAG_SHIFT_B = 4


def cannon_program(ctx: MpiContext, a_tile: Any, b_tile: Any, q: int) -> Gen:
    """Per-rank Cannon generator on a ``q x q`` grid; returns the C tile."""
    grid = CartComm(ctx.world, q, q)
    i, j = grid.row, grid.col
    comm = grid.comm

    # Initial skew: A(i,j) -> (i, j-i);  B(i,j) -> (i-j, j).
    if i > 0:
        a_tile = yield from comm.sendrecv(
            a_tile,
            grid.rank_at(i, j - i),
            grid.rank_at(i, j + i),
            sendtag=TAG_SKEW_A,
            recvtag=TAG_SKEW_A,
        )
    if j > 0:
        b_tile = yield from comm.sendrecv(
            b_tile,
            grid.rank_at(i - j, j),
            grid.rank_at(i + j, j),
            sendtag=TAG_SKEW_B,
            recvtag=TAG_SKEW_B,
        )

    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile: Any = PhantomArray((a_tile.shape[0], b_tile.shape[1]))
    else:
        c_tile = np.zeros((a_tile.shape[0], b_tile.shape[1]))

    for step in range(q):
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_tile, b_tile)
        if step == q - 1:
            break
        a_tile = yield from comm.sendrecv(
            a_tile,
            grid.rank_at(i, j - 1),
            grid.rank_at(i, j + 1),
            sendtag=TAG_SHIFT_A,
            recvtag=TAG_SHIFT_A,
        )
        b_tile = yield from comm.sendrecv(
            b_tile,
            grid.rank_at(i - 1, j),
            grid.rank_at(i + 1, j),
            sendtag=TAG_SHIFT_B,
            recvtag=TAG_SHIFT_B,
        )
    return c_tile


def run_cannon(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply ``A @ B`` with Cannon's algorithm; ``grid`` must be square."""
    from repro.faults.spec import coerce_faults

    s, t = grid
    if s != t:
        raise ConfigurationError(
            f"Cannon requires a square grid, got {s}x{t} "
            "(this is the restriction SUMMA lifted)"
        )
    q = s
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, q, q))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, q, q))

    nranks = q * q
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            i, j = divmod(rank, q)
            programs.append(
                cannon_program(ctx, da.tile(i, j), db.tile(i, j), q)
            )
        return programs

    if backend == "predictor":
        from repro.simulator.predictor import (
            CannonConfig,
            _require_predictable,
            predict_cannon,
        )

        _require_predictable(
            "Cannon's algorithm", phantom=da.phantom or db.phantom,
            faults=faults, verify=verify, contention=contention,
        )
        sim = predict_cannon(
            CannonConfig(m=m, l=l, n=n, q=q),
            network=network, options=options, gamma=gamma,
        )
        return PhantomArray((m, n)), sim

    from repro.simulator.collapse import cannon_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults, symmetry=cannon_symmetry(q),
        meta={"program": "cannon", "grid": f"{q}x{q}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, q, q),
    )
    tiles = {divmod(rank, q): sim.return_values[rank] for rank in range(nranks)}
    return dc.assemble(tiles), sim
