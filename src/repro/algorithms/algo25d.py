"""The 2.5D algorithm (Solomonik & Demmel 2011) with replication ``c``.

``p = q*q*c`` ranks arranged ``q x q x c``.  Layer 0 holds the inputs
block-distributed; the tiles are replicated down the ``c`` layer axis,
each layer then executes a ``1/c`` share of the SUMMA-style pivot
steps entirely within itself, and the partial ``C``s are reduced back
to layer 0.  Per-rank broadcast volume is ``2 n^2 / sqrt(c p)`` — the
``sqrt(c)``-fold bandwidth saving of 2.5D — at the price of ``c``
matrix replicas, the memory cost the paper argues will not survive
exascale memory-per-core trends.

This is the broadcast-based formulation: the original paper shifts
skewed tiles Cannon-style inside a layer, which has the same asymptotic
cost; the broadcast variant reuses this library's collectives and keeps
the comparison apples-to-apples with SUMMA/HSUMMA (see DESIGN.md).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc
from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]


def _layer_grid(p: int, c: int) -> int:
    if c < 1:
        raise ConfigurationError(f"replication c must be >= 1, got {c}")
    if p % c:
        raise ConfigurationError(f"replication {c} does not divide p={p}")
    q = round((p // c) ** 0.5)
    if q * q * c != p:
        raise ConfigurationError(
            f"2.5D needs p = q^2 * c; p={p}, c={c} gives no integer q"
        )
    if q % c:
        raise ConfigurationError(
            f"2.5D step split needs c | q (q={q}, c={c})"
        )
    return q


def algo25d_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, q: int, c: int
) -> Gen:
    """Per-rank 2.5D generator; returns the C tile on layer 0."""
    world = ctx.world
    rank = world.rank
    # Rank r = (i * q + j) * c + layer.
    layer = rank % c
    j = (rank // c) % q
    i = rank // (c * q)

    # Communicators: layer axis (fixed i,j), and row/col inside a layer.
    layer_axis = world.split_by(lambda r: r // c, key_of=lambda r: r % c)
    row_comm = world.split_by(
        lambda r: (r // (c * q)) * c + r % c,
        key_of=lambda r: (r // c) % q,
    )  # fixed (i, layer), varying j
    col_comm = world.split_by(
        lambda r: ((r // c) % q) * c + r % c,
        key_of=lambda r: r // (c * q),
    )  # fixed (j, layer), varying i

    # 1. Replicate tiles across layers.
    a_tile = yield from layer_axis.bcast(a_tile, root=0)
    b_tile = yield from layer_axis.bcast(b_tile, root=0)

    # 2. My layer's share of the q pivot steps.
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_partial: Any = PhantomArray((a_tile.shape[0], b_tile.shape[1]))
    else:
        c_partial = np.zeros((a_tile.shape[0], b_tile.shape[1]))
    steps = q // c
    for idx in range(steps):
        k = layer * steps + idx
        a_piv = a_tile if j == k else None
        a_piv = yield from row_comm.bcast(a_piv, root=k)
        b_piv = b_tile if i == k else None
        b_piv = yield from col_comm.bcast(b_piv, root=k)
        c_partial = yield from local_gemm_acc(ctx, c_partial, a_piv, b_piv)

    # 3. Reduce partial results to layer 0.
    c_tile = yield from layer_axis.reduce(c_partial, root=0)
    return c_tile if layer == 0 else None


def run_25d(
    A: Any,
    B: Any,
    *,
    nprocs: int,
    replication: int = 1,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply ``A @ B`` with the 2.5D algorithm.

    ``nprocs = q^2 * replication`` with ``replication | q``;
    ``replication=1`` degenerates to a SUMMA-like 2-D run, and
    ``replication=p^(1/3)`` recovers the 3-D algorithm's layout.
    """
    from repro.faults.spec import coerce_faults

    c = replication
    q = _layer_grid(nprocs, c)
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, q, q))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, q, q))

    if network is None:
        network = HomogeneousNetwork(nprocs, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nprocs, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            layer = rank % c
            j = (rank // c) % q
            i = rank // (c * q)
            a_t = da.tile(i, j) if layer == 0 else None
            b_t = db.tile(i, j) if layer == 0 else None
            programs.append(algo25d_program(ctx, a_t, b_t, q, c))
        return programs

    if backend == "predictor":
        from repro.simulator.predictor import (
            Summa25dConfig,
            _require_predictable,
            predict_summa25d,
        )

        _require_predictable(
            "the 2.5D algorithm", phantom=da.phantom or db.phantom,
            faults=faults, verify=verify, contention=contention,
        )
        sim = predict_summa25d(
            Summa25dConfig(m=m, l=l, n=n, q=q, c=c),
            network=network, options=options, gamma=gamma,
        )
        return PhantomArray((m, n)), sim

    from repro.simulator.collapse import summa25d_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults,
        symmetry=summa25d_symmetry(q, c),
        meta={"program": "25d", "grid": f"{q}x{q}", "replication": c},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, q, q),
    )
    tiles = {}
    for rank in range(nprocs):
        if rank % c == 0:
            j = (rank // c) % q
            i = rank // (c * q)
            tiles[(i, j)] = sim.return_values[rank]
    return dc.assemble(tiles), sim
