"""Baseline parallel matmul algorithms the paper discusses (Section I/II).

* :mod:`repro.algorithms.serial` — single-rank reference.
* :mod:`repro.algorithms.cannon` — Cannon's 1969 algorithm (square grid,
  shift-based, the first communication-optimal 2-D algorithm).
* :mod:`repro.algorithms.fox` — Fox's broadcast-multiply-roll.
* :mod:`repro.algorithms.dns3d` — the Agarwal et al. 3-D algorithm
  (``p^(1/3)`` replication, ``p^(1/6)`` less communication).
* :mod:`repro.algorithms.algo25d` — Solomonik–Demmel 2.5D with a
  tunable replication factor ``c``.

These let the benchmark suite place HSUMMA in the full algorithm
landscape (the paper compares only against SUMMA, arguing the others'
memory or squareness restrictions; the ablation benches quantify that).
"""

from repro.algorithms.cannon import run_cannon
from repro.algorithms.fox import run_fox
from repro.algorithms.dns3d import run_dns3d
from repro.algorithms.algo25d import run_25d
from repro.algorithms.serial import run_serial

__all__ = ["run_cannon", "run_fox", "run_dns3d", "run_25d", "run_serial"]
