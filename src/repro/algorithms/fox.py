"""Fox's algorithm (broadcast–multiply–roll, 1987).

Square ``q x q`` grid.  In round ``k`` the rank in column
``(i + k) mod q`` broadcasts its ``A`` tile along its grid row, every
rank multiplies into ``C``, and ``B`` rolls up one grid row.  Same
square-grid restriction as Cannon (paper Section I).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]

TAG_ROLL_B = 5


def fox_program(ctx: MpiContext, a_tile: Any, b_tile: Any, q: int) -> Gen:
    """Per-rank Fox generator on a ``q x q`` grid; returns the C tile."""
    grid = CartComm(ctx.world, q, q)
    i, j = grid.row, grid.col

    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile: Any = PhantomArray((a_tile.shape[0], b_tile.shape[1]))
    else:
        c_tile = np.zeros((a_tile.shape[0], b_tile.shape[1]))

    for k in range(q):
        pivot_col = (i + k) % q
        a_bcast = a_tile if j == pivot_col else None
        a_bcast = yield from grid.row_comm.bcast(a_bcast, root=pivot_col)
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_bcast, b_tile)
        if k == q - 1:
            break
        b_tile = yield from grid.comm.sendrecv(
            b_tile,
            grid.rank_at(i - 1, j),
            grid.rank_at(i + 1, j),
            sendtag=TAG_ROLL_B,
            recvtag=TAG_ROLL_B,
        )
    return c_tile


def run_fox(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply ``A @ B`` with Fox's algorithm; ``grid`` must be square."""
    from repro.faults.spec import coerce_faults

    s, t = grid
    if s != t:
        raise ConfigurationError(f"Fox requires a square grid, got {s}x{t}")
    q = s
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, q, q))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, q, q))

    nranks = q * q
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            i, j = divmod(rank, q)
            programs.append(fox_program(ctx, da.tile(i, j), db.tile(i, j), q))
        return programs

    if backend == "predictor":
        from repro.simulator.predictor import (
            FoxConfig,
            _require_predictable,
            predict_fox,
        )

        _require_predictable(
            "Fox's algorithm", phantom=da.phantom or db.phantom,
            faults=faults, verify=verify, contention=contention,
        )
        sim = predict_fox(
            FoxConfig(m=m, l=l, n=n, q=q),
            network=network, options=options, gamma=gamma,
        )
        return PhantomArray((m, n)), sim

    from repro.simulator.collapse import fox_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults, symmetry=fox_symmetry(q),
        meta={"program": "fox", "grid": f"{q}x{q}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, q, q),
    )
    tiles = {divmod(rank, q): sim.return_values[rank] for rank in range(nranks)}
    return dc.assemble(tiles), sim
