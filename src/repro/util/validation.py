"""Argument-validation helpers that raise :class:`ConfigurationError`.

Centralising these keeps the error messages uniform across the public
API ("block size b=48 must divide tile height 100" style) and makes the
configuration-error paths easy to test.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.util.gridmath import is_power_of_two


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_divides(divisor: int, dividend: int, what: str) -> None:
    """Require ``divisor`` to evenly divide ``dividend``."""
    if divisor <= 0:
        raise ConfigurationError(f"{what}: divisor must be positive, got {divisor}")
    if dividend % divisor != 0:
        raise ConfigurationError(
            f"{what}: {divisor} does not divide {dividend}"
        )


def require_power_of_two(value: int, name: str) -> None:
    """Require ``value`` to be a positive power of two."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a power of two, got {value!r}")


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> None:
    """Require ``value`` to be an instance of ``types``."""
    if not isinstance(value, types):
        raise ConfigurationError(
            f"{name} must be {types!r}, got {type(value).__name__}"
        )
