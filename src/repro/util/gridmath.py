"""Integer and processor-grid arithmetic used throughout the library.

These helpers are deliberately dependency-free; they operate on plain
Python ints so they stay exact for the very large processor counts used
in the exascale predictions (p = 2**20 and beyond).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import ConfigurationError


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``."""
    if b <= 0:
        raise ConfigurationError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def lcm(a: int, b: int) -> int:
    """Least common multiple; used by the PUMMA-style analyses."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two (1 counts)."""
    return n > 0 and (n & (n - 1)) == 0


def nearest_power_of_two(n: int) -> int:
    """The power of two closest to ``n`` (ties round down)."""
    if n < 1:
        raise ConfigurationError(f"nearest_power_of_two needs n >= 1, got {n}")
    lo = 1 << (n.bit_length() - 1)
    hi = lo << 1
    return lo if (n - lo) <= (hi - n) else hi


def is_perfect_square(n: int) -> bool:
    """True if ``n`` is a perfect square (0 and 1 count)."""
    if n < 0:
        return False
    r = math.isqrt(n)
    return r * r == n


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in ascending order."""
    if n <= 0:
        raise ConfigurationError(f"divisors needs n >= 1, got {n}")
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def factor_grid(p: int) -> tuple[int, int]:
    """Factor ``p`` processors into the most square ``s x t`` grid with
    ``s <= t``.

    This mirrors what MPI_Dims_create does for two dimensions and is the
    default grid shape for SUMMA/HSUMMA when the caller does not pick one.

    >>> factor_grid(128)
    (8, 16)
    >>> factor_grid(36)
    (6, 6)
    """
    if p <= 0:
        raise ConfigurationError(f"factor_grid needs p >= 1, got {p}")
    s = math.isqrt(p)
    while s >= 1:
        if p % s == 0:
            return (s, p // s)
        s -= 1
    raise AssertionError("unreachable: 1 always divides p")


def split_evenly(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` contiguous chunk sizes differing by
    at most one (the classic block distribution remainder rule).

    >>> split_evenly(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ConfigurationError(f"split_evenly needs parts >= 1, got {parts}")
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


def chunk_bounds(total: int, parts: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` bounds for :func:`split_evenly` chunks."""
    start = 0
    for size in split_evenly(total, parts):
        yield (start, start + size)
        start += size
