"""Plain-text table formatting for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper reports;
:func:`format_table` renders them in a fixed-width layout that survives
``pytest -s`` capture and plain terminals.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ascii table.

    Numeric cells are right-aligned, text cells left-aligned; floats are
    shortened to at most four significant decimals.
    """
    cells = [[_render(v) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(cells):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols} (headers: {headers})"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(ncols)
    ]
    numeric = [
        all(_is_numeric(row[c]) for row in rows) if rows else False
        for c in range(ncols)
    ]

    def fmt_row(values: Sequence[str]) -> str:
        parts = []
        for c, v in enumerate(values):
            parts.append(v.rjust(widths[c]) if numeric[c] else v.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
