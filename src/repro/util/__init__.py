"""Small shared utilities: integer/grid math, ascii tables, validation."""

from repro.util.gridmath import (
    ceil_div,
    divisors,
    factor_grid,
    is_perfect_square,
    is_power_of_two,
    lcm,
    nearest_power_of_two,
    split_evenly,
)
from repro.util.tables import format_table
from repro.util.validation import (
    require,
    require_divides,
    require_positive,
    require_power_of_two,
)

__all__ = [
    "ceil_div",
    "divisors",
    "factor_grid",
    "is_perfect_square",
    "is_power_of_two",
    "lcm",
    "nearest_power_of_two",
    "split_evenly",
    "format_table",
    "require",
    "require_divides",
    "require_positive",
    "require_power_of_two",
]
