"""Grid5000 Graphene (Nancy) preset — the paper's Section V-A testbed.

Graphene was a commodity cluster: one quad-core Intel L5420-era node
per rank in these experiments, gigabit-class interconnect.  The paper's
model validation (Section V-A-1) uses ``alpha = 1e-4`` s and reciprocal
bandwidth ``1e-9`` (1 GB/s); we adopt the same numbers, place one rank
per node, and hang 20 nodes off each edge switch.
"""

from __future__ import annotations

from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.network.tree import SwitchedCluster
from repro.platforms.base import Platform

#: Paper validation parameters for Graphene.  As on BG/P, the paper's
#: reciprocal bandwidth 1e-9 is per *element*; per byte that is /8.
GRAPHENE_PARAMS = HockneyParams(alpha=1e-4, beta=1e-9 / 8.0)

#: One core of a 2008-era Xeon running MKL DGEMM: ~4 Gflop/s.
GRAPHENE_GAMMA = 1.0 / 4e9

NODES_PER_SWITCH = 20


def grid5000_graphene(nranks: int = 128) -> Platform:
    """The Graphene cluster sized for ``nranks`` ranks (paper: 128)."""

    def factory(p: int) -> SwitchedCluster:
        return SwitchedCluster(
            nnodes=p,
            nodes_per_switch=NODES_PER_SWITCH,
            params=GRAPHENE_PARAMS,
            ranks_per_node=1,
        )

    return Platform(
        name="grid5000-graphene",
        nranks=nranks,
        params=GRAPHENE_PARAMS,
        gamma=GRAPHENE_GAMMA,
        network_factory=factory,
        options=CollectiveOptions(bcast="vandegeijn"),
        default_n=8192,
        default_block=64,
    )
