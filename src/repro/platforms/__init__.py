"""Platform presets modelling the paper's testbeds.

* :func:`grid5000_graphene` — the Nancy/Graphene commodity cluster the
  paper's small-scale experiments ran on (Section V-A).
* :func:`bluegene_p` — Shaheen, the 16-rack BlueGene/P at KAUST with a
  3-D torus, VN mode (Section V-B).
* :func:`exascale_2012` — the exascale-roadmap parameter set of the
  prediction in Section V-C.

A :class:`Platform` bundles the Hockney parameters (simulator scale:
per *byte*; analytic-model scale: per *element* via
``model_beta``), a flop cost, a network factory, and the experiment
defaults (matrix size, block size, broadcast algorithm) the paper used
on that machine.
"""

from repro.platforms.base import Platform
from repro.platforms.grid5000 import grid5000_graphene
from repro.platforms.bluegene import bluegene_p
from repro.platforms.exa import exascale_2012

__all__ = ["Platform", "grid5000_graphene", "bluegene_p", "exascale_2012"]
