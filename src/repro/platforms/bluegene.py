"""BlueGene/P (Shaheen) preset — the paper's Section V-B testbed.

Shaheen: 16-rack BG/P, four 850 MHz PowerPC 450 cores and 4 GB per
node, 3-D torus interconnect, VN mode (4 MPI ranks per node).  The
paper's model validation (Section V-B-1) uses ``alpha = 3e-6`` s and
reciprocal bandwidth ``1e-9``; we adopt those for torus links and build
the smallest near-cubic torus that holds the requested rank count at 4
ranks/node.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams
from repro.network.torus import Torus3D
from repro.platforms.base import Platform

#: Paper validation parameters for the BG/P torus.  The paper quotes
#: reciprocal bandwidth 1e-9 per *element* (8-byte float64); the
#: simulator charges per byte, hence /8.  This distinction matters: it
#: decides the paper's threshold test ``alpha/beta > 2nb/p`` (3000 vs
#: 2048 at p=16384) — with a per-byte reading HSUMMA would lose.
BGP_PARAMS = HockneyParams(alpha=3e-6, beta=1e-9 / 8.0)

#: One PowerPC 450 core with the double FPU: ~3.4 Gflop/s peak; ESSL
#: DGEMM sustains ~80%.
BGP_GAMMA = 1.0 / 2.7e9

RANKS_PER_NODE = 4  # VN mode


def torus_dims_for(nnodes: int) -> tuple[int, int, int]:
    """Near-cubic ``(X, Y, Z)`` with ``X*Y*Z == nnodes`` (X <= Y <= Z)."""
    if nnodes < 1:
        raise ConfigurationError(f"need nnodes >= 1, got {nnodes}")
    best: tuple[int, int, int] | None = None
    x = 1
    while x * x * x <= nnodes:
        if nnodes % x == 0:
            rem = nnodes // x
            y = x
            while y * y <= rem:
                if rem % y == 0:
                    cand = (x, y, rem // y)
                    if best is None or max(cand) - min(cand) < max(best) - min(best):
                        best = cand
                y += 1
        x += 1
    assert best is not None
    return best


def bluegene_p(nranks: int = 16384) -> Platform:
    """Shaheen BG/P sized for ``nranks`` ranks in VN mode."""

    def factory(p: int) -> Torus3D:
        if p % RANKS_PER_NODE:
            raise ConfigurationError(
                f"VN mode packs {RANKS_PER_NODE} ranks/node; {p} ranks do not fit evenly"
            )
        dims = torus_dims_for(p // RANKS_PER_NODE)
        return Torus3D(dims, BGP_PARAMS, ranks_per_node=RANKS_PER_NODE)

    return Platform(
        name="bluegene-p",
        nranks=nranks,
        params=BGP_PARAMS,
        gamma=BGP_GAMMA,
        network_factory=factory,
        options=CollectiveOptions(bcast="vandegeijn"),
        default_n=65536,
        default_block=256,
    )
