"""Exascale preset — the paper's Section V-C prediction platform.

Parameters from the exascale architecture roadmap the paper cites:
1 Eflop/s aggregate, 500 ns latency, 100 GB/s links, ``p = 2^20``
ranks.  This platform exists for the analytic models and the step-model
executor; a full per-message simulation at ``2^20`` ranks is
deliberately out of scope.
"""

from __future__ import annotations

from repro.mpi.comm import CollectiveOptions
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.platforms.base import Platform

#: Roadmap parameters: 500 ns, 100 GB/s.
EXA_PARAMS = HockneyParams(alpha=500e-9, beta=1.0 / 100e9)

#: 1 Eflop/s spread over 2^20 ranks.
EXA_GAMMA = 2**20 / 1e18


def exascale_2012(nranks: int = 2**20) -> Platform:
    """The roadmap exascale machine (homogeneous no-contention model,
    exactly the assumption the paper's prediction makes)."""

    def factory(p: int) -> HomogeneousNetwork:
        return HomogeneousNetwork(p, EXA_PARAMS)

    return Platform(
        name="exascale-2012",
        nranks=nranks,
        params=EXA_PARAMS,
        gamma=EXA_GAMMA,
        network_factory=factory,
        options=CollectiveOptions(bcast="vandegeijn"),
        default_n=2**22,
        default_block=256,
    )
