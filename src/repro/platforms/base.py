"""The :class:`Platform` preset type."""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import ConfigurationError
from repro.mpi.comm import CollectiveOptions
from repro.network.model import HockneyParams, Network
from repro.util.gridmath import factor_grid

WORD_BYTES = 8  # float64 matrix elements


@dataclasses.dataclass(frozen=True)
class Platform:
    """A named machine model.

    Attributes
    ----------
    name:
        Human-readable identifier.
    nranks:
        Ranks this preset is sized for (experiments may use fewer).
    params:
        Hockney parameters per *byte* — what the simulator charges.
    gamma:
        Seconds per floating-point operation per rank.
    network_factory:
        ``f(nranks) -> Network`` building the topology model for a run
        of that many ranks.
    options:
        Collective algorithm defaults (the paper's platforms use
        large-message scatter-allgather broadcasts, i.e. Van de Geijn).
    default_n, default_block:
        The matrix and block size the paper used on this machine.
    """

    name: str
    nranks: int
    params: HockneyParams
    gamma: float
    network_factory: Callable[[int], Network]
    options: CollectiveOptions = CollectiveOptions(bcast="vandegeijn")
    default_n: int = 8192
    default_block: int = 256

    @property
    def alpha(self) -> float:
        """Latency in seconds."""
        return self.params.alpha

    @property
    def model_beta(self) -> float:
        """Reciprocal bandwidth per *element* for the analytic models."""
        return self.params.beta * WORD_BYTES

    def network(self, nranks: int | None = None) -> Network:
        """Build the topology model for ``nranks`` (default: full size)."""
        if nranks is None:
            nranks = self.nranks
        if nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
        net = self.network_factory(nranks)
        if net.nranks < nranks:
            raise ConfigurationError(
                f"{self.name}: factory built a network for {net.nranks} ranks, "
                f"need {nranks}"
            )
        return net

    def grid(self, nranks: int | None = None) -> tuple[int, int]:
        """Near-square grid for ``nranks`` (default: full size)."""
        return factor_grid(nranks or self.nranks)
