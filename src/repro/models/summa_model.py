"""Closed-form SUMMA costs — the paper's equation (2) and Tables I/II.

The formulas live in the unified cost registry
(:mod:`repro.costs.closed_forms`); this module re-exports them under
their historical names.  ``beta`` is per *element*; see
:mod:`repro.models`.
"""

from __future__ import annotations

from repro.costs.closed_forms import (
    summa_bandwidth_factor,
    summa_communication_cost,
    summa_computation_cost,
    summa_latency_factor,
)

__all__ = [
    "summa_communication_cost",
    "summa_latency_factor",
    "summa_bandwidth_factor",
    "summa_computation_cost",
]
