"""Closed-form SUMMA costs — the paper's equation (2) and Tables I/II.

The analysis assumes ``n x n`` matrices on a square ``sqrt(p) x
sqrt(p)`` grid with block size ``b``.  Per step, the pivot column and
pivot row (each ``n/sqrt(p) * b`` elements) are broadcast among
``sqrt(p)`` ranks; there are ``n/b`` steps.  Communication cost:

    ``T_S(n, p) = 2 * ( (n/b) * L(sqrt(p)) * alpha
                        + (n^2/sqrt(p)) * W(sqrt(p)) * beta )``

``beta`` is per *element*; see :mod:`repro.models`.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.models.broadcast_model import BroadcastModel


def _check(n: float, p: float, b: float) -> None:
    if n <= 0 or p < 1 or b <= 0:
        raise ModelError(f"need n > 0, p >= 1, b > 0; got n={n}, p={p}, b={b}")
    if b > n:
        raise ModelError(f"block size {b} exceeds matrix size {n}")


def summa_communication_cost(
    n: float,
    p: float,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel,
) -> float:
    """Equation (2): total SUMMA communication time."""
    _check(n, p, b)
    q = math.sqrt(p)
    steps = n / b
    volume = n * n / q  # elements broadcast per direction in total
    return 2.0 * (steps * model.L(q) * alpha + volume * model.W(q) * beta)


def summa_latency_factor(n: float, p: float, b: float, model: BroadcastModel) -> float:
    """The multiplier on ``alpha`` (Table I/II 'Latency Factor' column)."""
    _check(n, p, b)
    return 2.0 * (n / b) * model.L(math.sqrt(p))


def summa_bandwidth_factor(n: float, p: float, model: BroadcastModel) -> float:
    """The multiplier on ``beta`` (Table I/II 'Bandwidth Factor' column)."""
    if n <= 0 or p < 1:
        raise ModelError(f"need n > 0 and p >= 1; got n={n}, p={p}")
    q = math.sqrt(p)
    return 2.0 * (n * n / q) * model.W(q)


def summa_computation_cost(n: float, p: float, gamma: float) -> float:
    """The ``2 n^3 / p`` flops at ``gamma`` seconds each (Tables I/II)."""
    if n <= 0 or p < 1 or gamma < 0:
        raise ModelError(f"need n > 0, p >= 1, gamma >= 0; got {n}, {p}, {gamma}")
    return 2.0 * n**3 / p * gamma
