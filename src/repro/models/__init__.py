"""Analytic performance models (paper Section IV).

Everything here is closed-form: no simulation, valid for any ``p`` up
to (and past) the exascale prediction's ``2^20``.  Message sizes are in
*elements* (matrix entries) with ``beta`` the reciprocal bandwidth per
element, matching the paper's usage; multiply a per-byte ``beta`` by
the word size (8 for float64) to convert.
"""

from repro.models.broadcast_model import BroadcastModel, BINOMIAL_MODEL, VANDEGEIJN_MODEL
from repro.models.summa_model import summa_communication_cost, summa_computation_cost
from repro.models.hsumma_model import hsumma_communication_cost
from repro.models.optimizer import (
    critical_ratio,
    hsumma_beats_summa,
    optimal_group_count,
    predicted_extremum_kind,
)
from repro.models.exascale import exascale_prediction

__all__ = [
    "BroadcastModel",
    "BINOMIAL_MODEL",
    "VANDEGEIJN_MODEL",
    "summa_communication_cost",
    "summa_computation_cost",
    "hsumma_communication_cost",
    "critical_ratio",
    "hsumma_beats_summa",
    "optimal_group_count",
    "predicted_extremum_kind",
    "exascale_prediction",
]
