"""Fitting Hockney parameters from ping-pong measurements.

The paper's model validation (Sections V-A-1, V-B-1) starts from
"approximately real parameters" for each platform.  This module closes
the loop: given measured ``(message bytes, seconds)`` samples — from a
real machine's ping-pong benchmark, or from this package's own
simulator — fit ``alpha`` and ``beta`` by least squares and report the
fit quality, so platform presets can be derived instead of guessed.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.network.model import HockneyParams


@dataclasses.dataclass(frozen=True)
class HockneyFit:
    """Result of a latency/bandwidth fit."""

    params: HockneyParams
    residual_rms: float  # RMS of (measured - predicted), seconds
    r_squared: float

    def predict(self, nbytes: float) -> float:
        return self.params.transfer_time(nbytes)


def fit_hockney(
    sizes_bytes: Sequence[float], times_s: Sequence[float]
) -> HockneyFit:
    """Least-squares fit of ``T(m) = alpha + m*beta``.

    Needs at least two distinct message sizes; raises if the fit
    produces non-physical (non-positive) parameters, which usually
    means the samples are noise-dominated or not ping-pong-shaped.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    times = np.asarray(times_s, dtype=float)
    if sizes.shape != times.shape or sizes.ndim != 1:
        raise ModelError(
            f"sizes and times must be equal-length 1-D, got "
            f"{sizes.shape} and {times.shape}"
        )
    if sizes.size < 2 or np.unique(sizes).size < 2:
        raise ModelError("need samples at >= 2 distinct message sizes")
    design = np.stack([np.ones_like(sizes), sizes], axis=1)
    (alpha, beta), *_ = np.linalg.lstsq(design, times, rcond=None)
    if alpha <= 0 or beta <= 0:
        raise ModelError(
            f"non-physical fit (alpha={alpha:.3g}, beta={beta:.3g}); "
            "check the samples"
        )
    predicted = design @ np.array([alpha, beta])
    resid = times - predicted
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return HockneyFit(
        params=HockneyParams(alpha=float(alpha), beta=float(beta)),
        residual_rms=float(np.sqrt(ss_res / sizes.size)),
        r_squared=r2,
    )


def pingpong_samples(
    network,
    src: int,
    dst: int,
    sizes_bytes: Sequence[int],
) -> tuple[list[int], list[float]]:
    """Generate ping-pong samples from a simulated network (one-way
    times; deterministic, so one repetition suffices)."""
    sizes = [int(s) for s in sizes_bytes]
    times = [network.transfer_time(src, dst, s) for s in sizes]
    return sizes, times


def calibrate_network(
    network,
    src: int = 0,
    dst: int | None = None,
    sizes_bytes: Sequence[int] = (0, 1 << 10, 1 << 14, 1 << 18, 1 << 22),
) -> HockneyFit:
    """Fit effective Hockney parameters for one pair of a (possibly
    topology-aware) network — what a user would measure on the real
    machine with a two-node ping-pong."""
    if dst is None:
        dst = network.nranks - 1
    sizes, times = pingpong_samples(network, src, dst, sizes_bytes)
    return fit_hockney(sizes, times)
