"""The paper's general broadcast model (its equation 1):

    ``T_bcast(m, p) = L(p) * alpha + m * W(p) * beta``

with ``L(1) = W(1) = 0``.  A :class:`BroadcastModel` bundles the two
factor functions; the two instances the paper analyses — binomial tree
and Van de Geijn — are provided, built on the same closed forms the
executable collectives satisfy (tests pin the DES to these formulas).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable


@dataclasses.dataclass(frozen=True)
class BroadcastModel:
    """Latency/bandwidth factor functions of a broadcast algorithm.

    ``L`` and ``W`` take the participant count ``p`` (a positive float —
    the optimizer differentiates through non-integer ``p``) and return
    the factor multiplying ``alpha`` / ``m * beta``.
    """

    name: str
    L: Callable[[float], float]
    W: Callable[[float], float]

    def time(self, m_elements: float, p: float, alpha: float, beta: float) -> float:
        """``L(p)*alpha + m*W(p)*beta`` (zero at ``p == 1``)."""
        if p <= 1:
            return 0.0
        return self.L(p) * alpha + m_elements * self.W(p) * beta


def _log2(p: float) -> float:
    return math.log2(p) if p > 1 else 0.0


#: Binomial tree: ``log2(p) * (alpha + m*beta)`` (paper Section IV).
BINOMIAL_MODEL = BroadcastModel(
    name="binomial",
    L=_log2,
    W=_log2,
)

#: Van de Geijn scatter-allgather:
#: ``(log2(p) + p - 1)*alpha + 2*(p-1)/p * m*beta`` (paper Section IV).
VANDEGEIJN_MODEL = BroadcastModel(
    name="vandegeijn",
    L=lambda p: _log2(p) + (p - 1.0) if p > 1 else 0.0,
    W=lambda p: 2.0 * (p - 1.0) / p if p > 1 else 0.0,
)

#: Flat tree (for completeness; never optimal but a useful worst case).
FLAT_MODEL = BroadcastModel(
    name="flat",
    L=lambda p: p - 1.0 if p > 1 else 0.0,
    W=lambda p: p - 1.0 if p > 1 else 0.0,
)

MODELS: dict[str, BroadcastModel] = {
    m.name: m for m in (BINOMIAL_MODEL, VANDEGEIJN_MODEL, FLAT_MODEL)
}
