"""The paper's general broadcast model (its equation 1):

    ``T_bcast(m, p) = L(p) * alpha + m * W(p) * beta``

with ``L(1) = W(1) = 0``.  A :class:`BroadcastModel` bundles the two
factor functions.  The instances here are the *smooth* rows of the
unified cost registry (:data:`repro.costs.registry.SMOOTH_MODELS`) —
the very same objects, not copies — so this module and the discrete
factors :mod:`repro.collectives.cost` exposes can never drift apart
(``tests/costs/test_drift.py`` pins both the identity and the
power-of-two agreement).
"""

from __future__ import annotations

from repro.costs.registry import SMOOTH_MODELS, BroadcastModel

__all__ = [
    "BroadcastModel",
    "BINOMIAL_MODEL",
    "VANDEGEIJN_MODEL",
    "FLAT_MODEL",
    "MODELS",
]

#: Binomial tree: ``log2(p) * (alpha + m*beta)`` (paper Section IV).
BINOMIAL_MODEL = SMOOTH_MODELS["binomial"]

#: Van de Geijn scatter-allgather:
#: ``(log2(p) + p - 1)*alpha + 2*(p-1)/p * m*beta`` (paper Section IV).
VANDEGEIJN_MODEL = SMOOTH_MODELS["vandegeijn"]

#: Flat tree (for completeness; never optimal but a useful worst case).
FLAT_MODEL = SMOOTH_MODELS["flat"]

MODELS: dict[str, BroadcastModel] = {
    m.name: m for m in (BINOMIAL_MODEL, VANDEGEIJN_MODEL, FLAT_MODEL)
}
