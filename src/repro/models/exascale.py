"""Exascale prediction (paper Section V-C, Figure 10).

Platform parameters from the exascale roadmap the paper cites:
1 Eflop/s total, 500 ns latency, 100 GB/s links, ``p = 2^20`` ranks,
``n = 2^22``, ``b = 256``.  The paper's figure plots the model cost as
a function of the group count; since ``alpha/beta > 2nb/p`` holds, the
HSUMMA curve dips at ``G = sqrt(p) = 1024`` while SUMMA stays flat.
"""

from __future__ import annotations

import dataclasses
import math

from repro.models.broadcast_model import BroadcastModel, VANDEGEIJN_MODEL
from repro.models.hsumma_model import hsumma_communication_cost
from repro.models.summa_model import summa_communication_cost, summa_computation_cost


@dataclasses.dataclass(frozen=True)
class ExascaleScenario:
    """The paper's exascale parameter set (per-element beta)."""

    n: int = 2**22
    p: int = 2**20
    b: int = 256
    alpha: float = 500e-9
    beta: float = 8.0 / 100e9  # 8-byte elements over 100 GB/s links
    total_flops: float = 1e18

    @property
    def gamma(self) -> float:
        """Seconds per flop per rank at the quoted machine rate."""
        return self.p / self.total_flops


def exascale_prediction(
    scenario: ExascaleScenario | None = None,
    groups: list[int] | None = None,
    model: BroadcastModel = VANDEGEIJN_MODEL,
    include_compute: bool = False,
) -> dict[str, object]:
    """Figure-10 series: SUMMA cost (flat) and HSUMMA cost per ``G``.

    Returns ``{"groups": [...], "hsumma": [...], "summa": float,
    "optimal_G": int, "compute": float}``; times in model seconds.
    ``include_compute`` adds the (identical) ``2n^3/p`` term to both.
    """
    sc = scenario or ExascaleScenario()
    if groups is None:
        groups = [2**k for k in range(0, int(math.log2(sc.p)) + 1)]
    compute = summa_computation_cost(sc.n, sc.p, sc.gamma)
    base = compute if include_compute else 0.0
    summa = base + summa_communication_cost(
        sc.n, sc.p, sc.b, sc.alpha, sc.beta, model
    )
    hs = [
        base
        + hsumma_communication_cost(sc.n, sc.p, G, sc.b, sc.alpha, sc.beta, model)
        for G in groups
    ]
    best = groups[min(range(len(groups)), key=lambda i: hs[i])]
    return {
        "groups": groups,
        "hsumma": hs,
        "summa": summa,
        "optimal_G": best,
        "compute": compute,
    }
