"""Extremum analysis of the HSUMMA cost in ``G`` (paper eqs. 6-12).

For the Van de Geijn broadcast with ``b = B`` the derivative is

    ``dT/dG = (G - sqrt(p)) / (G * sqrt(G)) * (n*alpha/b - 2*n^2*beta/p)``

so ``G = sqrt(p)`` is always a stationary point, and it is the *minimum*
exactly when ``alpha/beta > 2*n*b/p`` (eq. 10) — otherwise it is the
maximum and the best HSUMMA degenerates to SUMMA (``G = 1`` or
``G = p``).  The threshold test, the derivative and the
extremum-kind classifier are the registry's closed forms
(:mod:`repro.costs.closed_forms`), re-exported here; this module adds
the numeric optimiser over integer group counts — optionally
restricted to the counts actually *realisable* on a processor grid
(feasible ``I x J`` splits), which is what the planner uses.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.costs.closed_forms import (  # noqa: F401 (re-exports)
    critical_ratio,
    crossover_processor_count,
    hsumma_beats_summa,
    hsumma_communication_cost,
    predicted_extremum_kind,
    vdg_cost_derivative,
)
from repro.errors import ModelError
from repro.models.broadcast_model import BroadcastModel, VANDEGEIJN_MODEL

__all__ = [
    "critical_ratio",
    "crossover_processor_count",
    "hsumma_beats_summa",
    "predicted_extremum_kind",
    "vdg_cost_derivative",
    "default_group_candidates",
    "optimal_group_count",
]


def default_group_candidates(
    p: int, grid: tuple[int, int] | None = None
) -> list[int]:
    """Candidate group counts for the numeric search.

    Without a ``grid``: powers of two in ``[1, p]`` plus exact
    ``sqrt(p)`` if integral — the paper's sweep grid.  With a
    ``grid=(s, t)``: only the counts with a feasible ``I x J`` split
    (``I | s``, ``J | t``) — an unrestricted sweep can nominate a ``G``
    no HSUMMA run can realise (e.g. ``G = 2`` on a ``3 x 3`` grid).
    """
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if grid is not None:
        from repro.core.grouping import valid_group_counts

        s, t = grid
        if s * t != p:
            raise ModelError(f"grid {s}x{t} does not have p={p} ranks")
        return valid_group_counts(s, t)
    cands = []
    g = 1
    while g <= p:
        cands.append(g)
        g *= 2
    r = math.isqrt(p)
    if r * r == p and r not in cands:
        cands.append(r)
    return sorted(cands)


def optimal_group_count(
    n: float,
    p: int,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel = VANDEGEIJN_MODEL,
    candidates: Iterable[int] | None = None,
    *,
    grid: tuple[int, int] | None = None,
) -> tuple[int, float]:
    """Numerically best integer ``G`` (and its cost) over ``candidates``
    (default: :func:`default_group_candidates` — the paper's
    power-of-two sweep, or, when ``grid`` is given, exactly the counts
    feasible on that ``s x t`` grid).

    Ties (e.g. the degenerate ``alpha/beta == 2nb/p`` threshold, where
    the Van de Geijn cost is flat in ``G``) resolve to the smallest
    candidate, so the choice is deterministic.
    """
    if candidates is None:
        candidates = default_group_candidates(p, grid)
    best_g, best_t = None, math.inf
    for G in candidates:
        if not (1 <= G <= p):
            raise ModelError(f"candidate G={G} outside [1, {p}]")
        t = hsumma_communication_cost(n, p, G, b, alpha, beta, model)
        if t < best_t:
            best_g, best_t = G, t
    if best_g is None:
        raise ModelError("no group-count candidates to search")
    return best_g, best_t
