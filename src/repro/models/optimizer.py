"""Extremum analysis of the HSUMMA cost in ``G`` (paper eqs. 6-12).

For the Van de Geijn broadcast with ``b = B`` the derivative is

    ``dT/dG = (G - sqrt(p)) / (G * sqrt(G)) * (n*alpha/b - 2*n^2*beta/p)``

so ``G = sqrt(p)`` is always a stationary point, and it is the *minimum*
exactly when ``alpha/beta > 2*n*b/p`` (eq. 10) — otherwise it is the
maximum and the best HSUMMA degenerates to SUMMA (``G = 1`` or
``G = p``).  This module provides the threshold test, the derivative, a
generic numeric optimiser over valid integer group counts, and the
extremum-kind classifier.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ModelError
from repro.models.broadcast_model import BroadcastModel, VANDEGEIJN_MODEL
from repro.models.hsumma_model import hsumma_communication_cost


def critical_ratio(n: float, b: float, p: float) -> float:
    """The paper's threshold ``2*n*b/p`` (eq. 10/11), in elements."""
    if n <= 0 or b <= 0 or p < 1:
        raise ModelError(f"need n > 0, b > 0, p >= 1; got {n}, {b}, {p}")
    return 2.0 * n * b / p


def hsumma_beats_summa(
    n: float, b: float, p: float, alpha: float, beta: float
) -> bool:
    """Equation (10): True when ``alpha/beta > 2nb/p`` so HSUMMA's cost
    has its minimum at ``G = sqrt(p)`` strictly inside ``(1, p)``."""
    if alpha <= 0 or beta <= 0:
        raise ModelError(f"need alpha, beta > 0; got {alpha}, {beta}")
    return alpha / beta > critical_ratio(n, b, p)


def predicted_extremum_kind(
    n: float, b: float, p: float, alpha: float, beta: float
) -> str:
    """'minimum', 'maximum', or 'flat' at ``G = sqrt(p)`` for the Van de
    Geijn cost function (eqs. 10/11)."""
    r = alpha / beta
    c = critical_ratio(n, b, p)
    if math.isclose(r, c, rel_tol=1e-12):
        return "flat"
    return "minimum" if r > c else "maximum"


def vdg_cost_derivative(
    n: float, p: float, G: float, b: float, alpha: float, beta: float
) -> float:
    """Equation (9): ``dT_HS/dG`` for the Van de Geijn broadcast, b=B."""
    if not (0 < G <= p):
        raise ModelError(f"G={G} outside (0, p={p}]")
    return (G - math.sqrt(p)) / (G * math.sqrt(G)) * (
        n * alpha / b - 2.0 * n * n * beta / p
    )


def crossover_processor_count(
    n: float, b: float, alpha: float, beta: float
) -> float:
    """The processor count beyond which HSUMMA's interior minimum
    exists: solving eq. (10) ``alpha/beta > 2nb/p`` for ``p`` gives

        ``p* = 2 n b beta / alpha``

    — the crossover of Figure 9.  For the paper's BG/P parameters
    (n=65536, b=256, alpha/beta=3000 elements) this is ~11185, i.e.
    between the measured 8192 and 16384 core counts, matching where the
    model's parity ends."""
    if n <= 0 or b <= 0 or alpha <= 0 or beta <= 0:
        raise ModelError(
            f"need positive arguments; got n={n}, b={b}, "
            f"alpha={alpha}, beta={beta}"
        )
    return 2.0 * n * b * beta / alpha


def optimal_group_count(
    n: float,
    p: int,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel = VANDEGEIJN_MODEL,
    candidates: Iterable[int] | None = None,
) -> tuple[int, float]:
    """Numerically best integer ``G`` (and its cost) over ``candidates``
    (default: powers of two in ``[1, p]`` plus exact ``sqrt(p)`` if
    integral — the paper's sweep grid)."""
    if candidates is None:
        cands = []
        g = 1
        while g <= p:
            cands.append(g)
            g *= 2
        r = math.isqrt(p)
        if r * r == p and r not in cands:
            cands.append(r)
        candidates = sorted(cands)
    best_g, best_t = None, math.inf
    for G in candidates:
        if not (1 <= G <= p):
            raise ModelError(f"candidate G={G} outside [1, {p}]")
        t = hsumma_communication_cost(n, p, G, b, alpha, beta, model)
        if t < best_t:
            best_g, best_t = G, t
    assert best_g is not None
    return best_g, best_t
