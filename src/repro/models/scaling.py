"""Strong/weak scaling analysis — the paper's motivating premise.

Section I argues that "as HPC moves towards exascale, the cost of
matrix multiplication will be dominated by communication cost".  These
closed-form curves quantify that: per processor count they report the
compute time (``2n^3/p * gamma``), the communication time of SUMMA and
of best-G HSUMMA, and the communication *fraction* of the total.

Two regimes:

* :func:`strong_scaling` — fixed problem, growing machine: compute
  shrinks like ``1/p`` while SUMMA's Van-de-Geijn latency term *grows*
  like ``sqrt(p)``, so the comm fraction inevitably crosses 1/2;
  :func:`scalability_limit` returns that crossing, and HSUMMA pushes it
  out (its latency grows only like ``p^(1/4)``) — the paper's "more
  scalable" claim as a number.
* :func:`weak_scaling` — fixed memory per rank (``n ∝ sqrt(p)``):
  compute per rank is then ``~sqrt(p)`` but balanced against
  communication that grows slower, the regime where 2-D algorithms
  live comfortably.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from repro.errors import ModelError
from repro.models.broadcast_model import BroadcastModel, VANDEGEIJN_MODEL
from repro.models.optimizer import optimal_group_count
from repro.models.summa_model import (
    summa_communication_cost,
    summa_computation_cost,
)


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One processor count on a scaling curve."""

    p: int
    n: int
    compute: float
    summa_comm: float
    hsumma_comm: float
    best_groups: int

    @property
    def summa_total(self) -> float:
        return self.compute + self.summa_comm

    @property
    def hsumma_total(self) -> float:
        return self.compute + self.hsumma_comm

    @property
    def summa_comm_fraction(self) -> float:
        return self.summa_comm / self.summa_total

    @property
    def hsumma_comm_fraction(self) -> float:
        return self.hsumma_comm / self.hsumma_total


def _point(
    n: int, p: int, b: int, alpha: float, beta: float, gamma: float,
    model: BroadcastModel,
) -> ScalingPoint:
    compute = summa_computation_cost(n, p, gamma)
    s_comm = summa_communication_cost(n, p, b, alpha, beta, model)
    g, h_comm = optimal_group_count(n, p, b, alpha, beta, model)
    return ScalingPoint(p=p, n=n, compute=compute, summa_comm=s_comm,
                        hsumma_comm=h_comm, best_groups=g)


def strong_scaling(
    n: int,
    procs: Sequence[int],
    b: int,
    alpha: float,
    beta: float,
    gamma: float,
    model: BroadcastModel = VANDEGEIJN_MODEL,
) -> list[ScalingPoint]:
    """Fixed ``n``, growing ``p`` (``beta`` per element)."""
    if not procs:
        raise ModelError("need at least one processor count")
    return [_point(n, p, b, alpha, beta, gamma, model) for p in procs]


def weak_scaling(
    n_per_rank_sq: int,
    procs: Sequence[int],
    b: int,
    alpha: float,
    beta: float,
    gamma: float,
    model: BroadcastModel = VANDEGEIJN_MODEL,
) -> list[ScalingPoint]:
    """Fixed tile memory: ``n = n_per_rank_sq * sqrt(p)`` (rounded to a
    multiple of ``b``)."""
    if n_per_rank_sq <= 0:
        raise ModelError(f"n_per_rank_sq must be >= 1, got {n_per_rank_sq}")
    out = []
    for p in procs:
        n = int(round(n_per_rank_sq * math.sqrt(p)))
        n = max(b, (n // b) * b)
        out.append(_point(n, p, b, alpha, beta, gamma, model))
    return out


def scalability_limit(
    n: int,
    b: int,
    alpha: float,
    beta: float,
    gamma: float,
    *,
    algorithm: str = "summa",
    model: BroadcastModel = VANDEGEIJN_MODEL,
    p_max: int = 1 << 30,
) -> int:
    """Smallest power-of-two ``p`` at which communication exceeds half
    the total time — the practical strong-scaling limit.

    Returns ``p_max`` if the fraction never crosses 1/2 (communication
    never dominates in range).
    """
    if algorithm not in ("summa", "hsumma"):
        raise ModelError(f"algorithm must be summa or hsumma, got {algorithm!r}")
    p = 4
    while p <= p_max:
        point = _point(n, p, b, alpha, beta, gamma, model)
        fraction = (
            point.summa_comm_fraction
            if algorithm == "summa"
            else point.hsumma_comm_fraction
        )
        if fraction > 0.5:
            return p
        p *= 2
    return p_max
