"""Closed-form HSUMMA costs — the paper's equations (3)-(5) and the
HSUMMA rows of Tables I/II.

With ``G`` groups on a square grid (group grid ``sqrt(G) x sqrt(G)``,
inner grids ``sqrt(p/G) x sqrt(p/G)``), outer block ``B`` and inner
block ``b``:

* outer (between-group) phase: ``n/B`` broadcasts of ``n*B/sqrt(p)``
  elements among ``sqrt(G)`` ranks, per direction;
* inner (within-group) phase: ``n/b`` broadcasts of ``n*b/sqrt(p)``
  elements among ``sqrt(p/G)`` ranks, per direction.

    ``T_HS = 2*(n/B)*L(sqrt(G))*alpha + 2*(n/b)*L(sqrt(p/G))*alpha
           + 2*(n^2/sqrt(p)) * (W(sqrt(G)) + W(sqrt(p/G))) * beta``

``G = 1`` and ``G = p`` recover SUMMA exactly (asserted by tests).
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.models.broadcast_model import BroadcastModel


def _check(n: float, p: float, G: float, b: float, B: float) -> None:
    if n <= 0 or p < 1 or b <= 0 or B <= 0:
        raise ModelError(
            f"need n > 0, p >= 1, b > 0, B > 0; got n={n}, p={p}, b={b}, B={B}"
        )
    if not (1 <= G <= p):
        raise ModelError(f"group count G={G} outside [1, p={p}]")
    if b > B:
        raise ModelError(f"inner block {b} must be <= outer block {B}")


def hsumma_communication_cost(
    n: float,
    p: float,
    G: float,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel,
    *,
    B: float | None = None,
    outer_model: BroadcastModel | None = None,
) -> float:
    """Equations (3)-(5) generalised to ``b != B`` and to a different
    broadcast algorithm per level (``outer_model`` defaults to
    ``model``)."""
    B = b if B is None else B
    _check(n, p, G, b, B)
    om = outer_model or model
    qG = math.sqrt(G)
    qI = math.sqrt(p / G)
    latency = 2.0 * ((n / B) * om.L(qG) + (n / b) * model.L(qI)) * alpha
    volume = n * n / math.sqrt(p)
    bandwidth = 2.0 * volume * (om.W(qG) + model.W(qI)) * beta
    return latency + bandwidth


def hsumma_latency_factor(
    n: float, p: float, G: float, b: float, model: BroadcastModel, *, B: float | None = None
) -> float:
    """Multiplier on ``alpha`` (HSUMMA rows of Tables I/II, both levels)."""
    B = b if B is None else B
    _check(n, p, G, b, B)
    return 2.0 * (
        (n / B) * model.L(math.sqrt(G)) + (n / b) * model.L(math.sqrt(p / G))
    )


def hsumma_bandwidth_factor(
    n: float, p: float, G: float, model: BroadcastModel
) -> float:
    """Multiplier on ``beta`` (HSUMMA rows of Tables I/II, both levels)."""
    if n <= 0 or p < 1 or not (1 <= G <= p):
        raise ModelError(f"bad arguments n={n}, p={p}, G={G}")
    volume = n * n / math.sqrt(p)
    return 2.0 * volume * (
        model.W(math.sqrt(G)) + model.W(math.sqrt(p / G))
    )


def hsumma_optimal_vdg_cost(
    n: float, p: float, b: float, alpha: float, beta: float
) -> float:
    """The paper's equation (12): HSUMMA cost at the optimum
    ``G = sqrt(p)`` with the Van de Geijn broadcast and ``b = B``:

    ``(log2(p) + 4*(p^(1/4) - 1)) * (n/b) * alpha
      + 8*(1 - p^(-1/4)) * (n^2/sqrt(p)) * beta``
    """
    if n <= 0 or p < 1 or b <= 0:
        raise ModelError(f"need n > 0, p >= 1, b > 0; got {n}, {p}, {b}")
    q4 = p ** 0.25
    latency = (math.log2(p) + 4.0 * (q4 - 1.0)) * (n / b) * alpha
    bandwidth = 8.0 * (1.0 - 1.0 / q4) * (n * n / math.sqrt(p)) * beta
    return latency + bandwidth
