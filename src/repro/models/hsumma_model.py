"""Closed-form HSUMMA costs — the paper's equations (3)-(5), (12) and
the HSUMMA rows of Tables I/II.

The formulas live in the unified cost registry
(:mod:`repro.costs.closed_forms`); this module re-exports them under
their historical names.  ``G = 1`` and ``G = p`` recover SUMMA exactly
(asserted by tests).
"""

from __future__ import annotations

from repro.costs.closed_forms import (
    hsumma_bandwidth_factor,
    hsumma_communication_cost,
    hsumma_latency_factor,
    hsumma_optimal_vdg_cost,
)

__all__ = [
    "hsumma_communication_cost",
    "hsumma_latency_factor",
    "hsumma_bandwidth_factor",
    "hsumma_optimal_vdg_cost",
]
