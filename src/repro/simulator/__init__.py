"""Deterministic discrete-event simulator for SPMD message-passing programs.

Rank programs are Python *generators*: every potentially-blocking
operation is expressed by yielding a request object and receiving the
result back at the resumption point.  The engine advances per-rank
virtual clocks, matches sends with receives MPI-style, charges each
transfer its network cost (Hockney model via :mod:`repro.network`), and
accounts communication vs computation time per rank — the two
quantities the paper reports separately.

Most users never touch this package directly: :mod:`repro.mpi` wraps it
in a communicator API and :func:`repro.simulator.runtime.run_spmd` is
the entry point.
"""

from repro.simulator.requests import (
    ComputeRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
    WaitRequest,
    payload_nbytes,
)
from repro.simulator.spans import (
    Span,
    SpanCloseRequest,
    SpanOpenRequest,
    iter_spans,
    phase_of,
)
from repro.simulator.tracing import RankStats, SimResult, TransferRecord
from repro.simulator.engine import Engine
from repro.simulator.runtime import run_spmd

__all__ = [
    "ComputeRequest",
    "Engine",
    "IRecvRequest",
    "ISendRequest",
    "RankStats",
    "RecvRequest",
    "RequestHandle",
    "SendRecvRequest",
    "SendRequest",
    "SimResult",
    "Span",
    "SpanCloseRequest",
    "SpanOpenRequest",
    "TransferRecord",
    "WaitRequest",
    "iter_spans",
    "payload_nbytes",
    "phase_of",
    "run_spmd",
]
