"""Result objects and optional transfer tracing for simulation runs.

The paper reports two time series per experiment: overall execution
time and communication time.  :class:`SimResult` exposes both (as the
maximum over ranks, which is what a barrier-terminated MPI timing
measures) plus per-rank detail and aggregate message statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

from repro.simulator.spans import Span, iter_spans


@dataclasses.dataclass
class RankStats:
    """Accounting for one rank.

    ``comm_time`` counts every interval the rank spent blocked in a
    communication call (send/recv/wait), including time waiting for the
    partner to arrive — exactly what wrapping MPI calls in timers
    measures on a real machine.

    The fault counters are all zero on fault-free runs:

    * ``retries`` — messages this rank retransmitted after an injected
      drop (engine-level automatic recovery).
    * ``timeouts`` — timed receives that expired on this rank.
    * ``recoveries`` — receives that ultimately succeeded after at
      least one timeout/escalation (reported by the MPI layer).
    * ``fault_delay`` — extra virtual seconds this rank's operations
      took because of injected faults (wasted wire time, backoff,
      degradation and slowdown deltas).
    """

    rank: int
    clock: float = 0.0
    comm_time: float = 0.0
    compute_time: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    retries: int = 0
    timeouts: int = 0
    recoveries: int = 0
    fault_delay: float = 0.0

    @property
    def other_time(self) -> float:
        """Clock time not attributed to comm or compute (should be ~0)."""
        return self.clock - self.comm_time - self.compute_time


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One completed point-to-point transfer (recorded when tracing).

    ``span`` is the sender's open-span path at post time (e.g.
    ``"bcast.inter/coll.bcast"``), or None when the sender had no span
    open — it is what lets per-phase rollups attribute wire traffic.
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    start: float
    finish: float
    span: str | None = None

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclasses.dataclass
class SimResult:
    """Outcome of a simulation run.

    Attributes
    ----------
    stats:
        Per-rank accounting, indexed by rank.
    return_values:
        What each rank program returned (via ``return`` in the
        generator), indexed by rank.
    trace:
        Completed transfers, when tracing was enabled; else empty.
    spans:
        Top-level spans from every rank (in recording order), when the
        rank programs emitted any; else empty.  See
        :mod:`repro.simulator.spans`.
    verdict:
        The :class:`repro.verify.Verdict` of a verified run, or None
        when the run executed without verification.
    collapse:
        The macro backend's ``collapse_report`` — ``{"mode":
        "collapsed", "probed": k, "ranks": n}`` when the symmetry fast
        path engaged, ``{"mode": "per-rank", "reason": ...}`` when it
        fell back — or None on backends without a collapse fast path.
    """

    stats: list[RankStats]
    return_values: list[object]
    trace: list[TransferRecord] = dataclasses.field(default_factory=list)
    spans: list[Span] = dataclasses.field(default_factory=list)
    verdict: object = None
    collapse: dict | None = None

    @property
    def nranks(self) -> int:
        return len(self.stats)

    @property
    def total_time(self) -> float:
        """Virtual makespan: the latest rank clock."""
        return max((s.clock for s in self.stats), default=0.0)

    @property
    def comm_time(self) -> float:
        """Communication time as the paper reports it: max over ranks."""
        return max((s.comm_time for s in self.stats), default=0.0)

    @property
    def compute_time(self) -> float:
        """Computation time: max over ranks."""
        return max((s.compute_time for s in self.stats), default=0.0)

    @property
    def mean_comm_time(self) -> float:
        if not self.stats:
            return 0.0
        return sum(s.comm_time for s in self.stats) / len(self.stats)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)

    # -- fault/recovery aggregates (all zero on fault-free runs) ----------

    @property
    def total_retries(self) -> int:
        """Messages retransmitted after injected drops, summed over ranks."""
        return sum(s.retries for s in self.stats)

    @property
    def total_timeouts(self) -> int:
        """Expired timed receives, summed over ranks."""
        return sum(s.timeouts for s in self.stats)

    @property
    def total_recoveries(self) -> int:
        """Receives that succeeded after escalation, summed over ranks."""
        return sum(s.recoveries for s in self.stats)

    @property
    def total_fault_delay(self) -> float:
        """Injected extra virtual seconds, summed over ranks."""
        return sum(s.fault_delay for s in self.stats)

    @property
    def faulted(self) -> bool:
        """True when any fault/recovery counter is nonzero."""
        return bool(self.total_retries or self.total_timeouts
                    or self.total_recoveries or self.total_fault_delay)

    def fault_summary(self) -> str:
        """One-line fault/recovery summary."""
        return (
            f"faults: {self.total_retries} retransmits, "
            f"{self.total_timeouts} timeouts, "
            f"{self.total_recoveries} recoveries, "
            f"{self.total_fault_delay:.6f}s injected delay"
        )

    def spans_for(self, rank: int) -> list[Span]:
        """Top-level spans of one rank, in open order."""
        return [s for s in self.spans if s.rank == rank]

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span (all ranks, all depths), depth-first."""
        return iter_spans(self.spans)

    @property
    def critical_rank(self) -> int:
        """The rank whose clock sets the makespan (lowest id on ties)."""
        if not self.stats:
            return 0
        return max(range(len(self.stats)), key=lambda r: self.stats[r].clock)

    def phase_breakdown(self, rank: int | None = None):
        """Per-phase rollup for ``rank`` (default: the critical rank).

        Convenience forwarding to :func:`repro.metrics.phase_rollup`.
        """
        from repro.metrics import phase_rollup

        return phase_rollup(self, rank=rank)

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.nranks} ranks: total {self.total_time:.6f}s, "
            f"comm {self.comm_time:.6f}s, compute {self.compute_time:.6f}s, "
            f"{self.total_messages} msgs / {self.total_bytes} bytes"
        )


def merge_max(results: Iterable[SimResult]) -> tuple[float, float]:
    """Max total and comm time across several runs (utility for sweeps)."""
    total = 0.0
    comm = 0.0
    for r in results:
        total = max(total, r.total_time)
        comm = max(comm, r.comm_time)
    return total, comm
