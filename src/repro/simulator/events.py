"""Minimal time-ordered event queue for the simulation engine.

A thin wrapper over :mod:`heapq` that breaks time ties with a
monotonically increasing sequence number, making the simulation fully
deterministic regardless of callback identity.

Events are stored as flat ``(time, seq, fn, args)`` records rather
than zero-argument closures: the engine pushes a bound method plus its
argument tuple, so scheduling an event allocates nothing beyond the
record itself.  This is the hot allocation path of the discrete-event
simulation — every message completion passes through here — and the
record form is both cheaper to build and cheaper to collect than a
closure capturing the same state.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

Callback = Callable[..., Any]

#: One scheduled event: ``(time, seq, fn, args)``.
Event = tuple[float, int, Callback, tuple]


class EventQueue:
    """Priority queue of ``(time, fn, args)`` events, FIFO within a time."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, fn: Callback, args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` to run at virtual ``time``."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, fn, args))

    def pop(self) -> tuple[float, Callback, tuple]:
        """Remove and return the earliest ``(time, fn, args)``."""
        time, _seq, fn, args = heapq.heappop(self._heap)
        return time, fn, args

    def pop_batch(self) -> tuple[float, list[Event]]:
        """Remove and return every event at the current earliest time.

        Returns ``(time, events)`` with the events in push (FIFO)
        order.  Events pushed *while the batch executes* — even at the
        same virtual time — are deliberately not part of it: they carry
        larger sequence numbers and surface in the next batch, which is
        exactly the order one-at-a-time :meth:`pop` calls would give.
        """
        heap = self._heap
        first = heapq.heappop(heap)
        time = first[0]
        batch = [first]
        append = batch.append
        while heap and heap[0][0] == time:
            append(heapq.heappop(heap))
        return time, batch

    def peek_time(self) -> float:
        """Time of the earliest event (queue must be non-empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
