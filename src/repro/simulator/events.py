"""Minimal time-ordered event queue for the simulation engine.

A thin wrapper over :mod:`heapq` that breaks time ties with a
monotonically increasing sequence number, making the simulation fully
deterministic regardless of callback identity.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

Callback = Callable[[], Any]


class EventQueue:
    """Priority queue of ``(time, callback)`` events, FIFO within a time."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback]] = []
        self._seq = itertools.count()

    def push(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` to run at virtual ``time``."""
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pop(self) -> tuple[float, Callback]:
        """Remove and return the earliest ``(time, callback)``."""
        time, _seq, callback = heapq.heappop(self._heap)
        return time, callback

    def peek_time(self) -> float:
        """Time of the earliest event (queue must be non-empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
