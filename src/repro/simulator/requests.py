"""Request objects yielded by rank programs to the simulation engine.

A rank program is a generator; each ``yield`` hands the engine one of
the request types below and (for blocking requests) suspends the rank
until the operation completes.  Nonblocking requests resume immediately
with a :class:`RequestHandle` that a later :class:`WaitRequest` waits on.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SimulationError


def payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of ``payload`` in bytes.

    Knows numpy arrays (``.nbytes``), objects exposing ``nbytes``
    (phantom blocks), ``bytes``/``bytearray``, ``None`` (control
    message: 0 bytes), and Python floats/ints (8 bytes).  Anything else
    must pass an explicit size — guessing pickled sizes would make the
    model silently depend on pickle internals.
    """
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        # Data volume only; keys are indexing metadata.
        return sum(payload_nbytes(v) for v in payload.values())
    raise SimulationError(
        f"cannot infer wire size of {type(payload).__name__}; pass nbytes explicitly"
    )


class _Request:
    """Base marker for everything a rank may yield."""

    __slots__ = ()


class SendRequest(_Request):
    """Blocking send: resumes when the matching receive has completed
    the transfer (rendezvous semantics, as in the paper's model where
    both endpoints are busy for ``alpha + m*beta``)."""

    __slots__ = ("dst", "tag", "payload", "nbytes")

    def __init__(self, dst: int, tag: int, payload: Any, nbytes: int | None = None):
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Send(dst={self.dst}, tag={self.tag}, nbytes={self.nbytes})"


class RecvRequest(_Request):
    """Blocking receive from ``src`` with ``tag``; resumes with the payload.

    With ``timeout`` set, the receive expires after that much virtual
    time if no matching send has been *posted* by then, resuming the
    rank with the :data:`RECV_TIMEOUT` sentinel instead of a payload
    (the fault-tolerance primitive — see ``docs/robustness.md``).  Once
    a send has matched, the transfer always completes, even past the
    deadline.
    """

    __slots__ = ("src", "tag", "timeout")

    def __init__(self, src: int, tag: int, timeout: float | None = None):
        self.src = src
        self.tag = tag
        if timeout is not None and timeout <= 0:
            raise SimulationError(f"recv timeout must be > 0, got {timeout}")
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = "" if self.timeout is None else f", timeout={self.timeout:.3g}"
        return f"Recv(src={self.src}, tag={self.tag}{extra})"


class _RecvTimeout:
    """Singleton sentinel a timed receive resumes with on expiry."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "RECV_TIMEOUT"


#: Returned by ``yield RecvRequest(..., timeout=...)`` when it expires.
RECV_TIMEOUT = _RecvTimeout()


class CounterRequest(_Request):
    """Bump a named fault counter on this rank's stats (zero time).

    The MPI layer uses it to report recoveries (a receive that
    succeeded after at least one timeout/escalation) without the
    engine having to understand the protocol.
    """

    __slots__ = ("name", "amount")

    #: Counters a rank program may bump (RankStats field names).
    ALLOWED = frozenset({"recoveries"})

    def __init__(self, name: str, amount: int = 1):
        if name not in self.ALLOWED:
            raise SimulationError(
                f"unknown counter {name!r}; allowed: {sorted(self.ALLOWED)}"
            )
        self.name = name
        self.amount = amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}+={self.amount})"


class ISendRequest(_Request):
    """Nonblocking send; resumes immediately with a :class:`RequestHandle`."""

    __slots__ = ("dst", "tag", "payload", "nbytes")

    def __init__(self, dst: int, tag: int, payload: Any, nbytes: int | None = None):
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ISend(dst={self.dst}, tag={self.tag}, nbytes={self.nbytes})"


class IRecvRequest(_Request):
    """Nonblocking receive; resumes immediately with a :class:`RequestHandle`."""

    __slots__ = ("src", "tag")

    def __init__(self, src: int, tag: int):
        self.src = src
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IRecv(src={self.src}, tag={self.tag})"


class SendRecvRequest(_Request):
    """Fused shift primitive: post a nonblocking send to ``dst`` and a
    nonblocking receive from ``src``, then block until both complete.

    Semantically identical to isend + irecv + wait(recv) + wait(send)
    — same posting order, same charged wait times — but the engine
    satisfies it in a single generator resume, which matters in ring
    loops (Cannon shifts, the Van de Geijn allgather).  Resumes with
    the received payload.
    """

    __slots__ = ("dst", "src", "sendtag", "recvtag", "payload", "nbytes")

    def __init__(self, dst: int, src: int, sendtag: int, recvtag: int,
                 payload: Any, nbytes: int | None = None):
        self.dst = dst
        self.src = src
        self.sendtag = sendtag
        self.recvtag = recvtag
        self.payload = payload
        self.nbytes = payload_nbytes(payload) if nbytes is None else int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SendRecv(dst={self.dst}, src={self.src}, "
                f"nbytes={self.nbytes})")


class WaitRequest(_Request):
    """Block until ``handle`` completes; resumes with the received
    payload (for irecv handles) or ``None`` (for isend handles)."""

    __slots__ = ("handle",)

    def __init__(self, handle: "RequestHandle"):
        if not isinstance(handle, RequestHandle):
            raise SimulationError(f"wait needs a RequestHandle, got {handle!r}")
        self.handle = handle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wait({self.handle!r})"


class CollectiveRequest(_Request):
    """Structured description of one collective call, yielded by the
    MPI layer *before* expanding into point-to-point messages.

    The discrete-event backend absorbs it (resuming the rank with
    ``None``), upon which the communicator expands the collective into
    the exact per-message schedule — bit-identical to the pre-request
    behaviour.  The macro backend instead satisfies the request
    directly from a cost oracle and resumes every participant with a
    :class:`CollectiveReply`, skipping the expansion entirely.

    Attributes
    ----------
    op:
        Operation name: "bcast", "scatter", "gather", "allgather",
        "reduce", "allreduce" or "barrier".
    algorithm:
        Resolved algorithm registry name for ``op``.
    cid:
        Hierarchical context id of the communicator; identical across
        ranks for the same communicator (SPMD discipline).
    seq:
        Per-communicator collective sequence number; ``(cid, seq)`` is
        the cross-rank matching key.
    participants:
        World ranks of the communicator, in communicator-rank order.
    me:
        This rank's communicator rank (index into ``participants``).
    root:
        Communicator rank of the root for rooted operations, else None.
    payload:
        This rank's contribution (op-dependent: the message on a bcast
        root, the parts list on a scatter root, the local contribution
        for gather/allgather/reduce/allreduce, None otherwise).
    segments:
        Segment count for segmented algorithms (pipelined broadcast),
        or None.
    """

    __slots__ = ("op", "algorithm", "cid", "seq", "participants", "me",
                 "root", "payload", "nbytes", "segments")

    def __init__(
        self,
        op: str,
        algorithm: str,
        cid: tuple,
        seq: int,
        participants: tuple,
        me: int,
        root: int | None,
        payload: Any,
        segments: int | None = None,
    ):
        self.op = op
        self.algorithm = algorithm
        self.cid = cid
        self.seq = seq
        self.participants = participants
        self.me = me
        self.root = root
        self.payload = payload
        self.nbytes = payload_nbytes(payload)
        self.segments = segments

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        root = "" if self.root is None else f", root={self.root}"
        return (f"Collective({self.op}/{self.algorithm}, "
                f"p={len(self.participants)}{root}, cid={self.cid}, "
                f"seq={self.seq})")


class CollectiveReply:
    """Macro-backend answer to a :class:`CollectiveRequest`.

    Wrapping the value distinguishes "the collective was satisfied and
    its result is None" (e.g. a reduce on a non-root rank) from "expand
    the collective yourself" (the plain ``None`` the discrete-event
    backend resumes with).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CollectiveReply({self.value!r})"


class ComputeRequest(_Request):
    """Advance the rank's clock by ``seconds`` of local computation."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise SimulationError(f"compute time must be >= 0, got {seconds}")
        self.seconds = float(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Compute({self.seconds:.3g}s)"


class RequestHandle:
    """Completion token for a nonblocking operation.

    Attributes
    ----------
    done:
        True once the transfer has finished.
    finish_time:
        Virtual completion time (valid once ``done``).
    payload:
        Delivered object for irecv handles (valid once ``done``).
    """

    __slots__ = ("rank", "kind", "done", "finish_time", "payload", "_waiter",
                 "_parked_state", "_pair", "_internal")

    def __init__(self, rank: int, kind: str):
        self.rank = rank
        self.kind = kind  # "send" | "recv"
        self.done = False
        self.finish_time = 0.0
        self.payload: Any = None
        self._waiter = False  # rank parked on this handle?
        self._parked_state: Any = None  # engine-internal: the parked rank
        self._pair: Any = None  # second handle of a parked pair wait
        self._internal = False  # engine-owned (never seen by a program)?

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"Handle({self.kind}, rank={self.rank}, {state})"
