"""Friendly entry point: run an SPMD program over a simulated platform.

``run_spmd`` builds one :class:`~repro.mpi.MpiContext` per rank, calls
the user's program factory for each, and drives the resulting
generators through the :class:`~repro.simulator.engine.Engine`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams, Network
from repro.simulator.tracing import SimResult

#: Generic commodity-cluster parameters used when no platform is given:
#: 10 microseconds latency, 1 GB/s bandwidth.
DEFAULT_PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)

Program = Callable[..., Generator[Any, Any, Any]]


def run_spmd(
    program: Program,
    nranks: int,
    *,
    network: Network | None = None,
    params: HockneyParams | None = None,
    options: Any = None,
    gamma: float = 0.0,
    contention: bool = False,
    collect_trace: bool = False,
    eager_threshold: int = 0,
    trace: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> SimResult:
    """Run ``program`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    program:
        Callable invoked as ``program(ctx)`` for each rank, returning
        that rank's generator.  ``ctx`` is an
        :class:`~repro.mpi.MpiContext` exposing ``ctx.world``.
    nranks:
        Number of ranks to spawn.
    network:
        Cost model; defaults to a homogeneous network with ``params``.
    params:
        Hockney parameters for the default network (ignored when
        ``network`` is given); defaults to :data:`DEFAULT_PARAMS`.
    options:
        :class:`~repro.mpi.CollectiveOptions` defaults for all ranks.
    gamma:
        Seconds per flop for ``ctx.compute_flops``.
    contention, collect_trace, eager_threshold:
        Passed to the :class:`~repro.simulator.engine.Engine`.
    trace:
        Full observability mode: rank contexts emit spans
        (:mod:`repro.simulator.spans`) and the engine records every
        transfer, populating ``SimResult.spans`` and
        ``SimResult.trace``.  Timings are bit-identical either way.
    backend:
        Execution backend: ``None``/``"des"`` for the full discrete
        event simulation, ``"macro"`` for the collective-granularity
        macro backend, or a prebuilt engine instance (see
        :mod:`repro.simulator.backends`).  ``"predictor"`` is not
        usable here — it has no per-rank programs to run; reach it
        through the algorithm runners (:func:`repro.core.api.multiply`
        with ``backend="predictor"``).
    faults:
        Fault injection: a :class:`~repro.faults.FaultSchedule` or a
        spec string for :func:`repro.faults.parse_fault_spec` (DES
        backend only; see ``docs/robustness.md``).
    verify:
        Communication-correctness verification: ``True`` for the
        defaults, a :class:`~repro.verify.VerifyOptions`, or a dict of
        its fields.  The verdict lands on ``SimResult.verdict`` (see
        ``docs/verification.md``).  ``None`` (default) disables the
        verifier entirely; the run is then bit-identical to older
        releases.

    Returns
    -------
    SimResult
        Per-rank stats, rank return values, optional trace and spans.
    """
    from repro.faults.spec import coerce_faults
    from repro.mpi.comm import make_contexts
    from repro.verify.session import run_verified

    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        return [
            program(ctx)
            for ctx in make_contexts(
                nranks, options=options, gamma=gamma, trace=trace,
                retry=faults.retry if faults is not None else None)
        ]

    return run_verified(
        make_programs,
        verify=verify,
        backend=backend,
        network=network,
        contention=contention,
        collect_trace=collect_trace or trace,
        eager_threshold=eager_threshold,
        faults=faults,
        meta={"program": getattr(program, "__name__", "spmd"),
              "ranks": nranks},
    )
