"""Discrete-event engine executing SPMD rank programs over a network model.

Semantics
---------
* Rank programs are generators; the engine resumes them with the result
  of each yielded request.  Python control flow between yields costs
  zero virtual time — all cost comes from explicit
  :class:`~repro.simulator.requests.ComputeRequest`s and from message
  transfers.
* Point-to-point transfers are *rendezvous*: a send and its matching
  receive synchronise at ``max(post times)`` and both complete after
  the network's transfer time — the Hockney cost ``alpha + m*beta`` the
  paper builds on, with both endpoints occupied for the duration.
* Matching is MPI-like: FIFO per ``(src, dst, tag)`` channel; no
  wildcards (algorithms in this library always know their peers).
* With ``contention=True`` the engine serialises transfers that claim
  the same physical link (per :meth:`repro.network.Network.links`),
  which is how torus congestion effects enter.

The engine is single-threaded and fully deterministic: equal-time
events run in scheduling order.

Hot path
--------
This module is the bottom of every figure and test in the repository,
so its inner loop is written for speed without changing a single
observable bit (see ``docs/performance.md``):

* Requests dispatch through a table keyed on the request's class
  instead of an isinstance ladder.
* Events are ``(method, args)`` records in the
  :class:`~repro.simulator.events.EventQueue` — no closure is
  allocated per event.
* Per-``(src, dst, tag)`` match state lives in interned
  :class:`_Channel` objects (one dict probe per post, queues allocated
  once, the fault layer's ordinal inline).
* :class:`_Endpoint` objects are pooled across transfers.
* Fault-free transfer times are memoised on each channel per message
  size — networks are pure cost models, so the cached float is the
  exact float the network would return.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Generator, Iterable

from repro.errors import DeadlockError, RankFailure, SimulationError
from repro.faults.schedule import chan_digest
from repro.network.model import Network
from repro.simulator.events import EventQueue
from repro.simulator.requests import (
    RECV_TIMEOUT,
    CollectiveRequest,
    ComputeRequest,
    CounterRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
    WaitRequest,
)
from repro.simulator.spans import SpanCloseRequest, SpanOpenRequest, SpanRecorder
from repro.simulator.tracing import RankStats, SimResult, TransferRecord

RankProgram = Generator[Any, Any, Any]

#: Returned by request handlers when the rank parked; never a payload.
_PARKED = object()

#: Marks a handle as the *last* leg of a pair wait: its completion
#: resumes the parked rank with the stashed ``resume_value`` (the first
#: leg's payload) instead of its own.
_PAIR_FINAL = object()

#: Upper bound on pooled endpoints (a pool can never grow past the
#: peak number of simultaneously pending operations anyway; the cap is
#: a belt-and-braces guard against pathological programs).
_EP_POOL_MAX = 4096

#: Cap on recycled fused-sendrecv handles (two live per parked rank, so
#: even a 2048-rank run stays within the cap).
_RH_POOL_MAX = 4096


class _Endpoint:
    """One side of a pending point-to-point operation."""

    __slots__ = ("rank", "post_time", "payload", "nbytes", "handle",
                 "eager_arrival", "span", "matched", "timed")

    def __init__(
        self,
        rank: int,
        post_time: float,
        payload: Any = None,
        nbytes: int = 0,
        handle: RequestHandle | None = None,
        span: str | None = None,
    ):
        self.rank = rank
        self.post_time = post_time
        self.payload = payload
        self.nbytes = nbytes
        self.handle = handle  # None => blocking operation
        self.eager_arrival: float | None = None  # set for in-flight eager sends
        self.span = span  # sender's open-span path at post time
        self.matched = False  # set when paired; gates timed-recv expiry
        self.timed = False  # a pending expiry event references this ep


class _Channel:
    """Interned match state of one ``(src, dst, tag)`` channel.

    Holds the FIFO send/recv queues plus the fault layer's per-channel
    message ordinal, so the hot matching path performs a single dict
    probe and never allocates queues it immediately throws away.
    """

    __slots__ = ("src", "dst", "tag", "sends", "recvs", "ordinal", "tt")

    def __init__(self, src: int, dst: int, tag: Any):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.sends: deque[_Endpoint] = deque()
        self.recvs: deque[_Endpoint] = deque()
        self.ordinal = 0  # messages already charged to the fault layer
        #: nbytes -> fault-free wire time; networks are pure cost
        #: functions, so the cached float is exactly what the model
        #: would return (bulk-synchronous traffic repeats a handful of
        #: message sizes per channel thousands of times).
        self.tt: dict[int, float] = {}


class _RankState:
    __slots__ = ("gen", "stats", "blocked_on", "block_start", "finished",
                 "retval", "resume_value")

    def __init__(self, rank: int, gen: RankProgram):
        self.gen = gen
        self.stats = RankStats(rank=rank)
        self.blocked_on: Any = None
        self.block_start = 0.0
        self.finished = False
        self.retval: Any = None
        self.resume_value: Any = None  # stashed for _PAIR_FINAL wake-ups


def _pending_op_info(op: Any) -> dict:
    """Machine-readable description of a blocked rank's pending
    operation, for :class:`~repro.errors.DeadlockError`'s structured
    ``blocked`` payload.  ``peer`` is a world rank when the operation
    names one; tags are the wire tags the engine matches on."""
    info: dict[str, Any] = {"repr": repr(op)}
    cls = op.__class__
    if cls is RecvRequest:
        info.update(kind="recv", peer=op.src, tag=op.tag)
    elif cls is SendRequest:
        info.update(kind="send", peer=op.dst, tag=op.tag)
    elif cls is RequestHandle:
        info.update(kind=f"wait-{op.kind}", peer=None, tag=None)
    elif cls is WaitRequest:
        info.update(kind=f"wait-{op.handle.kind}", peer=None, tag=None)
    elif cls is tuple:
        info.update(kind="wait-pair", peer=None, tag=None)
    elif cls is CollectiveRequest:
        info.update(kind="collective", op=op.op, cid=op.cid, seq=op.seq,
                    participants=op.participants)
    elif cls is SendRecvRequest:
        info.update(kind="sendrecv", peer=op.src, tag=op.recvtag)
    else:
        info.update(kind="unknown")
    return info


class Engine:
    """Run a set of rank programs to completion over ``network``.

    Parameters
    ----------
    network:
        Cost model; must cover at least as many ranks as programs.
    contention:
        Serialise transfers sharing physical links. Off by default — the
        paper's analysis neglects congestion, and the homogeneous model
        has no shared links anyway.
    collect_trace:
        Record every completed transfer in the result (memory-heavy for
        large runs; meant for tests and debugging).
    max_events:
        Hard cap on processed events, guarding against runaway programs.
    eager_threshold:
        Messages of at most this many bytes use the MPI *eager*
        protocol: the send completes after injecting the message,
        without waiting for the matching receive (which later completes
        at ``max(recv post, arrival)``).  The default 0 keeps the pure
        rendezvous semantics the paper's model assumes; real MPI
        implementations eagerly buffer small messages, which removes
        the send-send deadlocks rendezvous would have.
    faults:
        Optional :class:`repro.faults.FaultSchedule` injecting link
        degradation, message drops (with automatic retransmission),
        rank slowdowns and fail-stop deaths.  ``None`` (and an empty
        schedule) leaves every code path — including float operation
        order — bit-identical to the fault-free engine.
    """

    #: Advance compute requests inline instead of via a heap event.
    #: Times are identical either way; the discovery *order* of
    #: transfers (hence the pinned trace artifacts) is only guaranteed
    #: stable with the event, so the base DES keeps it off.
    _inline_compute = False

    def __init__(
        self,
        network: Network,
        *,
        contention: bool = False,
        collect_trace: bool = False,
        max_events: int = 200_000_000,
        eager_threshold: int = 0,
        faults: Any = None,
    ) -> None:
        self.network = network
        self.contention = contention
        self.collect_trace = collect_trace
        self.max_events = max_events
        if eager_threshold < 0:
            raise SimulationError(
                f"eager_threshold must be >= 0, got {eager_threshold}"
            )
        self.eager_threshold = eager_threshold
        if faults is not None and getattr(faults, "empty", False):
            faults = None  # empty schedule: take the fault-free fast path
        self._faults = faults
        # Request class -> bound handler; the unknown-subclass path
        # resolves through _resolve_handler and caches here.
        self._dispatch = {
            CollectiveRequest: self._handle_collective,
            ComputeRequest: self._handle_compute,
            SendRequest: self._handle_send,
            RecvRequest: self._handle_recv,
            SpanOpenRequest: self._handle_span_open,
            SpanCloseRequest: self._handle_span_close,
            CounterRequest: self._handle_counter,
            ISendRequest: self._handle_isend,
            IRecvRequest: self._handle_irecv,
            WaitRequest: self._handle_wait,
            # A bare handle yielded as a request waits on itself — the
            # allocation-free form of WaitRequest the MPI layer's hot
            # paths use.
            RequestHandle: self._handle_wait_handle,
            # A 2-tuple batches two operations into one resume: a pair
            # of nonblocking requests posts both, a pair of handles
            # waits on both in tuple order (see _handle_tuple).
            tuple: self._handle_tuple,
            # The fused shift primitive: both posts plus both waits in
            # one resume (see _handle_sendrecv).
            SendRecvRequest: self._handle_sendrecv,
        }

    # -- public API --------------------------------------------------------

    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        """Execute ``programs`` (one generator per rank) and return stats."""
        gens = list(programs)
        if not gens:
            raise SimulationError("no rank programs supplied")
        if len(gens) > self.network.nranks:
            raise SimulationError(
                f"{len(gens)} programs but network only models "
                f"{self.network.nranks} ranks"
            )
        self._ranks = [_RankState(i, g) for i, g in enumerate(gens)]
        self._events = EventQueue()
        # tag -> (src * nranks + dst) -> channel: the int inner key is
        # cheap to hash and spares a 3-tuple allocation per post.
        self._channels: dict[Any, dict[int, _Channel]] = {}
        self._rankmul = self.network.nranks
        self._link_free: dict[Any, float] = {}
        self._links_cache: dict[tuple[int, int], tuple] = {}
        self._ep_pool: list[_Endpoint] = []
        # Handles created by the fused sendrecv path never escape the
        # engine, so they are recycled once their pair wait resumes.
        self._rh_pool: list[RequestHandle] = []
        # No contention, no tracing, no faults: every transfer cost is
        # a memoised per-channel lookup — the branch-free fast path.
        self._fast = (not self.contention and not self.collect_trace
                      and self._faults is None)
        self._trace: list[TransferRecord] = []
        self._spans = SpanRecorder(len(gens))
        self._nevents = 0
        # Per-tag channel digests for deterministic drop decisions
        # (see repro.faults); the per-channel ordinal lives on _Channel.
        self._chan_digests: dict[Any, int] = {}

        if self._faults is not None:
            # Deaths are pushed before the initial resumes so that at
            # equal virtual times a fail-stop preempts completions —
            # a deterministic, documented tie-break.  Deaths aimed at
            # ranks not in this run are ignored (a schedule may be
            # reused across runs of different sizes).
            for death in self._faults.death_events():
                if death.rank < len(self._ranks):
                    self._events.push(death.time, self._rank_death, (death,))

        for state in self._ranks:
            self._resume(state, None, state.stats.clock)

        events = self._events
        max_events = self.max_events
        while events:
            _time, batch = events.pop_batch()
            self._nevents += len(batch)
            if self._nevents > max_events:
                raise SimulationError(
                    f"event cap of {max_events} exceeded; "
                    "likely a livelock in a rank program"
                )
            for _t, _seq, fn, args in batch:
                fn(*args)

        blocked = [
            (s.stats.rank, s.blocked_on)
            for s in self._ranks
            if not s.finished
        ]
        if blocked:
            detail = ", ".join(f"rank {r} on {op!r}" for r, op in blocked[:8])
            more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
            raise DeadlockError(
                f"simulation deadlocked: {detail}{more}",
                blocked={r: _pending_op_info(op) for r, op in blocked},
            )

        for state in self._ranks:
            self._spans.finish(state.stats.rank, state.stats.clock)

        return SimResult(
            stats=[s.stats for s in self._ranks],
            return_values=[s.retval for s in self._ranks],
            trace=self._trace,
            spans=self._spans.roots,
        )

    # -- generator stepping -------------------------------------------------

    def _resume(self, state: _RankState, value: Any, time: float) -> None:
        """Resume ``state`` at virtual ``time`` with ``value``, then keep
        stepping it through zero-time requests until it blocks or ends."""
        stats = state.stats
        if time > stats.clock:
            stats.clock = time
        # Handlers that park set blocked_on again; while the rank is
        # actively stepping it is by definition not blocked, so one
        # clear per resume replaces one per request.
        state.blocked_on = None
        send = state.gen.send
        dispatch = self._dispatch
        while True:
            try:
                request = send(value)
            except StopIteration as stop:
                state.finished = True
                state.retval = stop.value
                return
            try:
                handler = dispatch[request.__class__]
            except KeyError:
                handler = self._resolve_handler(state, request)
            value = handler(state, request, stats.clock)
            if value is _PARKED:
                return

    def _resolve_handler(self, state: _RankState, request: Any):
        """Slow path: map an unseen request subclass to its handler."""
        for cls, handler in list(self._dispatch.items()):
            if isinstance(request, cls):
                self._dispatch[request.__class__] = handler
                return handler
        raise SimulationError(
            f"rank {state.stats.rank} yielded unknown request {request!r}"
        )

    # -- request handlers ---------------------------------------------------
    #
    # Each handler returns the value to feed back into the generator,
    # or the _PARKED sentinel when the rank blocked (the engine then
    # returns to the event loop; a later event resumes the rank).

    def _handle_collective(self, state: _RankState,
                           request: CollectiveRequest, now: float) -> Any:
        # Zero virtual time to *announce*: the request describes the
        # collective about to run.  The base engine absorbs it (resuming
        # with None), so the communicator expands it into the exact
        # point-to-point schedule — the pre-request behaviour,
        # bit-identically.  Subclasses (the macro backend) may instead
        # satisfy it from a cost oracle by returning True from
        # _collective.
        if self._collective(state, request, now):
            return _PARKED
        return None

    def _handle_compute(self, state: _RankState, request: ComputeRequest,
                        now: float) -> Any:
        stats = state.stats
        seconds = request.seconds
        if self._faults is not None:
            factor = self._faults.compute_factor(stats.rank, now)
            if factor != 1.0:
                slowed = seconds * factor
                stats.fault_delay += slowed - seconds
                seconds = slowed
        stats.compute_time += seconds
        if self._inline_compute:
            # Purely local: advance this rank's clock without a wake-up
            # event.  Subclasses with no ordering-sensitive observers
            # (the macro backend) opt in; the base engine keeps the
            # event so the transfer trace's discovery order — a pinned
            # artifact — is unchanged.
            stats.clock = now + seconds
            return None
        state.blocked_on = request
        finish = now + seconds
        self._events.push(finish, self._resume, (state, None, finish))
        return _PARKED

    # The four point-to-point handlers inline endpoint acquisition,
    # channel lookup and FIFO matching (the bodies _acquire_ep /
    # _channel / _post_send / _post_recv used to share): each is called
    # hundreds of thousands of times per run and the call overhead was
    # measurable.  All four follow the same shape — pool an endpoint,
    # probe the channel, match against the opposite queue or park.
    #
    # Pool invariant (established at every release site): a pooled
    # endpoint has payload=None, handle=None, span=None,
    # eager_arrival=None, matched=False, timed=False.  Only rank,
    # post_time and nbytes are stale, so acquisition writes just the
    # fields the operation needs.

    def _handle_send(self, state: _RankState, request: SendRequest,
                     now: float) -> Any:
        rank = state.stats.rank
        dst = request.dst
        if dst == rank:
            raise SimulationError(
                f"rank {rank}: blocking send to self deadlocks"
            )
        state.blocked_on = request
        state.block_start = now
        spans = self._spans
        span = spans.current_path(rank) if spans.nopen else None
        pool = self._ep_pool
        if pool:
            ep = pool.pop()
            ep.rank = rank
            ep.post_time = now
            ep.payload = request.payload
            ep.nbytes = request.nbytes
            ep.span = span
        else:
            ep = _Endpoint(rank, now, request.payload, request.nbytes,
                           None, span)
        tag = request.tag
        try:
            chan = self._channels[tag][rank * self._rankmul + dst]
        except KeyError:
            chan = self._make_channel(rank, dst, tag)
        queue = chan.recvs
        if queue:
            recv = queue.popleft()
            recv.matched = True
            self._start_transfer(chan, ep, recv)
            return _PARKED
        if ep.nbytes <= self.eager_threshold:
            self._eager_send(chan, ep)
        chan.sends.append(ep)
        return _PARKED

    def _handle_recv(self, state: _RankState, request: RecvRequest,
                     now: float) -> Any:
        rank = state.stats.rank
        state.blocked_on = request
        state.block_start = now
        pool = self._ep_pool
        if pool:
            ep = pool.pop()
            ep.rank = rank
            ep.post_time = now
        else:
            ep = _Endpoint(rank, now)
        tag = request.tag
        src = request.src
        try:
            chan = self._channels[tag][src * self._rankmul + rank]
        except KeyError:
            chan = self._make_channel(src, rank, tag)
        queue = chan.sends
        if queue:
            ep.matched = True
            self._start_transfer(chan, queue.popleft(), ep)
            return _PARKED
        chan.recvs.append(ep)
        if request.timeout is not None:
            # The deadline bounds *matching*, not completion: once a
            # send pairs up, the transfer always runs to the end (as on
            # a real wire).
            ep.timed = True
            deadline = now + request.timeout
            self._events.push(
                deadline, self._recv_timeout, (state, ep, chan, deadline)
            )
        return _PARKED

    def _handle_span_open(self, state: _RankState, request: SpanOpenRequest,
                          now: float) -> Any:
        # Zero virtual time: absorbed inline, no event scheduled, so
        # traced and untraced runs are bit-identical.
        self._spans.open(state.stats.rank, request.name, request.attrs, now)
        return None

    def _handle_span_close(self, state: _RankState, request: SpanCloseRequest,
                           now: float) -> Any:
        self._spans.close(state.stats.rank, request.attrs, now)
        return None

    def _handle_counter(self, state: _RankState, request: CounterRequest,
                        now: float) -> Any:
        # Zero virtual time: the MPI layer reporting a recovery.
        stats = state.stats
        setattr(stats, request.name,
                getattr(stats, request.name) + request.amount)
        return None

    def _handle_isend(self, state: _RankState, request: ISendRequest,
                      now: float) -> Any:
        rank = state.stats.rank
        dst = request.dst
        handle = RequestHandle(rank, "send")
        spans = self._spans
        span = spans.current_path(rank) if spans.nopen else None
        pool = self._ep_pool
        if pool:
            ep = pool.pop()
            ep.rank = rank
            ep.post_time = now
            ep.payload = request.payload
            ep.nbytes = request.nbytes
            ep.handle = handle
            ep.span = span
        else:
            ep = _Endpoint(rank, now, request.payload, request.nbytes,
                           handle, span)
        tag = request.tag
        try:
            chan = self._channels[tag][rank * self._rankmul + dst]
        except KeyError:
            chan = self._make_channel(rank, dst, tag)
        queue = chan.recvs
        if queue:
            recv = queue.popleft()
            recv.matched = True
            self._start_transfer(chan, ep, recv)
            return handle
        if ep.nbytes <= self.eager_threshold and rank != dst:
            self._eager_send(chan, ep)
        chan.sends.append(ep)
        return handle

    def _handle_irecv(self, state: _RankState, request: IRecvRequest,
                      now: float) -> Any:
        rank = state.stats.rank
        handle = RequestHandle(rank, "recv")
        pool = self._ep_pool
        if pool:
            ep = pool.pop()
            ep.rank = rank
            ep.post_time = now
            ep.handle = handle
        else:
            ep = _Endpoint(rank, now, handle=handle)
        tag = request.tag
        src = request.src
        try:
            chan = self._channels[tag][src * self._rankmul + rank]
        except KeyError:
            chan = self._make_channel(src, rank, tag)
        queue = chan.sends
        if queue:
            ep.matched = True
            self._start_transfer(chan, queue.popleft(), ep)
        else:
            chan.recvs.append(ep)
        return handle

    def _handle_wait(self, state: _RankState, request: WaitRequest,
                     now: float) -> Any:
        value = self._handle_wait_handle(state, request.handle, now)
        if value is _PARKED:
            state.blocked_on = request  # park on the request, not the handle
        return value

    def _handle_wait_handle(self, state: _RankState, handle: RequestHandle,
                            now: float) -> Any:
        stats = state.stats
        if handle.rank != stats.rank:
            raise SimulationError(
                f"rank {stats.rank} waiting on rank {handle.rank}'s handle"
            )
        if handle.done:
            wait = handle.finish_time - now
            if wait > 0.0:
                stats.comm_time += wait
                stats.clock = now + wait
            return handle.payload
        state.blocked_on = handle
        state.block_start = now
        handle._waiter = True
        handle._parked_state = state
        return _PARKED

    def _handle_tuple(self, state: _RankState, batch: tuple, now: float) -> Any:
        """Batched yield: two operations in one generator resume.

        ``(ISendRequest, IRecvRequest)`` posts both nonblocking
        operations and resumes with ``(handle, handle)``;
        ``(handle, handle)`` waits on both **in tuple order** with
        exactly the float operations of two sequential waits (see
        :meth:`_pair_continue`).  Each saves one full trip through the
        generator stack, which on deeply delegated collective loops
        (``summa -> bcast -> ring``) is the single largest remaining
        hot-path cost.
        """
        if len(batch) != 2:
            raise SimulationError(
                f"rank {state.stats.rank} yielded a {len(batch)}-tuple; "
                "batched yields are pairs"
            )
        a, b = batch
        if a.__class__ is RequestHandle and b.__class__ is RequestHandle:
            return self._handle_wait_pair(state, batch, now)
        dispatch = self._dispatch
        ha = dispatch.get(a.__class__) or self._resolve_handler(state, a)
        va = ha(state, a, now)
        hb = dispatch.get(b.__class__) or self._resolve_handler(state, b)
        vb = hb(state, b, now)
        if va is _PARKED or vb is _PARKED:
            raise SimulationError(
                f"rank {state.stats.rank} batched a blocking request; "
                "only nonblocking posts and completed waits may be batched"
            )
        return (va, vb)

    def _handle_wait_pair(self, state: _RankState, pair: tuple,
                          now: float) -> Any:
        """Wait on two handles in tuple order without an intermediate
        resume.  Resumes with the *first* handle's payload.
        Bit-identical to two sequential waits: the wait time of each
        handle is charged in tuple order with the same float
        operations."""
        first, second = pair
        stats = state.stats
        if first.rank != stats.rank or second.rank != stats.rank:
            raise SimulationError(
                f"rank {stats.rank} waiting on another rank's handle"
            )
        if first.done:
            wait = first.finish_time - now
            if wait > 0.0:
                stats.comm_time += wait
                stats.clock = now + wait
            now = stats.clock
            if second.done:
                wait = second.finish_time - now
                if wait > 0.0:
                    stats.comm_time += wait
                    stats.clock = now + wait
                return first.payload
            # First already over: only the second leg remains.
            state.blocked_on = second
            state.block_start = now
            state.resume_value = first.payload
            second._waiter = True
            second._parked_state = state
            second._pair = _PAIR_FINAL
            return _PARKED
        state.blocked_on = pair
        state.block_start = now
        first._waiter = True
        first._parked_state = state
        first._pair = second
        return _PARKED

    def _pair_continue(self, parked: _RankState, second: RequestHandle,
                       now: float, value: Any) -> None:
        """Second half of a parked pair wait.  The first handle just
        completed (its wait already charged by the caller, its payload
        passed as ``value``); mirror the float operations of resuming
        the rank and immediately waiting on ``second`` — without
        actually resuming the generator."""
        stats = parked.stats
        if now > stats.clock:
            stats.clock = now
        if second.done:
            wait = second.finish_time - stats.clock
            if wait > 0.0:
                stats.comm_time += wait
                stats.clock += wait
            self._resume(parked, value, stats.clock)
            if second._internal:
                rpool = self._rh_pool
                if len(rpool) < _RH_POOL_MAX:
                    second.done = False
                    second.payload = None
                    second._parked_state = None
                    rpool.append(second)
            return
        parked.blocked_on = second
        parked.block_start = stats.clock
        parked.resume_value = value
        second._waiter = True
        second._parked_state = parked
        second._pair = _PAIR_FINAL

    def _handle_sendrecv(self, state: _RankState, request: SendRecvRequest,
                         now: float) -> Any:
        """Post the send, post the receive, wait on both (receive
        first) — the bodies of _handle_isend, _handle_irecv and
        _handle_wait_pair fused into one resume.  Completions arrive
        via events, so neither handle can be done here: always park on
        the receive with the send as its pair.

        This is the hottest handler of any run built on ring
        collectives, so the fault-free/untraced transfer start is
        inlined (``self._fast``) and both handles come from a recycle
        pool — they never escape the engine, so their lifetime ends
        with the pair wait (see the ``_internal`` recycling in the
        completion callbacks)."""
        stats = state.stats
        rank = stats.rank
        spans = self._spans
        span = spans.current_path(rank) if spans.nopen else None
        pool = self._ep_pool
        rpool = self._rh_pool
        channels = self._channels
        rankmul = self._rankmul
        fast = self._fast
        # Event scheduling is inlined (EventQueue.push semantics): this
        # handler runs once per ring round on every rank, so even the
        # bound-method call is measurable.
        events = self._events
        heap = events._heap
        # -- send leg ---------------------------------------------------
        if rpool:
            shandle = rpool.pop()
            shandle.rank = rank
            shandle.kind = "send"
        else:
            shandle = RequestHandle(rank, "send")
            shandle._internal = True
        nbytes = request.nbytes
        dst = request.dst
        tag = request.sendtag
        try:
            chan = channels[tag][rank * rankmul + dst]
        except KeyError:
            chan = self._make_channel(rank, dst, tag)
        queue = chan.recvs
        if queue and fast:
            # Matched immediately on the fault-free path: no send
            # endpoint at all — the completion callback works from the
            # bare handle.  The queued receive was posted at or before
            # ``now``, so the transfer starts now.
            recv = queue.popleft()
            recv.matched = True
            try:
                finish = now + chan.tt[nbytes]
            except KeyError:
                wire = chan.tt[nbytes] = self.network.transfer_time(
                    rank, dst, nbytes
                )
                finish = now + wire
            stats.messages_sent += 1
            stats.bytes_sent += nbytes
            seq = events._seq
            events._seq = seq + 1
            heappush(heap, (finish, seq, self._fused_send_done,
                            (shandle, recv, request.payload, finish)))
        else:
            if pool:
                sep = pool.pop()
                sep.rank = rank
                sep.post_time = now
                sep.payload = request.payload
                sep.nbytes = nbytes
                sep.handle = shandle
                sep.span = span
            else:
                sep = _Endpoint(rank, now, request.payload, nbytes,
                                shandle, span)
            if queue:
                recv = queue.popleft()
                recv.matched = True
                self._start_transfer(chan, sep, recv)
            else:
                if nbytes <= self.eager_threshold and rank != dst:
                    self._eager_send(chan, sep)
                chan.sends.append(sep)
        # -- receive leg ------------------------------------------------
        if rpool:
            rhandle = rpool.pop()
            rhandle.rank = rank
            rhandle.kind = "recv"
        else:
            rhandle = RequestHandle(rank, "recv")
            rhandle._internal = True
        src = request.src
        tag = request.recvtag
        try:
            chan = channels[tag][src * rankmul + rank]
        except KeyError:
            chan = self._make_channel(src, rank, tag)
        queue = chan.sends
        if queue:
            send = queue.popleft()
            if fast and send.eager_arrival is None:
                # Matched rendezvous on the fault-free path: the bare
                # handle stands in for the receive endpoint.
                snb = send.nbytes
                try:
                    finish = now + chan.tt[snb]
                except KeyError:
                    wire = chan.tt[snb] = self.network.transfer_time(
                        src, rank, snb
                    )
                    finish = now + wire
                sender_stats = self._ranks[src].stats
                sender_stats.messages_sent += 1
                sender_stats.bytes_sent += snb
                seq = events._seq
                events._seq = seq + 1
                heappush(heap, (finish, seq, self._fused_recv_done,
                                (send, rhandle, finish)))
            else:
                if pool:
                    rep = pool.pop()
                    rep.rank = rank
                    rep.post_time = now
                    rep.handle = rhandle
                else:
                    rep = _Endpoint(rank, now, handle=rhandle)
                rep.matched = True
                self._start_transfer(chan, send, rep)
        else:
            if pool:
                rep = pool.pop()
                rep.rank = rank
                rep.post_time = now
                rep.handle = rhandle
            else:
                rep = _Endpoint(rank, now, handle=rhandle)
            chan.recvs.append(rep)
        # -- wait (recv, send) ------------------------------------------
        state.blocked_on = rhandle
        state.block_start = now
        rhandle._waiter = True
        rhandle._parked_state = state
        rhandle._pair = shandle
        return _PARKED

    def _collective(self, state: _RankState, request: CollectiveRequest,
                    now: float) -> bool:
        """Hook: satisfy ``request`` directly instead of expanding it.

        Return ``True`` after parking the rank (the subclass then owns
        resumption, and must resume with a
        :class:`~repro.simulator.requests.CollectiveReply`); return
        ``False`` to absorb the announcement so the communicator
        expands the collective into point-to-point messages.
        """
        return False

    # -- matching -----------------------------------------------------------

    def _make_channel(self, src: int, dst: int, tag: Any) -> _Channel:
        """Slow path of the channel probe: first post on the channel
        (or the tag)."""
        by_tag = self._channels.get(tag)
        if by_tag is None:
            by_tag = self._channels[tag] = {}
        key = src * self._rankmul + dst
        chan = by_tag.get(key)
        if chan is None:
            chan = by_tag[key] = _Channel(src, dst, tag)
        return chan

    def _eager_send(self, chan: _Channel, ep: _Endpoint) -> None:
        """Eager protocol: inject the message now; the sender completes
        at wire-clear time, the receive matches later.  The caller still
        queues ``ep`` on the channel's send FIFO."""
        src, dst = chan.src, chan.dst
        start = ep.post_time
        links = None
        if self.contention:
            links = self._links(src, dst)
            for link in links:
                start = max(start, self._link_free.get(link, 0.0))
        stats = self._ranks[src].stats
        finish = self._transfer_finish(chan, ep.nbytes, start, stats)
        if links is not None:
            for link in links:
                self._link_free[link] = finish
        ep.eager_arrival = finish
        if self.collect_trace:
            self._trace.append(
                TransferRecord(src, dst, chan.tag, ep.nbytes, start, finish,
                               span=ep.span)
            )
        stats.messages_sent += 1
        stats.bytes_sent += ep.nbytes
        self._events.push(finish, self._complete_endpoint,
                          (ep, finish, None))

    def _start_transfer(self, chan: _Channel, send: _Endpoint,
                        recv: _Endpoint) -> None:
        if send.eager_arrival is not None:
            # Already in flight (eager): the receive completes when the
            # message has arrived and the receive is posted; the sender
            # was completed at injection time.
            finish = max(recv.post_time, send.eager_arrival)
            self._events.push(finish, self._eager_recv_done,
                              (recv, send.payload, finish))
            return

        src = chan.src
        start = send.post_time
        if recv.post_time > start:
            start = recv.post_time
        links = None
        if self.contention and src != chan.dst:
            links = self._links(src, chan.dst)
            for link in links:
                free = self._link_free.get(link, 0.0)
                if free > start:
                    start = free

        nbytes = send.nbytes
        sender_stats = self._ranks[src].stats
        if self._faults is None:
            try:
                finish = start + chan.tt[nbytes]
            except KeyError:
                wire = chan.tt[nbytes] = self.network.transfer_time(
                    src, chan.dst, nbytes
                )
                finish = start + wire
        else:
            finish = self._faulty_finish(chan, nbytes, start, sender_stats)
        if links is not None:
            for link in links:
                self._link_free[link] = finish

        if self.collect_trace:
            self._trace.append(
                TransferRecord(src, chan.dst, chan.tag, nbytes, start,
                               finish, span=send.span)
            )

        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += nbytes

        self._events.push(finish, self._transfer_done, (send, recv, finish))

    def _links(self, src: int, dst: int) -> tuple:
        """Physical links of the (src, dst) route, memoised — routes are
        static for the lifetime of a network model."""
        key = (src, dst)
        links = self._links_cache.get(key)
        if links is None:
            links = self._links_cache[key] = tuple(self.network.links(src, dst))
        return links

    # -- fault injection ----------------------------------------------------

    def _transfer_finish(self, chan: _Channel, nbytes: int, start: float,
                         sender_stats: RankStats) -> float:
        """Wire-clear time of a transfer starting at ``start``.

        The fault-free branch performs exactly the pre-fault float
        operations, keeping untraced healthy runs bit-identical; the
        memoised network time is the identical float the network model
        returns (networks are pure cost functions — see
        ``docs/performance.md``).
        """
        if self._faults is None:
            wire = chan.tt.get(nbytes)
            if wire is None:
                wire = chan.tt[nbytes] = self.network.transfer_time(
                    chan.src, chan.dst, nbytes
                )
            return start + wire
        return self._faulty_finish(chan, nbytes, start, sender_stats)

    def _faulty_finish(self, chan: _Channel, nbytes: int, start: float,
                       sender_stats: RankStats) -> float:
        """One logical message under the fault schedule.

        Dropped attempts waste the (possibly degraded) wire time plus a
        backoff from the retry policy, then retransmit — the payload
        always arrives eventually, so numerics are untouched; only
        virtual time and the retry counters change.  Drop decisions
        hash structural coordinates (channel digest, per-channel
        ordinal, attempt), never the clock, so they replay identically
        across runs — see :mod:`repro.faults.schedule`.
        """
        faults = self._faults
        src, dst, tag = chan.src, chan.dst, chan.tag
        clean = self.network.transfer_time(src, dst, nbytes)
        if src == dst:
            return start + clean
        ordinal = chan.ordinal
        chan.ordinal = ordinal + 1
        digest = self._chan_digests.get(tag)
        if digest is None:
            digest = self._chan_digests[tag] = chan_digest(tag)
        retry = faults.retry
        t = start
        attempt = 0
        while (attempt < retry.max_retransmits
               and faults.drop(src, dst, digest, ordinal, attempt, t)):
            t += faults.transfer_time(self.network, src, dst, nbytes, t)
            t += retry.backoff_delay(attempt)
            attempt += 1
            sender_stats.retries += 1
        finish = t + faults.transfer_time(self.network, src, dst, nbytes, t)
        sender_stats.fault_delay += finish - (start + clean)
        return finish

    # -- event callbacks ----------------------------------------------------
    #
    # Scheduled as (method, args) records on the EventQueue; no closure
    # is allocated per event.

    def _recv_timeout(self, state: _RankState, ep: _Endpoint,
                      chan: _Channel, deadline: float) -> None:
        if ep.matched:
            return  # a send paired up first; the transfer will finish
        try:
            chan.recvs.remove(ep)
        except ValueError:  # pragma: no cover - defensive
            pass
        ep.matched = True
        state.stats.timeouts += 1
        state.stats.comm_time += deadline - state.block_start
        self._resume(state, RECV_TIMEOUT, deadline)

    def _rank_death(self, death: Any) -> None:
        state = self._ranks[death.rank]
        if state.finished:
            return  # outlived its death time; nothing to kill
        raise RankFailure(death.rank, death.time)

    def _transfer_done(self, send: _Endpoint, recv: _Endpoint,
                       finish: float) -> None:
        # Both completions inline _complete_endpoint (this callback
        # fires once per rendezvous transfer — the most common event in
        # any run).  Order matters and is part of the pinned semantics:
        # the sender completes (and may resume) before the receiver.
        ranks = self._ranks
        rpool = self._rh_pool
        state = ranks[send.rank]
        handle = send.handle
        if handle is None:
            state.stats.comm_time += finish - state.block_start
            self._resume(state, None, finish)
        else:
            handle.done = True
            handle.finish_time = finish
            if handle._waiter:
                parked: _RankState = handle._parked_state
                handle._waiter = False
                second = handle._pair
                parked.stats.comm_time += finish - parked.block_start
                if second is None:
                    self._resume(parked, None, finish)
                elif second is _PAIR_FINAL:
                    handle._pair = None
                    value = parked.resume_value
                    parked.resume_value = None
                    self._resume(parked, value, finish)
                    if handle._internal and len(rpool) < _RH_POOL_MAX:
                        handle.done = False
                        handle.payload = None
                        handle._parked_state = None
                        rpool.append(handle)
                else:
                    handle._pair = None
                    self._pair_continue(parked, second, finish, None)
                    if handle._internal and len(rpool) < _RH_POOL_MAX:
                        handle.done = False
                        handle.payload = None
                        handle._parked_state = None
                        rpool.append(handle)
        payload = send.payload
        state = ranks[recv.rank]
        handle = recv.handle
        if handle is None:
            state.stats.comm_time += finish - state.block_start
            self._resume(state, payload, finish)
        else:
            handle.done = True
            handle.finish_time = finish
            handle.payload = payload
            if handle._waiter:
                parked = handle._parked_state
                handle._waiter = False
                second = handle._pair
                parked.stats.comm_time += finish - parked.block_start
                if second is None:
                    self._resume(parked, payload, finish)
                elif second is _PAIR_FINAL:
                    handle._pair = None
                    value = parked.resume_value
                    parked.resume_value = None
                    self._resume(parked, value, finish)
                    if handle._internal and len(rpool) < _RH_POOL_MAX:
                        handle.done = False
                        handle.payload = None
                        handle._parked_state = None
                        rpool.append(handle)
                else:
                    handle._pair = None
                    self._pair_continue(parked, second, finish, payload)
                    if handle._internal and len(rpool) < _RH_POOL_MAX:
                        handle.done = False
                        handle.payload = None
                        handle._parked_state = None
                        rpool.append(handle)
        # Both rendezvous endpoints are dead here — nothing else
        # references them.  Timed receives are the exception: their
        # pending expiry event still holds the object, so they are
        # never recycled (the eager path keeps its own endpoints for
        # the same reason).  Releases restore the pool invariant (see
        # the point-to-point handlers).
        pool = self._ep_pool
        if len(pool) < _EP_POOL_MAX:
            send.payload = None
            send.handle = None
            send.span = None
            send.matched = False
            pool.append(send)
            if not recv.timed:
                recv.handle = None
                recv.matched = False
                pool.append(recv)

    def _fused_send_done(self, shandle: RequestHandle, recv: _Endpoint,
                         payload: Any, finish: float) -> None:
        """Rendezvous completion whose send side is a bare fused-path
        handle (no endpoint was ever created).  Mirrors
        :meth:`_transfer_done` exactly: sender first, then receiver."""
        shandle.done = True
        shandle.finish_time = finish
        rpool = self._rh_pool
        if shandle._waiter:
            # Parked _PAIR_FINAL-style: the receive leg already
            # finished; resume with its stashed payload.
            parked: _RankState = shandle._parked_state
            shandle._waiter = False
            shandle._pair = None
            parked.stats.comm_time += finish - parked.block_start
            value = parked.resume_value
            parked.resume_value = None
            self._resume(parked, value, finish)
            if len(rpool) < _RH_POOL_MAX:
                shandle.done = False
                shandle.payload = None
                shandle._parked_state = None
                rpool.append(shandle)
        state = self._ranks[recv.rank]
        handle = recv.handle
        if handle is None:
            state.stats.comm_time += finish - state.block_start
            self._resume(state, payload, finish)
        else:
            handle.done = True
            handle.finish_time = finish
            handle.payload = payload
            if handle._waiter:
                parked = handle._parked_state
                handle._waiter = False
                second = handle._pair
                parked.stats.comm_time += finish - parked.block_start
                if second is None:
                    self._resume(parked, payload, finish)
                elif second is _PAIR_FINAL:
                    handle._pair = None
                    value = parked.resume_value
                    parked.resume_value = None
                    self._resume(parked, value, finish)
                    self._maybe_recycle_handle(handle)
                else:
                    handle._pair = None
                    self._pair_continue(parked, second, finish, payload)
                    self._maybe_recycle_handle(handle)
        if not recv.timed and len(self._ep_pool) < _EP_POOL_MAX:
            recv.handle = None
            recv.matched = False
            self._ep_pool.append(recv)

    def _fused_recv_done(self, send: _Endpoint, rhandle: RequestHandle,
                         finish: float) -> None:
        """Rendezvous completion whose receive side is a bare fused-path
        handle.  The handle is by construction still parked (the fused
        wait blocks on the receive), so the receiver side is exactly the
        pair-wait continuation."""
        state = self._ranks[send.rank]
        handle = send.handle
        rpool = self._rh_pool
        if handle is None:
            state.stats.comm_time += finish - state.block_start
            self._resume(state, None, finish)
        else:
            handle.done = True
            handle.finish_time = finish
            if handle._waiter:
                parked: _RankState = handle._parked_state
                handle._waiter = False
                second = handle._pair
                parked.stats.comm_time += finish - parked.block_start
                if second is None:
                    self._resume(parked, None, finish)
                elif second is _PAIR_FINAL:
                    handle._pair = None
                    value = parked.resume_value
                    parked.resume_value = None
                    self._resume(parked, value, finish)
                    self._maybe_recycle_handle(handle)
                else:
                    handle._pair = None
                    self._pair_continue(parked, second, finish, None)
                    self._maybe_recycle_handle(handle)
        payload = send.payload
        parked = rhandle._parked_state
        rhandle._waiter = False
        second = rhandle._pair
        rhandle._pair = None
        stats = parked.stats
        stats.comm_time += finish - parked.block_start
        # _pair_continue inlined (this is the hottest completion): the
        # receive leg is over; finish the wait on the send leg.
        if finish > stats.clock:
            stats.clock = finish
        if second.done:
            wait = second.finish_time - stats.clock
            if wait > 0.0:
                stats.comm_time += wait
                stats.clock += wait
            self._resume(parked, payload, stats.clock)
            if second._internal and len(rpool) < _RH_POOL_MAX:
                second.done = False
                second.payload = None
                second._parked_state = None
                rpool.append(second)
        else:
            parked.blocked_on = second
            parked.block_start = stats.clock
            parked.resume_value = payload
            second._waiter = True
            second._parked_state = parked
            second._pair = _PAIR_FINAL
        if len(rpool) < _RH_POOL_MAX:
            rhandle.done = False
            rhandle.payload = None
            rhandle._parked_state = None
            rpool.append(rhandle)
        pool = self._ep_pool
        if len(pool) < _EP_POOL_MAX:
            send.payload = None
            send.handle = None
            send.span = None
            send.matched = False
            pool.append(send)

    def _maybe_recycle_handle(self, handle: RequestHandle) -> None:
        """Return a dead fused-sendrecv handle to the pool (cold path;
        the rendezvous callback inlines this check)."""
        if handle._internal:
            rpool = self._rh_pool
            if len(rpool) < _RH_POOL_MAX:
                handle.done = False
                handle.payload = None
                handle._parked_state = None
                rpool.append(handle)

    def _eager_recv_done(self, recv: _Endpoint, payload: Any,
                         finish: float) -> None:
        self._complete_endpoint(recv, finish, payload)
        if not recv.timed and len(self._ep_pool) < _EP_POOL_MAX:
            recv.handle = None
            recv.matched = False
            self._ep_pool.append(recv)

    def _complete_endpoint(
        self, ep: _Endpoint, finish: float, payload: Any
    ) -> None:
        state = self._ranks[ep.rank]
        if ep.handle is None:
            # Blocking operation: the rank is parked on it right now.
            state.stats.comm_time += finish - state.block_start
            self._resume(state, payload, finish)
            return
        handle = ep.handle
        handle.done = True
        handle.finish_time = finish
        handle.payload = payload
        if handle._waiter:
            parked: _RankState = handle._parked_state  # type: ignore[attr-defined]
            handle._waiter = False
            second = handle._pair
            parked.stats.comm_time += finish - parked.block_start
            if second is None:
                self._resume(parked, payload, finish)
            elif second is _PAIR_FINAL:
                handle._pair = None
                value = parked.resume_value
                parked.resume_value = None
                self._resume(parked, value, finish)
                self._maybe_recycle_handle(handle)
            else:
                handle._pair = None
                self._pair_continue(parked, second, finish, payload)
                self._maybe_recycle_handle(handle)
