"""Discrete-event engine executing SPMD rank programs over a network model.

Semantics
---------
* Rank programs are generators; the engine resumes them with the result
  of each yielded request.  Python control flow between yields costs
  zero virtual time — all cost comes from explicit
  :class:`~repro.simulator.requests.ComputeRequest`s and from message
  transfers.
* Point-to-point transfers are *rendezvous*: a send and its matching
  receive synchronise at ``max(post times)`` and both complete after
  the network's transfer time — the Hockney cost ``alpha + m*beta`` the
  paper builds on, with both endpoints occupied for the duration.
* Matching is MPI-like: FIFO per ``(src, dst, tag)`` channel; no
  wildcards (algorithms in this library always know their peers).
* With ``contention=True`` the engine serialises transfers that claim
  the same physical link (per :meth:`repro.network.Network.links`),
  which is how torus congestion effects enter.

The engine is single-threaded and fully deterministic: equal-time
events run in scheduling order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, RankFailure, SimulationError
from repro.faults.schedule import chan_digest
from repro.network.model import Network
from repro.simulator.events import EventQueue
from repro.simulator.requests import (
    RECV_TIMEOUT,
    CollectiveRequest,
    ComputeRequest,
    CounterRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRequest,
    WaitRequest,
)
from repro.simulator.spans import SpanCloseRequest, SpanOpenRequest, SpanRecorder
from repro.simulator.tracing import RankStats, SimResult, TransferRecord

RankProgram = Generator[Any, Any, Any]


class _Endpoint:
    """One side of a pending point-to-point operation."""

    __slots__ = ("rank", "post_time", "payload", "nbytes", "handle",
                 "eager_arrival", "span", "matched")

    def __init__(
        self,
        rank: int,
        post_time: float,
        payload: Any = None,
        nbytes: int = 0,
        handle: RequestHandle | None = None,
        span: str | None = None,
    ):
        self.rank = rank
        self.post_time = post_time
        self.payload = payload
        self.nbytes = nbytes
        self.handle = handle  # None => blocking operation
        self.eager_arrival: float | None = None  # set for in-flight eager sends
        self.span = span  # sender's open-span path at post time
        self.matched = False  # set when paired; gates timed-recv expiry


class _RankState:
    __slots__ = ("gen", "stats", "blocked_on", "block_start", "finished", "retval")

    def __init__(self, rank: int, gen: RankProgram):
        self.gen = gen
        self.stats = RankStats(rank=rank)
        self.blocked_on: Any = None
        self.block_start = 0.0
        self.finished = False
        self.retval: Any = None


class Engine:
    """Run a set of rank programs to completion over ``network``.

    Parameters
    ----------
    network:
        Cost model; must cover at least as many ranks as programs.
    contention:
        Serialise transfers sharing physical links. Off by default — the
        paper's analysis neglects congestion, and the homogeneous model
        has no shared links anyway.
    collect_trace:
        Record every completed transfer in the result (memory-heavy for
        large runs; meant for tests and debugging).
    max_events:
        Hard cap on processed events, guarding against runaway programs.
    eager_threshold:
        Messages of at most this many bytes use the MPI *eager*
        protocol: the send completes after injecting the message,
        without waiting for the matching receive (which later completes
        at ``max(recv post, arrival)``).  The default 0 keeps the pure
        rendezvous semantics the paper's model assumes; real MPI
        implementations eagerly buffer small messages, which removes
        the send-send deadlocks rendezvous would have.
    faults:
        Optional :class:`repro.faults.FaultSchedule` injecting link
        degradation, message drops (with automatic retransmission),
        rank slowdowns and fail-stop deaths.  ``None`` (and an empty
        schedule) leaves every code path — including float operation
        order — bit-identical to the fault-free engine.
    """

    #: Advance compute requests inline instead of via a heap event.
    #: Times are identical either way; the discovery *order* of
    #: transfers (hence the pinned trace artifacts) is only guaranteed
    #: stable with the event, so the base DES keeps it off.
    _inline_compute = False

    def __init__(
        self,
        network: Network,
        *,
        contention: bool = False,
        collect_trace: bool = False,
        max_events: int = 200_000_000,
        eager_threshold: int = 0,
        faults: Any = None,
    ) -> None:
        self.network = network
        self.contention = contention
        self.collect_trace = collect_trace
        self.max_events = max_events
        if eager_threshold < 0:
            raise SimulationError(
                f"eager_threshold must be >= 0, got {eager_threshold}"
            )
        self.eager_threshold = eager_threshold
        if faults is not None and getattr(faults, "empty", False):
            faults = None  # empty schedule: take the fault-free fast path
        self._faults = faults

    # -- public API --------------------------------------------------------

    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        """Execute ``programs`` (one generator per rank) and return stats."""
        gens = list(programs)
        if not gens:
            raise SimulationError("no rank programs supplied")
        if len(gens) > self.network.nranks:
            raise SimulationError(
                f"{len(gens)} programs but network only models "
                f"{self.network.nranks} ranks"
            )
        self._ranks = [_RankState(i, g) for i, g in enumerate(gens)]
        self._events = EventQueue()
        self._sends: dict[tuple[int, int, int], deque[_Endpoint]] = {}
        self._recvs: dict[tuple[int, int, int], deque[_Endpoint]] = {}
        self._link_free: dict[Any, float] = {}
        self._trace: list[TransferRecord] = []
        self._spans = SpanRecorder(len(gens))
        self._nevents = 0
        # Per-(src, dst, tag) message ordinals and per-tag channel
        # digests for deterministic drop decisions (see repro.faults).
        self._chan_ord: dict[tuple[int, int, Any], int] = {}
        self._chan_digests: dict[Any, int] = {}

        if self._faults is not None:
            # Deaths are pushed before the initial resumes so that at
            # equal virtual times a fail-stop preempts completions —
            # a deterministic, documented tie-break.  Deaths aimed at
            # ranks not in this run are ignored (a schedule may be
            # reused across runs of different sizes).
            for death in self._faults.death_events():
                if death.rank < len(self._ranks):
                    self._events.push(death.time, self._make_rank_death(death))

        for state in self._ranks:
            self._resume(state, None, state.stats.clock)

        while self._events:
            self._nevents += 1
            if self._nevents > self.max_events:
                raise SimulationError(
                    f"event cap of {self.max_events} exceeded; "
                    "likely a livelock in a rank program"
                )
            _time, callback = self._events.pop()
            callback()

        blocked = [
            (s.stats.rank, s.blocked_on)
            for s in self._ranks
            if not s.finished
        ]
        if blocked:
            detail = ", ".join(f"rank {r} on {op!r}" for r, op in blocked[:8])
            more = "" if len(blocked) <= 8 else f" (+{len(blocked) - 8} more)"
            raise DeadlockError(f"simulation deadlocked: {detail}{more}")

        for state in self._ranks:
            self._spans.finish(state.stats.rank, state.stats.clock)

        return SimResult(
            stats=[s.stats for s in self._ranks],
            return_values=[s.retval for s in self._ranks],
            trace=self._trace,
            spans=self._spans.roots,
        )

    # -- generator stepping -------------------------------------------------

    def _resume(self, state: _RankState, value: Any, time: float) -> None:
        """Resume ``state`` at virtual ``time`` with ``value``, then keep
        stepping it through zero-time requests until it blocks or ends."""
        stats = state.stats
        if time > stats.clock:
            stats.clock = time
        send = state.gen.send
        while True:
            state.blocked_on = None
            try:
                request = send(value)
            except StopIteration as stop:
                state.finished = True
                state.retval = stop.value
                return
            value = None
            now = stats.clock

            # Dispatch order is a pure optimisation: every request
            # matches exactly one branch, and the hottest kinds
            # (collective announcements, compute charges) come first.
            if isinstance(request, CollectiveRequest):
                # Zero virtual time to *announce*: the request describes
                # the collective about to run.  The base engine absorbs
                # it (resuming with None), so the communicator expands
                # it into the exact point-to-point schedule — the
                # pre-request behaviour, bit-identically.  Subclasses
                # (the macro backend) may instead satisfy it from a
                # cost oracle by returning True from _collective.
                if self._collective(state, request, now):
                    return
                continue

            if isinstance(request, ComputeRequest):
                seconds = request.seconds
                if self._faults is not None:
                    factor = self._faults.compute_factor(stats.rank, now)
                    if factor != 1.0:
                        slowed = seconds * factor
                        stats.fault_delay += slowed - seconds
                        seconds = slowed
                stats.compute_time += seconds
                if self._inline_compute:
                    # Purely local: advance this rank's clock without a
                    # wake-up event.  Subclasses with no ordering-
                    # sensitive observers (the macro backend) opt in;
                    # the base engine keeps the event so the transfer
                    # trace's discovery order — a pinned artifact —
                    # is unchanged.
                    stats.clock = now + seconds
                    continue
                state.blocked_on = request
                self._events.push(
                    now + seconds,
                    self._make_compute_done(state, now + seconds),
                )
                return

            if isinstance(request, SendRequest):
                if request.dst == state.stats.rank:
                    raise SimulationError(
                        f"rank {state.stats.rank}: blocking send to self deadlocks"
                    )
                state.blocked_on = request
                state.block_start = now
                ep = _Endpoint(state.stats.rank, now, request.payload, request.nbytes,
                               span=self._spans.current_path(state.stats.rank))
                self._post_send(state.stats.rank, request.dst, request.tag, ep)
                return

            if isinstance(request, RecvRequest):
                state.blocked_on = request
                state.block_start = now
                ep = _Endpoint(state.stats.rank, now)
                matched = self._post_recv(
                    request.src, state.stats.rank, request.tag, ep
                )
                if request.timeout is not None and not matched:
                    # The deadline bounds *matching*, not completion:
                    # once a send pairs up, the transfer always runs
                    # to the end (as on a real wire).
                    key = (request.src, state.stats.rank, request.tag)
                    deadline = now + request.timeout
                    self._events.push(
                        deadline,
                        self._make_recv_timeout(state, ep, key, deadline),
                    )
                return

            if isinstance(request, SpanOpenRequest):
                # Zero virtual time: absorbed inline, no event scheduled,
                # so traced and untraced runs are bit-identical.
                self._spans.open(state.stats.rank, request.name, request.attrs, now)
                continue

            if isinstance(request, SpanCloseRequest):
                self._spans.close(state.stats.rank, request.attrs, now)
                continue

            if isinstance(request, CounterRequest):
                # Zero virtual time: the MPI layer reporting a recovery.
                setattr(stats, request.name,
                        getattr(stats, request.name) + request.amount)
                continue

            if isinstance(request, ISendRequest):
                handle = RequestHandle(state.stats.rank, "send")
                ep = _Endpoint(
                    state.stats.rank, now, request.payload, request.nbytes, handle,
                    span=self._spans.current_path(state.stats.rank),
                )
                self._post_send(state.stats.rank, request.dst, request.tag, ep)
                value = handle
                continue

            if isinstance(request, IRecvRequest):
                handle = RequestHandle(state.stats.rank, "recv")
                ep = _Endpoint(state.stats.rank, now, handle=handle)
                self._post_recv(request.src, state.stats.rank, request.tag, ep)
                value = handle
                continue

            if isinstance(request, WaitRequest):
                handle = request.handle
                if handle.rank != state.stats.rank:
                    raise SimulationError(
                        f"rank {state.stats.rank} waiting on rank "
                        f"{handle.rank}'s handle"
                    )
                if handle.done:
                    wait = max(0.0, handle.finish_time - now)
                    state.stats.comm_time += wait
                    state.stats.clock = now + wait
                    value = handle.payload
                    continue
                state.blocked_on = request
                state.block_start = now
                handle._waiter = True
                handle._parked_state = state  # type: ignore[attr-defined]
                return

            raise SimulationError(
                f"rank {state.stats.rank} yielded unknown request {request!r}"
            )

    def _collective(self, state: _RankState, request: CollectiveRequest,
                    now: float) -> bool:
        """Hook: satisfy ``request`` directly instead of expanding it.

        Return ``True`` after parking the rank (the subclass then owns
        resumption, and must resume with a
        :class:`~repro.simulator.requests.CollectiveReply`); return
        ``False`` to absorb the announcement so the communicator
        expands the collective into point-to-point messages.
        """
        return False

    def _make_compute_done(
        self, state: _RankState, finish: float
    ) -> Callable[[], None]:
        def done() -> None:
            self._resume(state, None, finish)

        return done

    # -- matching -----------------------------------------------------------

    def _post_send(self, src: int, dst: int, tag: int, ep: _Endpoint) -> None:
        key = (src, dst, tag)
        queue = self._recvs.get(key)
        if queue:
            recv = queue.popleft()
            recv.matched = True
            self._start_transfer(key, ep, recv)
            return
        if ep.nbytes <= self.eager_threshold and src != dst:
            # Eager protocol: inject now; the sender completes at
            # wire-clear time, the receive matches later.
            start = ep.post_time
            links = None
            if self.contention:
                links = self.network.links(src, dst)
                for link in links:
                    start = max(start, self._link_free.get(link, 0.0))
            stats = self._ranks[src].stats
            finish = self._transfer_finish(src, dst, tag, ep.nbytes, start, stats)
            if links is not None:
                for link in links:
                    self._link_free[link] = finish
            ep.eager_arrival = finish
            if self.collect_trace:
                self._trace.append(
                    TransferRecord(src, dst, tag, ep.nbytes, start, finish,
                                   span=ep.span)
                )
            stats.messages_sent += 1
            stats.bytes_sent += ep.nbytes
            self._events.push(
                finish, self._make_eager_sent(ep, finish)
            )
        self._sends.setdefault(key, deque()).append(ep)

    def _make_eager_sent(self, ep: _Endpoint, finish: float) -> Callable[[], None]:
        def done() -> None:
            self._complete_endpoint(ep, finish, None)

        return done

    def _post_recv(self, src: int, dst: int, tag: int, ep: _Endpoint) -> bool:
        """Post a receive; return True when a send matched immediately."""
        key = (src, dst, tag)
        queue = self._sends.get(key)
        if queue:
            ep.matched = True
            self._start_transfer(key, queue.popleft(), ep)
            return True
        self._recvs.setdefault(key, deque()).append(ep)
        return False

    def _start_transfer(
        self, key: tuple[int, int, int], send: _Endpoint, recv: _Endpoint
    ) -> None:
        src, dst, tag = key

        if send.eager_arrival is not None:
            # Already in flight (eager): the receive completes when the
            # message has arrived and the receive is posted; the sender
            # was completed at injection time.
            finish = max(recv.post_time, send.eager_arrival)
            self._events.push(
                finish, self._make_recv_done(recv, send.payload, finish)
            )
            return

        start = max(send.post_time, recv.post_time)
        links = None
        if self.contention and src != dst:
            links = self.network.links(src, dst)
            for link in links:
                start = max(start, self._link_free.get(link, 0.0))

        sender_stats = self._ranks[src].stats
        finish = self._transfer_finish(src, dst, tag, send.nbytes, start,
                                       sender_stats)
        if links is not None:
            for link in links:
                self._link_free[link] = finish

        if self.collect_trace:
            self._trace.append(
                TransferRecord(src, dst, tag, send.nbytes, start, finish,
                               span=send.span)
            )

        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += send.nbytes

        self._events.push(finish, self._make_transfer_done(send, recv, finish))

    # -- fault injection ----------------------------------------------------

    def _transfer_finish(self, src: int, dst: int, tag: Any, nbytes: int,
                         start: float, sender_stats: RankStats) -> float:
        """Wire-clear time of a transfer starting at ``start``.

        The fault-free branch performs exactly the pre-fault float
        operations, keeping untraced healthy runs bit-identical.
        """
        if self._faults is None:
            return start + self.network.transfer_time(src, dst, nbytes)
        return self._faulty_finish(src, dst, tag, nbytes, start, sender_stats)

    def _faulty_finish(self, src: int, dst: int, tag: Any, nbytes: int,
                       start: float, sender_stats: RankStats) -> float:
        """One logical message under the fault schedule.

        Dropped attempts waste the (possibly degraded) wire time plus a
        backoff from the retry policy, then retransmit — the payload
        always arrives eventually, so numerics are untouched; only
        virtual time and the retry counters change.  Drop decisions
        hash structural coordinates (channel digest, per-channel
        ordinal, attempt), never the clock, so they replay identically
        across runs — see :mod:`repro.faults.schedule`.
        """
        faults = self._faults
        clean = self.network.transfer_time(src, dst, nbytes)
        if src == dst:
            return start + clean
        key = (src, dst, tag)
        ordinal = self._chan_ord.get(key, 0)
        self._chan_ord[key] = ordinal + 1
        chan = self._chan_digests.get(tag)
        if chan is None:
            chan = chan_digest(tag)
            self._chan_digests[tag] = chan
        retry = faults.retry
        t = start
        attempt = 0
        while (attempt < retry.max_retransmits
               and faults.drop(src, dst, chan, ordinal, attempt, t)):
            t += faults.transfer_time(self.network, src, dst, nbytes, t)
            t += retry.backoff_delay(attempt)
            attempt += 1
            sender_stats.retries += 1
        finish = t + faults.transfer_time(self.network, src, dst, nbytes, t)
        sender_stats.fault_delay += finish - (start + clean)
        return finish

    def _make_recv_timeout(
        self, state: _RankState, ep: _Endpoint,
        key: tuple[int, int, Any], deadline: float,
    ) -> Callable[[], None]:
        def expired() -> None:
            if ep.matched:
                return  # a send paired up first; the transfer will finish
            queue = self._recvs.get(key)
            if queue is not None:
                try:
                    queue.remove(ep)
                except ValueError:  # pragma: no cover - defensive
                    pass
            ep.matched = True
            state.stats.timeouts += 1
            state.stats.comm_time += deadline - state.block_start
            self._resume(state, RECV_TIMEOUT, deadline)

        return expired

    def _make_rank_death(self, death: Any) -> Callable[[], None]:
        def die() -> None:
            state = self._ranks[death.rank]
            if state.finished:
                return  # outlived its death time; nothing to kill
            raise RankFailure(death.rank, death.time)

        return die

    def _make_transfer_done(
        self, send: _Endpoint, recv: _Endpoint, finish: float
    ) -> Callable[[], None]:
        def done() -> None:
            self._complete_endpoint(send, finish, None)
            self._complete_endpoint(recv, finish, send.payload)

        return done

    def _make_recv_done(
        self, recv: _Endpoint, payload: Any, finish: float
    ) -> Callable[[], None]:
        def done() -> None:
            self._complete_endpoint(recv, finish, payload)

        return done

    def _complete_endpoint(
        self, ep: _Endpoint, finish: float, payload: Any
    ) -> None:
        state = self._ranks[ep.rank]
        if ep.handle is None:
            # Blocking operation: the rank is parked on it right now.
            state.stats.comm_time += finish - state.block_start
            self._resume(state, payload, finish)
            return
        handle = ep.handle
        handle.done = True
        handle.finish_time = finish
        handle.payload = payload
        if handle._waiter:
            parked: _RankState = handle._parked_state  # type: ignore[attr-defined]
            handle._waiter = False
            parked.stats.comm_time += finish - parked.block_start
            self._resume(parked, payload, finish)
