"""Symmetry-collapsed execution of the macro backend.

An SPMD run of a SUMMA-family algorithm on a homogeneous network has
only O(grid-dimension) *distinct* rank behaviours: rank ``(i, j)``'s
entire timeline — which collectives it announces, the guards it takes,
the sizes it ships, the virtual times it observes — is a function of
its structural role (inner coordinates modulo the group grid), not of
``(i, j)`` itself.  The per-rank macro backend nevertheless steps all
``s*t`` generators; at p=16384 that is tens of millions of generator
resumes pricing collectives whose answers repeat ``O(s)``-fold.

This module collapses that redundancy without giving up exactness:

* A runner *declares* its symmetry as a :class:`GridSymmetry` — which
  rows/columns of the grid form a covering **probe set**, and how a
  communicator's context id maps to an **equivalence class** of comms
  with bit-identical (start, finish) behaviour.  Non-2D layouts (the
  DNS 3-D mesh, the 2.5D layer stack) declare the same interface
  through :class:`DnsSymmetry` / :class:`Layered25dSymmetry`.
* :class:`CollapsedMacroEngine` steps only the probed ranks' generators
  through the inherited macro machinery (structure-of-arrays state for
  everyone else).  A collective whose participants are all probed fires
  normally and records a *memo* for its class; a collective with only
  some participants probed is satisfied from the memo — after checking
  the arrival clock, signature and payload size match it exactly.
  Classes in ``rotated`` match memos up to a root rotation (Fox's
  rotating pivot, the DNS axis broadcasts).
* Point-to-point traffic on tags listed in ``p2p_tags`` collapses by
  the same congruence: every probed rank's n-th send/recv on a tag to
  a partner *class* must post at the same clock with the same size as
  every other member of its own class (verified en route), so the wire
  times — computed with the exact float operations of the fused DES
  path — depend only on (my class, partner class, occurrence).
* Any observation the congruence argument cannot cover — undeclared
  tags, timed receives, nonblocking handles, spans, unknown
  communicators, a clock past the memoed start, concrete (non-phantom)
  payloads, leftover parked ranks — raises :class:`SymmetryBroken`, and
  :meth:`~repro.simulator.backends.MacroBackend.run_with_factory` falls
  back to the per-rank path with fresh generators.
* At the end, the unprobed ranks' stats and return values are
  replicated from their probed *twin* (the symmetry's ``twin_indices``
  map; ``(i mod probe_rows, j mod probe_cols)`` for plain grids) via
  numpy gathers.  By the congruence argument (docs/cost_model.md,
  "Rank equivalence classes") the twin's floats are bit-identical to
  what the per-rank run would have produced, so the assembled
  :class:`~repro.simulator.tracing.SimResult` — including the
  max-over-ranks times — is exact, not approximate.

The collapse is *attempted*, never assumed: every run either proves its
own symmetry en route or falls back, and the property suite pins
bit-identity against the per-rank implementation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.network.model import Network
from repro.simulator.backends import MacroBackend, _op_nbytes, _op_results
from repro.simulator.engine import RankProgram, _PARKED, _RankState
from repro.simulator.events import EventQueue
from repro.simulator.requests import (
    CollectiveRequest,
    RecvRequest,
    SendRecvRequest,
    SendRequest,
)
from repro.simulator.spans import SpanRecorder
from repro.simulator.tracing import RankStats, SimResult


class SymmetryBroken(Exception):
    """The run made an observation the declared symmetry cannot cover.

    Internal control flow: callers
    (:meth:`~repro.simulator.backends.MacroBackend.run_with_factory`)
    catch it and rerun per-rank.  Never escapes to user code.
    """


def _const(color: Any) -> int:
    """Class-key callable: all communicators of this child sequence
    behave identically (one class)."""
    return 0


@dataclasses.dataclass(frozen=True)
class GridSymmetry:
    """A runner's declaration of its rank-equivalence structure.

    Parameters
    ----------
    s, t:
        The process grid; world rank ``r`` sits at ``divmod(r, t)``.
    probe_rows, probe_cols:
        The probe set is grid rows ``0..probe_rows-1`` plus grid
        columns ``0..probe_cols-1``.  It must be chosen so that every
        equivalence class of communicators contains at least one comm
        whose participants are *all* probed (the class primary), and so
        that :meth:`twin_indices` maps every rank onto a behavioural
        twin inside the probe set.  Flat SUMMA/cyclic: 1x1 (a cross).
        HSUMMA with an ``I x J`` group grid: ``(s/I) x (t/J)``.
    class_keys:
        Maps a communicator's world child sequence number (``cid[0]``
        for depth-1 communicators) to a callable turning its split
        color (``cid[1]``) into a class subkey.  Comms with equal
        ``(child_seq, subkey)`` must announce in lockstep: same
        per-comm collective sequence numbering, same (start, finish),
        same signature, same per-member payload sizes.  An announcement
        on any other communicator breaks the symmetry.
    rotated:
        Child sequence numbers whose comms match their class memo up to
        a rotation of the root (Fox's ``(i + k) % q`` pivot, the DNS
        axis broadcasts rooted at the layer index): signature and
        per-member sizes are compared after rotating the root to
        position 0, and a joining member reads the memo at its
        root-relative position.  Sound only for participant-invariant
        costers (a collapse precondition), which are root-invariant.
    p2p_tags:
        Base tags whose point-to-point traffic collapses by class
        congruence (see :class:`CollapsedMacroEngine`).  Any traffic on
        other tags, or any nonblocking/timed primitive, breaks the
        symmetry.
    """

    s: int
    t: int
    probe_rows: int
    probe_cols: int
    class_keys: Mapping[int, Callable[[Any], Any]]
    rotated: frozenset = frozenset()
    p2p_tags: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.s <= 0 or self.t <= 0:
            raise SimulationError(
                f"grid dims must be positive: {self.s}x{self.t}")
        if not (0 < self.probe_rows and 0 < self.probe_cols):
            raise SimulationError(
                f"probe dims must be positive: "
                f"{self.probe_rows}x{self.probe_cols}")

    @property
    def nranks(self) -> int:
        return self.s * self.t

    @property
    def covers_grid(self) -> bool:
        """True when the probe set is the whole grid (no collapse win)."""
        return self.probe_rows >= self.s or self.probe_cols >= self.t

    def probe_indices(self) -> list[int]:
        """World ranks in the probe set, ascending."""
        pr = min(self.probe_rows, self.s)
        pc = min(self.probe_cols, self.t)
        out = list(range(pr * self.t))
        for i in range(pr, self.s):
            base = i * self.t
            out.extend(range(base, base + pc))
        return out

    def class_key(self, cid: tuple) -> tuple:
        """Equivalence class of the communicator with context id ``cid``."""
        if len(cid) != 2:
            raise SymmetryBroken(
                f"collective on unexpected communicator depth: cid={cid!r}")
        child_seq, color = cid
        fn = self.class_keys.get(child_seq)
        if fn is None:
            raise SymmetryBroken(
                f"collective on undeclared communicator family "
                f"(child seq {child_seq})")
        return (child_seq, fn(color))

    def rank_class(self, rank: int) -> tuple:
        """Point-to-point congruence class of a world rank: all ranks
        of one class post their sends/receives in lockstep."""
        i, j = divmod(rank, self.t)
        return (i % self.probe_rows, j % self.probe_cols)

    def twin_indices(self, ranks: np.ndarray) -> np.ndarray:
        """Probed behavioural twin per world rank (vectorised)."""
        gi, gj = ranks // self.t, ranks % self.t
        return (gi % self.probe_rows) * self.t + (gj % self.probe_cols)


class TorusShiftSymmetry(GridSymmetry):
    """Grid symmetry for torus-shift algorithms (Cannon).

    Shift patterns distinguish the *boundary* rows/columns (where the
    skew guards ``i > 0`` / ``j > 0`` differ and wraparound partners
    sit) from the interior, which is one big class — so ranks collapse
    by *clamping* to the probe border rather than wrapping modulo it:
    rank ``(i, j)`` twins with ``(min(i, pr-1), min(j, pc-1))``.
    """

    def rank_class(self, rank: int) -> tuple:
        i, j = divmod(rank, self.t)
        return (min(i, self.probe_rows - 1), min(j, self.probe_cols - 1))

    def twin_indices(self, ranks: np.ndarray) -> np.ndarray:
        gi, gj = ranks // self.t, ranks % self.t
        return (np.minimum(gi, self.probe_rows - 1) * self.t
                + np.minimum(gj, self.probe_cols - 1))


class DnsSymmetry:
    """Rank-equivalence declaration for the DNS 3-D algorithm on a
    ``q x q x q`` mesh (rank ``r = (i*q + j)*q + k``).

    A rank's behaviour is a function of five structural flags —
    ``(k==0, j==0, j==k, i==0, i==k)`` — which decide the A/B routing
    roles (tags 10/11), broadcast rootness on the j/i axes, and the
    final reduction to the ``k==0`` face.  The probe is the minimal
    covering set — the ``{0,1,2}^3`` cube plus five full axis lines —
    O(q) of the O(q^3) mesh:

    * the cube realises every flag combination (all twins land in it)
      and both sides of every p2p (sender class, receiver class,
      occurrence) record the tag-10/11 routes can produce;
    * full j-lines ``(i=0, k=0)`` and ``(i=0, k=1)`` give both j-axis
      communicator classes (``k==0`` face vs ``k>=1``) a fully-probed
      primary, full i-lines ``(j=0, k=0)`` / ``(j=0, k=1)`` do the
      same for the i-axis, and the k-line ``(i=0, j=0)`` anchors the
      single (lockstep) reduction class.

    Every other probed rank sits in a partially-probed communicator
    and joins its class memo (root differences on the rotated j/i
    axes are handled by the memo's index rotation).

    Breakage conditions (→ per-rank fallback): non-cubic rank counts
    never reach here (the runner raises first); concrete payloads,
    faults, or traffic outside tags 10/11 break en route.
    """

    rotated = frozenset({0, 1})
    p2p_tags = frozenset({10, 11})

    def __init__(self, q: int) -> None:
        if q <= 0:
            raise SimulationError(f"mesh dim must be positive: {q}")
        self.q = q

    @property
    def nranks(self) -> int:
        return self.q ** 3

    @property
    def covers_grid(self) -> bool:
        # The {0,1,2}^3 cube alone is the whole mesh once q <= 3.
        return self.q <= 3

    def _coords(self, rank: int) -> tuple[int, int, int]:
        q = self.q
        return rank // (q * q), (rank // q) % q, rank % q

    def probe_indices(self) -> list[int]:
        q = self.q
        r = np.arange(self.nranks)
        i, j, k = r // (q * q), (r // q) % q, r % q
        cube = (i <= 2) & (j <= 2) & (k <= 2)
        j_lines = (i == 0) & (k <= 1)
        i_lines = (j == 0) & (k <= 1)
        k_line = (i == 0) & (j == 0)
        return np.flatnonzero(cube | j_lines | i_lines | k_line).tolist()

    def class_key(self, cid: tuple) -> tuple:
        if len(cid) != 2:
            raise SymmetryBroken(
                f"collective on unexpected communicator depth: cid={cid!r}")
        child_seq, color = cid
        if child_seq in (0, 1):
            # j-axis (color = i*q + k) and i-axis (color = j*q + k)
            # comms: the k=0 face routes/roots differently from k>=1.
            return (child_seq, min(color % self.q, 1))
        if child_seq == 2:
            return (2, 0)  # k-axis reduction: globally lockstep
        raise SymmetryBroken(
            f"collective on undeclared communicator family "
            f"(child seq {child_seq})")

    def rank_class(self, rank: int) -> tuple:
        i, j, k = self._coords(rank)
        return (k == 0, j == 0, j == k, i == 0, i == k)

    def twin_indices(self, ranks: np.ndarray) -> np.ndarray:
        q = self.q
        i = ranks // (q * q)
        j = (ranks // q) % q
        k = ranks % q
        # Flag-preserving representative with all coordinates in
        # {0, 1, 2}: clamp the k=0 face; elsewhere k -> 1 and each of
        # i/j keeps its (==0, ==k, other) role as (0, 1, 2).
        ti = np.where(k == 0, np.minimum(i, 1),
                      np.where(i == 0, 0, np.where(i == k, 1, 2)))
        tj = np.where(k == 0, np.minimum(j, 1),
                      np.where(j == 0, 0, np.where(j == k, 1, 2)))
        tk = np.minimum(k, 1)
        return (ti * q + tj) * q + tk


class Layered25dSymmetry:
    """Rank-equivalence declaration for the 2.5D algorithm on a
    ``q x q x c`` layer stack (rank ``r = (i*q + j)*c + layer``).

    Every phase is an unguarded collective (layer replication, per-step
    row/col pivot broadcasts, layer reduction), so the run is fully
    lockstep; the only observable coordinate is the *layer* (it selects
    the pivot range ``k = layer*steps + idx``), making the row/col comm
    classes ``layer``-keyed and the probe a single grid cross
    (``i == 0`` or ``j == 0``) through all layers — O(q·c) of O(q²·c).

    Breakage conditions (→ per-rank fallback): concrete payloads (the
    layer reduction combines real partials), faults, heterogeneous
    costers — all refused en route or by the blocker.
    """

    rotated = frozenset()
    p2p_tags = frozenset()

    def __init__(self, q: int, c: int) -> None:
        if q <= 0 or c <= 0:
            raise SimulationError(f"bad 2.5D layout: q={q}, c={c}")
        self.q = q
        self.c = c

    @property
    def nranks(self) -> int:
        return self.q * self.q * self.c

    @property
    def covers_grid(self) -> bool:
        return self.q <= 1

    def probe_indices(self) -> list[int]:
        q, c = self.q, self.c
        out = []
        for r in range(self.nranks):
            i = r // (c * q)
            j = (r // c) % q
            if i == 0 or j == 0:
                out.append(r)
        return out

    def class_key(self, cid: tuple) -> tuple:
        if len(cid) != 2:
            raise SymmetryBroken(
                f"collective on unexpected communicator depth: cid={cid!r}")
        child_seq, color = cid
        if child_seq == 0:
            return (0, 0)  # layer axis: one lockstep class
        if child_seq in (1, 2):
            # row (color = i*c + layer) / col (color = j*c + layer)
            # comms: the layer picks the rotating pivot root.
            return (child_seq, color % self.c)
        raise SymmetryBroken(
            f"collective on undeclared communicator family "
            f"(child seq {child_seq})")

    def rank_class(self, rank: int) -> tuple:
        i = rank // (self.c * self.q)
        j = (rank // self.c) % self.q
        return (min(i, 1), min(j, 1), rank % self.c)

    def twin_indices(self, ranks: np.ndarray) -> np.ndarray:
        # (i, j, layer) -> (0, j, layer): same layer (keeps the retval
        # face and pivot range), same column rootness on the row comms.
        return ranks % (self.c * self.q)


class _Memo:
    """What one class primary observed for one collective sequence."""

    __slots__ = ("op", "algorithm", "root", "segments", "p",
                 "start", "finish", "nbytes_by_me", "results")

    def __init__(self, op, algorithm, root, segments, p,
                 start, finish, nbytes_by_me, results):
        self.op = op
        self.algorithm = algorithm
        self.root = root
        self.segments = segments
        self.p = p
        self.start = start
        self.finish = finish
        self.nbytes_by_me = nbytes_by_me
        self.results = results


def _phantom_ok(value: Any) -> bool:
    """True when ``value`` carries no concrete data a partial comm's
    unobserved members could have influenced."""
    from repro.payloads import is_phantom

    if value is None or is_phantom(value):
        return True
    if isinstance(value, (list, tuple)):
        return all(_phantom_ok(v) for v in value)
    return False


def _rotate(values: Sequence, root: int) -> list:
    """``values`` re-based so the root sits at position 0."""
    if not root:
        return list(values)
    return list(values[root:]) + list(values[:root])


class CollapsedMacroEngine(MacroBackend):
    """Macro backend stepping only the probe set of a symmetric grid.

    Constructed internally by
    :meth:`~repro.simulator.backends.MacroBackend.run_with_factory`;
    raises :class:`SymmetryBroken` the moment the run strays outside
    the declared symmetry (the caller then falls back per-rank).

    Point-to-point collapse: for tags in ``symmetry.p2p_tags``, each
    probed rank's posts are recorded under ``(kind, my class, wire tag,
    partner class, occurrence)`` and cross-checked against its class
    (same post clock, same size, phantom payloads only).  A send
    completes against the partner *class's* recorded receive post and
    vice versa, reproducing the fused DES path's float operations —
    ``finish = max(post, partner_post) + wire`` per leg, the receive
    leg's comm charge first, then the send tail — exactly.  Sends
    charge ``messages_sent``/``bytes_sent`` to the sender as in the
    DES, and the counters replicate to twins at assembly.
    """

    def __init__(
        self,
        network: Network,
        *,
        symmetry: GridSymmetry,
        coster: Any = None,
        max_events: int = 200_000_000,
    ) -> None:
        super().__init__(network, coster=coster, max_events=max_events)
        self.symmetry = symmetry

    # -- run loop: Engine.run for a sparse rank subset ---------------------

    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        gens = list(programs)
        sym = self.symmetry
        if len(gens) != sym.nranks:
            raise SimulationError(
                f"{len(gens)} programs but symmetry declares "
                f"{sym.nranks} ranks")
        if len(gens) > self.network.nranks:
            raise SimulationError(
                f"{len(gens)} programs but network only models "
                f"{self.network.nranks} ranks")

        if sym.p2p_tags:
            # The p2p collapse replicates wire times measured between
            # *probe* ranks onto their twins; only a uniform network
            # makes those times pair-independent.
            from repro.network.homogeneous import HomogeneousNetwork

            if not (isinstance(self.network, HomogeneousNetwork)
                    and self.network.intra_params is None):
                raise SymmetryBroken(
                    "point-to-point collapse requires a uniform network")

        probe = sym.probe_indices()
        probed = bytearray(len(gens))
        for r in probe:
            probed[r] = 1
        self._probed = probed
        # Only the probed generators ever start; the rest are dropped
        # unexecuted (their twins stand in for them).
        self._ranks = [_RankState(r, gens[r]) for r in probe]
        self._events = EventQueue()
        self._pending = {}
        self._durations = {}
        #: (class key, seq) -> _Memo recorded by the class primary.
        self._memos: dict[tuple, _Memo] = {}
        #: (class key, seq) -> [(state, request)] waiting for a primary.
        self._parked: dict[tuple, list] = {}
        self._full_by_cid: dict[tuple, bool] = {}
        self._class_by_cid: dict[tuple, tuple] = {}
        #: p2p post records: (kind, class, wire tag, partner class,
        #: occurrence) -> (post clock, nbytes, payload).
        self._posts: dict[tuple, tuple] = {}
        #: post key -> [op spec] parked until that post is recorded.
        self._waiters: dict[tuple, list] = {}
        #: (rank, kind, wire tag, partner class) -> next occurrence.
        self._occ: dict[tuple, int] = {}
        #: (class, rank class cache) and wire-time memo.
        self._rank_class: dict[int, tuple] = {}
        self._wires: dict[tuple, float] = {}
        self._trace = []
        self._spans = SpanRecorder(len(gens))
        self._nevents = 0

        for state in self._ranks:
            self._resume(state, None, state.stats.clock)

        events = self._events
        max_events = self.max_events
        while events:
            _time, batch = events.pop_batch()
            self._nevents += len(batch)
            if self._nevents > max_events:
                raise SimulationError(
                    f"event cap of {max_events} exceeded; "
                    "likely a livelock in a rank program"
                )
            for _t, _seq, fn, args in batch:
                fn(*args)

        stuck = [s for s in self._ranks if not s.finished]
        if stuck:
            # Either an equivalence class never produced a fully-probed
            # primary (the declaration is too coarse for this run) or a
            # genuine deadlock; the per-rank fallback distinguishes them.
            raise SymmetryBroken(
                f"{len(stuck)} probed ranks left blocked "
                f"(first: rank {stuck[0].stats.rank} on "
                f"{stuck[0].blocked_on!r})")
        if self._parked or self._pending or self._waiters:
            raise SymmetryBroken(
                "collectives or point-to-point ops left waiting at end "
                "of run")
        return self._assemble(len(gens))

    # -- collective hook ---------------------------------------------------

    def _collective(
        self, state: _RankState, request: CollectiveRequest, now: float
    ) -> bool:
        if len(request.participants) <= 1:
            return False  # free no-op; expand for the exact result
        ckey = self._class_of(request.cid)
        state.blocked_on = request
        state.block_start = now
        if self._all_probed(request):
            key = (request.cid, request.seq)
            entry = self._pending.get(key)
            if entry is None:
                entry = self._pending[key] = []
            entry.append((state, request))
            if len(entry) == len(request.participants):
                del self._pending[key]
                self._satisfy_primary(entry, (ckey, request.seq))
        else:
            mkey = (ckey, request.seq)
            memo = self._memos.get(mkey)
            if memo is not None:
                self._join(state, request, memo)
            else:
                self._parked.setdefault(mkey, []).append((state, request))
        return True

    def _class_of(self, cid: tuple) -> tuple:
        ckey = self._class_by_cid.get(cid)
        if ckey is None:
            ckey = self._class_by_cid[cid] = self.symmetry.class_key(cid)
        return ckey

    def _all_probed(self, request: CollectiveRequest) -> bool:
        full = self._full_by_cid.get(request.cid)
        if full is None:
            probed = self._probed
            full = self._full_by_cid[request.cid] = all(
                probed[r] for r in request.participants)
        return full

    def _satisfy_primary(self, entry: list, mkey: tuple) -> None:
        """Fire a fully-probed collective; record or verify its memo."""
        req0 = entry[0][1]
        p = len(req0.participants)
        payloads: list[Any] = [None] * p
        nbytes_by_me = [0] * p
        start = 0.0
        for st, req in entry:
            payloads[req.me] = req.payload
            nbytes_by_me[req.me] = req.nbytes
            clock = st.stats.clock
            if clock > start:
                start = clock
        nbytes = _op_nbytes(req0.op, req0.root, entry)
        root = req0.root if req0.root is not None else 0
        # Participant-invariant costers (a collapse precondition) price
        # by communicator size, so the duration memo can drop the
        # participant tuple — same float, one coster call per class.
        dkey = (req0.op, req0.algorithm, p, root, nbytes, req0.segments,
                req0.cid[0] if req0.cid else None)
        duration = self._durations.get(dkey)
        if duration is None:
            duration = self._durations[dkey] = self.coster.collective_time(
                req0.op,
                req0.algorithm,
                req0.participants,
                root,
                nbytes,
                segments=req0.segments,
                cid=req0.cid,
            )
        finish = start + duration
        results = _op_results(req0.op, req0.root, p, payloads)
        rotated = req0.cid[0] in self.symmetry.rotated if req0.cid else False
        memo = self._memos.get(mkey)
        if memo is None:
            self._memos[mkey] = memo = _Memo(
                req0.op, req0.algorithm, req0.root, req0.segments, p,
                start, finish, nbytes_by_me, results,
            )
            waiting = self._parked.pop(mkey, None)
            if waiting:
                for st, req in waiting:
                    self._join(st, req, memo)
        elif (memo.start != start or memo.finish != finish
              or memo.op != req0.op or memo.algorithm != req0.algorithm
              or memo.segments != req0.segments or memo.p != p
              or (memo.root != req0.root if not rotated
                  else _rotate(memo.nbytes_by_me, memo.root or 0)
                  != _rotate(nbytes_by_me, root))
              or (not rotated and memo.nbytes_by_me != nbytes_by_me)):
            # Two primaries of one class disagreed: the class key is
            # too coarse for this run.
            raise SymmetryBroken(
                f"class {mkey[0]!r} primaries diverged at seq {mkey[1]}")
        self._events.push(
            finish, self._collective_done, (entry, results, finish)
        )

    def _join(self, state: _RankState, request: CollectiveRequest,
              memo: _Memo) -> None:
        """Satisfy a partially-probed member from its class memo."""
        rotated = (request.cid[0] in self.symmetry.rotated
                   if request.cid else False)
        if (request.op != memo.op
                or request.algorithm != memo.algorithm
                or (not rotated and request.root != memo.root)
                or request.segments != memo.segments
                or len(request.participants) != memo.p):
            raise SymmetryBroken(
                f"rank {state.stats.rank} announced "
                f"{request.op}/{request.algorithm} diverging from its "
                f"class memo")
        if rotated:
            # Read the memo at the root-relative position: the class
            # matches up to a rotation of the (participant-invariant)
            # root, so position `me` under root `r` corresponds to
            # position `me - r + memo.root` under the memoed root.
            me = (request.me - (request.root or 0)
                  + (memo.root or 0)) % memo.p
        else:
            me = request.me
        if request.nbytes != memo.nbytes_by_me[me]:
            raise SymmetryBroken(
                f"rank {state.stats.rank} announced {request.nbytes} "
                f"bytes, diverging from its class memo")
        if state.stats.clock > memo.start:
            raise SymmetryBroken(
                f"rank {state.stats.rank} arrived at "
                f"{state.stats.clock!r}, after its class started at "
                f"{memo.start!r}")
        value = memo.results[me]
        if not _phantom_ok(value):
            raise SymmetryBroken(
                "collective carries concrete data; unobserved members "
                "could contribute different values")
        # Inherited _collective_done: comm_time += finish - block_start,
        # then resume with a CollectiveReply — the same float operations
        # the rank's own communicator would have produced, since by
        # congruence its start/duration equal the memoed ones.
        if rotated and me != request.me:
            results = list(memo.results)
            results[request.me] = value
        else:
            results = memo.results
        self._events.push(
            memo.finish, self._collective_done,
            ([(state, request)], results, memo.finish),
        )

    # -- point-to-point collapse -------------------------------------------

    def _class_of_rank(self, rank: int) -> tuple:
        cls = self._rank_class.get(rank)
        if cls is None:
            cls = self._rank_class[rank] = self.symmetry.rank_class(rank)
        return cls

    def _next_occ(self, rank: int, kind: str, tag: tuple,
                  partner_cls: tuple) -> int:
        key = (rank, kind, tag, partner_cls)
        occ = self._occ.get(key, 0)
        self._occ[key] = occ + 1
        return occ

    def _check_tag(self, state: _RankState, tag: tuple) -> None:
        if tag[1] not in self.symmetry.p2p_tags:
            raise SymmetryBroken(
                f"rank {state.stats.rank} used undeclared p2p tag "
                f"{tag[1]!r}")

    def _record_post(self, key: tuple, time: float, nbytes: Any,
                     payload: Any) -> None:
        """Record one class post; verify against earlier class members
        and release any ops parked on it."""
        rec = self._posts.get(key)
        if rec is None:
            self._posts[key] = (time, nbytes, payload)
            waiting = self._waiters.pop(key, None)
            if waiting:
                for spec in waiting:
                    self._try_p2p(spec)
        elif rec[0] != time or rec[1] != nbytes:
            raise SymmetryBroken(
                f"p2p class members diverged on {key[0]!r} post "
                f"{key[4]} of tag {key[2][1]!r}")

    def _wire(self, src: int, dst: int, nbytes: int) -> float:
        key = (src, dst, nbytes)
        tt = self._wires.get(key)
        if tt is None:
            tt = self._wires[key] = self.network.transfer_time(
                src, dst, nbytes)
        return tt

    def _try_p2p(self, spec: list) -> None:
        """Fire a parked p2p op once its partner-class posts exist, or
        re-park it on the first missing one."""
        posts = self._posts
        needs = spec[-2], spec[-1]
        for key in needs:
            if key is not None and key not in posts:
                self._waiters.setdefault(key, []).append(spec)
                return
        kind, state, now, me, dst, src, nbytes, payload, need_d, need_s = spec
        stats = state.stats
        if kind == "sendrecv":
            d_time = posts[need_d][0]
            s_time, s_nbytes, s_payload = posts[need_s]
            finish_s = ((now if now >= d_time else d_time)
                        + self._wire(me, dst, nbytes))
            finish_r = ((now if now >= s_time else s_time)
                        + self._wire(src, me, s_nbytes))
            done = finish_s if finish_s > finish_r else finish_r
            self._events.push(
                done, self._p2p_sendrecv_done,
                (state, nbytes, s_payload, finish_r, finish_s))
        elif kind == "send":
            d_time = posts[need_d][0]
            finish = ((now if now >= d_time else d_time)
                      + self._wire(me, dst, nbytes))
            self._events.push(
                finish, self._p2p_send_done, (state, nbytes, finish))
        else:  # "recv"
            s_time, s_nbytes, s_payload = posts[need_s]
            finish = ((now if now >= s_time else s_time)
                      + self._wire(src, me, s_nbytes))
            self._events.push(
                finish, self._p2p_recv_done, (state, s_payload, finish))

    def _p2p_sendrecv_done(self, state: _RankState, nbytes: int,
                           payload: Any, finish_r: float,
                           finish_s: float) -> None:
        # Mirrors Engine._fused_recv_done + _fused_send_done for both
        # event orderings: the receive leg's charge lands first (from
        # the shared block_start), then the send tail extends the clock
        # to finish_s exactly when it completes later.
        stats = state.stats
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        stats.comm_time += finish_r - state.block_start
        if finish_r > stats.clock:
            stats.clock = finish_r
        if finish_s > finish_r:
            stats.comm_time += finish_s - finish_r
            stats.clock = finish_s
        self._resume(state, payload, stats.clock)

    def _p2p_send_done(self, state: _RankState, nbytes: int,
                       finish: float) -> None:
        stats = state.stats
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        stats.comm_time += finish - state.block_start
        self._resume(state, None, finish)

    def _p2p_recv_done(self, state: _RankState, payload: Any,
                       finish: float) -> None:
        state.stats.comm_time += finish - state.block_start
        self._resume(state, payload, finish)

    def _handle_sendrecv(self, state: _RankState,
                         request: SendRecvRequest, now: float) -> Any:
        self._check_tag(state, request.sendtag)
        self._check_tag(state, request.recvtag)
        if not _phantom_ok(request.payload):
            raise SymmetryBroken(
                f"rank {state.stats.rank} sent concrete data")
        me = state.stats.rank
        cls_me = self._class_of_rank(me)
        cls_dst = self._class_of_rank(request.dst)
        cls_src = self._class_of_rank(request.src)
        occ_s = self._next_occ(me, "s", request.sendtag, cls_dst)
        occ_r = self._next_occ(me, "r", request.recvtag, cls_src)
        self._record_post(("s", cls_me, request.sendtag, cls_dst, occ_s),
                          now, request.nbytes, request.payload)
        self._record_post(("r", cls_me, request.recvtag, cls_src, occ_r),
                          now, None, None)
        state.blocked_on = request
        state.block_start = now
        # My occ_s-th send to the dst class pairs (FIFO channel order)
        # with the dst class's occ_s-th receive from my class, and
        # symmetrically for the receive leg.
        self._try_p2p([
            "sendrecv", state, now, me, request.dst, request.src,
            request.nbytes, request.payload,
            ("r", cls_dst, request.sendtag, cls_me, occ_s),
            ("s", cls_src, request.recvtag, cls_me, occ_r),
        ])
        return _PARKED

    def _handle_send(self, state: _RankState, request: SendRequest,
                     now: float) -> Any:
        self._check_tag(state, request.tag)
        if not _phantom_ok(request.payload):
            raise SymmetryBroken(
                f"rank {state.stats.rank} sent concrete data")
        me = state.stats.rank
        cls_me = self._class_of_rank(me)
        cls_dst = self._class_of_rank(request.dst)
        occ = self._next_occ(me, "s", request.tag, cls_dst)
        self._record_post(("s", cls_me, request.tag, cls_dst, occ),
                          now, request.nbytes, request.payload)
        state.blocked_on = request
        state.block_start = now
        self._try_p2p([
            "send", state, now, me, request.dst, None,
            request.nbytes, request.payload,
            ("r", cls_dst, request.tag, cls_me, occ),
            None,
        ])
        return _PARKED

    def _handle_recv(self, state: _RankState, request: RecvRequest,
                     now: float) -> Any:
        if request.timeout is not None:
            raise SymmetryBroken(
                f"rank {state.stats.rank} posted a timed receive")
        self._check_tag(state, request.tag)
        me = state.stats.rank
        cls_me = self._class_of_rank(me)
        cls_src = self._class_of_rank(request.src)
        occ = self._next_occ(me, "r", request.tag, cls_src)
        self._record_post(("r", cls_me, request.tag, cls_src, occ),
                          now, None, None)
        state.blocked_on = request
        state.block_start = now
        self._try_p2p([
            "recv", state, now, me, None, request.src,
            None, None,
            None,
            ("s", cls_src, request.tag, cls_me, occ),
        ])
        return _PARKED

    # -- everything the congruence argument cannot cover -------------------

    def _refuse(self, state: _RankState, request: Any, now: float) -> Any:
        raise SymmetryBroken(
            f"rank {state.stats.rank} issued {request!r}; only "
            "collectives, compute and declared blocking p2p are "
            "collapsible")

    _handle_isend = _refuse
    _handle_irecv = _refuse
    _handle_wait = _refuse
    _handle_wait_handle = _refuse
    _handle_tuple = _refuse
    _handle_span_open = _refuse
    _handle_span_close = _refuse
    _handle_counter = _refuse

    # -- result assembly ---------------------------------------------------

    def _assemble(self, nranks: int) -> SimResult:
        """Replicate probed stats/results onto their twins (SoA gathers)."""
        sym = self.symmetry
        states = self._ranks
        p2p = bool(sym.p2p_tags)
        for st in states:
            s = st.stats
            if s.retries or s.timeouts or s.recoveries or s.fault_delay:
                raise SymmetryBroken(
                    f"rank {s.rank} has fault activity")
            if not p2p and (s.messages_sent or s.bytes_sent):
                raise SymmetryBroken(
                    f"rank {s.rank} has undeclared point-to-point "
                    f"activity")
            if not _phantom_ok(st.retval):
                raise SymmetryBroken(
                    f"rank {s.rank} returned concrete data")
            self._spans.finish(s.rank, s.clock)

        # Probe-slot arrays (structure-of-arrays view of the run)...
        clock = np.array([st.stats.clock for st in states])
        comm = np.array([st.stats.comm_time for st in states])
        comp = np.array([st.stats.compute_time for st in states])
        msgs = np.array([st.stats.messages_sent for st in states],
                        dtype=np.int64)
        byts = np.array([st.stats.bytes_sent for st in states],
                        dtype=np.int64)
        slot = np.full(nranks, -1, dtype=np.intp)
        for idx, st in enumerate(states):
            slot[st.stats.rank] = idx

        # ...gathered through the symmetry's twin map for unprobed
        # ranks, identity for probed ones.
        ranks = np.arange(nranks)
        on_probe = slot >= 0
        twin = np.where(on_probe, ranks, sym.twin_indices(ranks))
        tslot = slot[twin]
        if np.any(tslot < 0):  # pragma: no cover - probe-set invariant
            raise SymmetryBroken("twin map left the probe set")
        all_clock = clock[tslot]
        all_comm = comm[tslot]
        all_comp = comp[tslot]
        all_msgs = msgs[tslot]
        all_byts = byts[tslot]

        stats: list[RankStats] = []
        for r in range(nranks):
            if on_probe[r]:
                stats.append(states[slot[r]].stats)
            else:
                rs = RankStats(rank=r)
                rs.clock = float(all_clock[r])
                rs.comm_time = float(all_comm[r])
                rs.compute_time = float(all_comp[r])
                rs.messages_sent = int(all_msgs[r])
                rs.bytes_sent = int(all_byts[r])
                stats.append(rs)
        return_values = [states[tslot[r]].retval for r in range(nranks)]
        return SimResult(
            stats=stats,
            return_values=return_values,
            trace=self._trace,
            spans=self._spans.roots,
        )


# ---------------------------------------------------------------------------
# Symmetry declarations for the in-repo algorithms
# ---------------------------------------------------------------------------
#
# The class-key maps below are coupled, by design, to the communicator
# creation order of the rank programs (CartComm row = world child 0,
# col = 1; then outer row/outer col/inner row/inner col = 2..5 where
# the program creates them; the multilevel hierarchy's level comms at
# 2+2*lev / 3+2*lev).  docs/cost_model.md derives each map from the
# program's per-step clock evolution.


def summa_symmetry(s: int, t: int) -> GridSymmetry:
    """Flat SUMMA (and flat block-cyclic SUMMA): every row comm behaves
    like every other row comm, ditto columns — a 1x1 probe cross."""
    return GridSymmetry(s, t, 1, 1, {0: _const, 1: _const})


def hsumma_symmetry(s: int, t: int, I: int, J: int) -> GridSymmetry:
    """HSUMMA with an ``I x J`` group grid; probe one group's worth of
    full rows and columns.

    Within an outer step the guarded outer phases desynchronise ranks
    by their inner coordinates, so the class keys carry exactly the
    coordinates that phase order makes observable: outer-row comms
    split by ``jj`` (guard + seq alignment), outer-col comms by
    ``(ii, jj)`` (seq alignment + start-time split), inner-row comms
    by ``ii`` (start-time split), inner-col comms are uniform.

    Degenerate group strips simplify: a trivial outer dimension's
    broadcast is a free single-member no-op, so the desync (and the
    probe) shrinks with it.
    """
    si, tj = s // I, t // J
    if I == 1 and J == 1:
        # Both outer phases are free; the inner comms span full grid
        # rows/columns and stay in lockstep — SUMMA's cross probe.
        return GridSymmetry(s, t, 1, 1, {4: _const, 5: _const})
    if I == 1:
        # No outer-col phase, so nothing desynchronises by ii: the
        # inner comms run uniformly and only jj (outer-row guard)
        # structures the run.
        return GridSymmetry(s, t, 1, tj, {
            2: lambda color: color % tj,  # color = i*tj + jj
            4: _const,
            5: _const,
        })
    if J == 1:
        # No outer-row phase; outer-col comms need ii for sequence
        # alignment, and inner-row comms (whose members all share ii)
        # start at different times depending on ii == ik.
        return GridSymmetry(s, t, si, 1, {
            3: lambda color: color % si,  # color = j*si + ii
            4: lambda color: color % si,  # color = i*J + y = i
            5: _const,
        })
    return GridSymmetry(s, t, si, tj, {
        2: lambda color: color % tj,                      # color = i*tj + jj
        3: lambda color: (color % si, (color // si) % tj),  # = j*si + ii
        4: lambda color: (color // J) % si,               # color = i*J + y
        5: _const,                                        # color = j*I + x
    })


def cyclic_symmetry(s: int, t: int, I: int = 1, J: int = 1) -> GridSymmetry:
    """Block-cyclic SUMMA; the hierarchical variant interleaves the
    phases (outer-row, inner-row, outer-col, inner-col), which makes
    both inner families start uniformly — the outer families still
    need their guard coordinate for sequence alignment, because a
    guarded comm only announces in the steps its ``jj``/``ii`` matches
    the rotating owner."""
    if I * J <= 1:
        return summa_symmetry(s, t)
    si, tj = s // I, t // J
    if I == 1:
        return GridSymmetry(s, t, 1, tj, {
            2: lambda color: color % tj,
            4: _const,
            5: _const,
        })
    if J == 1:
        # Unlike HSUMMA's J=1 case, the inner-row phase here runs
        # *before* the guarded outer-col phase, so it starts uniformly.
        return GridSymmetry(s, t, si, 1, {
            3: lambda color: color % si,
            4: _const,
            5: _const,
        })
    return GridSymmetry(s, t, si, tj, {
        2: lambda color: color % tj,   # color = i*tj + jj
        3: lambda color: color % si,   # color = j*si + ii
        4: _const,
        5: _const,
    })


def cannon_symmetry(q: int) -> TorusShiftSymmetry:
    """Cannon on a ``q x q`` torus: four sendrecv families (skew A/B
    guarded by ``i > 0`` / ``j > 0``, then the per-step A/B ring
    shifts) on tags 1-4 and no collectives.

    Roles depend only on whether a rank sits on the guard boundary
    (row 0 / column 0) or adjacent to it, so the probe is the first
    two full rows plus the first two full columns with *clamped*
    twins (:class:`TorusShiftSymmetry`): every interior rank twins
    with (1, 1).  Breakage conditions (→ per-rank fallback): concrete
    tiles in the shifts, faults, ``q <= 2`` (the probe covers the
    grid, reported by the blocker as no-win).
    """
    return TorusShiftSymmetry(
        q, q, min(2, q), min(2, q), {},
        p2p_tags=frozenset({1, 2, 3, 4}),
    )


def fox_symmetry(q: int) -> GridSymmetry:
    """Fox on a ``q x q`` grid: per step a row broadcast from the
    rotating pivot column ``(i + k) % q`` (world child 0) plus a
    column ring roll of B on tag 5.

    Every rank does identical work each step — one class, a 1x1 probe
    cross — but the row comms root at different columns, so the row
    family matches its memo up to root *rotation*.  Breakage
    conditions: concrete tiles (roll payloads or broadcast pivots),
    faults, traffic outside tag 5.
    """
    return GridSymmetry(
        q, q, 1, 1, {0: _const},
        rotated=frozenset({0}),
        p2p_tags=frozenset({5}),
    )


def dns3d_symmetry(q: int) -> DnsSymmetry:
    """DNS 3-D on a ``q x q x q`` mesh; see :class:`DnsSymmetry`."""
    return DnsSymmetry(q)


def summa25d_symmetry(q: int, c: int) -> Layered25dSymmetry:
    """2.5D on a ``q x q x c`` stack; see :class:`Layered25dSymmetry`."""
    return Layered25dSymmetry(q, c)


def multilevel_symmetry(
    s: int, t: int,
    row_factors: Sequence[int],
    col_factors: Sequence[int],
) -> GridSymmetry:
    """The h-level hierarchy of ``hsumma_multilevel_program``: level
    ``lev``'s horizontal comm is world child ``2 + 2*lev`` (color
    ``(i, other col digits)``, key ``col digit lev``) and the vertical
    comm is child ``3 + 2*lev``, with broadcasts guarded by the deeper
    digits matching the step owner's.

    The level-0 digits of ``i``/``j`` are unobservable (no guard
    references them; they only select rootness, which a
    participant-invariant coster cannot see), so ranks collapse modulo
    the level-0 factor: probe ``(s / row_factors[0]) x
    (t / col_factors[0])``, and a comm's class keeps every digit the
    guards can read — the deeper digits of its fixed coordinate plus
    its deeper fixed split digits.  ``h = 1`` degenerates to the SUMMA
    cross; ``h = 2`` refines :func:`hsumma_symmetry` (same probe,
    finer comm classes — equally sound, verified en route).  Breakage
    conditions: ``row_factors[0] == 1`` (probe covers the grid),
    concrete tiles, faults, tracing spans.
    """
    rf = tuple(row_factors)
    cf = tuple(col_factors)
    h = len(rf)
    if h == 0 or len(cf) != h:
        raise SimulationError(
            f"bad multilevel factors: {rf!r} vs {cf!r}")

    def prod(xs: Sequence[int]) -> int:
        out = 1
        for v in xs:
            out *= v
        return out

    rbelow = [prod(rf[lev + 1:]) for lev in range(h)]
    cbelow = [prod(cf[lev + 1:]) for lev in range(h)]

    def row_tail(i: int) -> tuple:
        # Digits 1..h-1 of a row index (digit 0 dropped: unobservable).
        rem = i % rbelow[0]
        out = []
        for lev in range(1, h):
            d, rem = divmod(rem, rbelow[lev])
            out.append(d)
        return tuple(out)

    def col_tail(j: int) -> tuple:
        rem = j % cbelow[0]
        out = []
        for lev in range(1, h):
            d, rem = divmod(rem, cbelow[lev])
            out.append(d)
        return tuple(out)

    class_keys: dict[int, Callable[[Any], Any]] = {}
    for lev in range(h):
        def h_key(color: Any, lev: int = lev) -> tuple:
            i, cds = color
            # cds lists col digits q != lev ascending; drop digit 0.
            return (row_tail(i), cds if lev == 0 else cds[1:])

        def v_key(color: Any, lev: int = lev) -> tuple:
            j, rds = color
            return (col_tail(j), rds if lev == 0 else rds[1:])

        class_keys[2 + 2 * lev] = h_key
        class_keys[3 + 2 * lev] = v_key
    return GridSymmetry(s, t, s // rf[0], t // cf[0], class_keys)
