"""Symmetry-collapsed execution of the macro backend.

An SPMD run of a SUMMA-family algorithm on a homogeneous network has
only O(grid-dimension) *distinct* rank behaviours: rank ``(i, j)``'s
entire timeline — which collectives it announces, the guards it takes,
the sizes it ships, the virtual times it observes — is a function of
its structural role (inner coordinates modulo the group grid), not of
``(i, j)`` itself.  The per-rank macro backend nevertheless steps all
``s*t`` generators; at p=16384 that is tens of millions of generator
resumes pricing collectives whose answers repeat ``O(s)``-fold.

This module collapses that redundancy without giving up exactness:

* A runner *declares* its symmetry as a :class:`GridSymmetry` — which
  rows/columns of the grid form a covering **probe set**, and how a
  communicator's context id maps to an **equivalence class** of comms
  with bit-identical (start, finish) behaviour.
* :class:`CollapsedMacroEngine` steps only the probed ranks' generators
  through the inherited macro machinery (structure-of-arrays state for
  everyone else).  A collective whose participants are all probed fires
  normally and records a *memo* for its class; a collective with only
  some participants probed is satisfied from the memo — after checking
  the arrival clock, signature and payload size match it exactly.
* Any observation the congruence argument cannot cover — point-to-point
  traffic, spans, unknown communicators, a clock past the memoed start,
  concrete (non-phantom) payloads, leftover parked ranks — raises
  :class:`SymmetryBroken`, and
  :meth:`~repro.simulator.backends.MacroBackend.run_with_factory` falls
  back to the per-rank path with fresh generators.
* At the end, the unprobed ranks' stats and return values are
  replicated from their probed *twin* ``(i mod probe_rows,
  j mod probe_cols)`` via numpy gathers.  By the congruence argument
  (docs/cost_model.md, "Rank equivalence classes") the twin's floats
  are bit-identical to what the per-rank run would have produced, so
  the assembled :class:`~repro.simulator.tracing.SimResult` — including
  the max-over-ranks times — is exact, not approximate.

The collapse is *attempted*, never assumed: every run either proves its
own symmetry en route or falls back, and the property suite pins
bit-identity against the per-rank implementation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.network.model import Network
from repro.simulator.backends import MacroBackend, _op_nbytes, _op_results
from repro.simulator.engine import RankProgram, _RankState
from repro.simulator.events import EventQueue
from repro.simulator.requests import CollectiveRequest
from repro.simulator.spans import SpanRecorder
from repro.simulator.tracing import RankStats, SimResult


class SymmetryBroken(Exception):
    """The run made an observation the declared symmetry cannot cover.

    Internal control flow: callers
    (:meth:`~repro.simulator.backends.MacroBackend.run_with_factory`)
    catch it and rerun per-rank.  Never escapes to user code.
    """


def _const(color: int) -> int:
    """Class-key callable: all communicators of this child sequence
    behave identically (one class)."""
    return 0


@dataclasses.dataclass(frozen=True)
class GridSymmetry:
    """A runner's declaration of its rank-equivalence structure.

    Parameters
    ----------
    s, t:
        The process grid; world rank ``r`` sits at ``divmod(r, t)``.
    probe_rows, probe_cols:
        The probe set is grid rows ``0..probe_rows-1`` plus grid
        columns ``0..probe_cols-1``.  It must be chosen so that every
        equivalence class of communicators contains at least one comm
        whose participants are *all* probed (the class primary), and so
        that ``(i % probe_rows, j % probe_cols)`` is a behavioural twin
        of ``(i, j)``.  Flat SUMMA/cyclic: 1x1 (a cross).  HSUMMA with
        an ``I x J`` group grid: ``(s/I) x (t/J)`` (one full group row
        and column of groups).
    class_keys:
        Maps a communicator's world child sequence number (``cid[0]``
        for depth-1 communicators) to a callable turning its split
        color (``cid[1]``) into a class subkey.  Comms with equal
        ``(child_seq, subkey)`` must announce in lockstep: same
        per-comm collective sequence numbering, same (start, finish),
        same signature, same per-member payload sizes.  An announcement
        on any other communicator breaks the symmetry.
    """

    s: int
    t: int
    probe_rows: int
    probe_cols: int
    class_keys: Mapping[int, Callable[[int], Any]]

    def __post_init__(self) -> None:
        if self.s <= 0 or self.t <= 0:
            raise SimulationError(
                f"grid dims must be positive: {self.s}x{self.t}")
        if not (0 < self.probe_rows and 0 < self.probe_cols):
            raise SimulationError(
                f"probe dims must be positive: "
                f"{self.probe_rows}x{self.probe_cols}")

    @property
    def nranks(self) -> int:
        return self.s * self.t

    @property
    def covers_grid(self) -> bool:
        """True when the probe set is the whole grid (no collapse win)."""
        return self.probe_rows >= self.s or self.probe_cols >= self.t

    def probe_indices(self) -> list[int]:
        """World ranks in the probe set, ascending."""
        pr = min(self.probe_rows, self.s)
        pc = min(self.probe_cols, self.t)
        out = list(range(pr * self.t))
        for i in range(pr, self.s):
            base = i * self.t
            out.extend(range(base, base + pc))
        return out

    def class_key(self, cid: tuple) -> tuple:
        """Equivalence class of the communicator with context id ``cid``."""
        if len(cid) != 2:
            raise SymmetryBroken(
                f"collective on unexpected communicator depth: cid={cid!r}")
        child_seq, color = cid
        fn = self.class_keys.get(child_seq)
        if fn is None:
            raise SymmetryBroken(
                f"collective on undeclared communicator family "
                f"(child seq {child_seq})")
        return (child_seq, fn(color))


class _Memo:
    """What one class primary observed for one collective sequence."""

    __slots__ = ("op", "algorithm", "root", "segments", "p",
                 "start", "finish", "nbytes_by_me", "results")

    def __init__(self, op, algorithm, root, segments, p,
                 start, finish, nbytes_by_me, results):
        self.op = op
        self.algorithm = algorithm
        self.root = root
        self.segments = segments
        self.p = p
        self.start = start
        self.finish = finish
        self.nbytes_by_me = nbytes_by_me
        self.results = results


def _phantom_ok(value: Any) -> bool:
    """True when ``value`` carries no concrete data a partial comm's
    unobserved members could have influenced."""
    from repro.payloads import is_phantom

    if value is None or is_phantom(value):
        return True
    if isinstance(value, (list, tuple)):
        return all(_phantom_ok(v) for v in value)
    return False


class CollapsedMacroEngine(MacroBackend):
    """Macro backend stepping only the probe set of a symmetric grid.

    Constructed internally by
    :meth:`~repro.simulator.backends.MacroBackend.run_with_factory`;
    raises :class:`SymmetryBroken` the moment the run strays outside
    the declared symmetry (the caller then falls back per-rank).
    """

    def __init__(
        self,
        network: Network,
        *,
        symmetry: GridSymmetry,
        coster: Any = None,
        max_events: int = 200_000_000,
    ) -> None:
        super().__init__(network, coster=coster, max_events=max_events)
        self.symmetry = symmetry

    # -- run loop: Engine.run for a sparse rank subset ---------------------

    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        gens = list(programs)
        sym = self.symmetry
        if len(gens) != sym.nranks:
            raise SimulationError(
                f"{len(gens)} programs but symmetry declares a "
                f"{sym.s}x{sym.t} grid")
        if len(gens) > self.network.nranks:
            raise SimulationError(
                f"{len(gens)} programs but network only models "
                f"{self.network.nranks} ranks")

        probe = sym.probe_indices()
        probed = bytearray(len(gens))
        for r in probe:
            probed[r] = 1
        self._probed = probed
        # Only the probed generators ever start; the rest are dropped
        # unexecuted (their twins stand in for them).
        self._ranks = [_RankState(r, gens[r]) for r in probe]
        self._events = EventQueue()
        self._pending = {}
        self._durations = {}
        #: (class key, seq) -> _Memo recorded by the class primary.
        self._memos: dict[tuple, _Memo] = {}
        #: (class key, seq) -> [(state, request)] waiting for a primary.
        self._parked: dict[tuple, list] = {}
        self._full_by_cid: dict[tuple, bool] = {}
        self._class_by_cid: dict[tuple, tuple] = {}
        self._trace = []
        self._spans = SpanRecorder(len(gens))
        self._nevents = 0

        for state in self._ranks:
            self._resume(state, None, state.stats.clock)

        events = self._events
        max_events = self.max_events
        while events:
            _time, batch = events.pop_batch()
            self._nevents += len(batch)
            if self._nevents > max_events:
                raise SimulationError(
                    f"event cap of {max_events} exceeded; "
                    "likely a livelock in a rank program"
                )
            for _t, _seq, fn, args in batch:
                fn(*args)

        stuck = [s for s in self._ranks if not s.finished]
        if stuck:
            # Either an equivalence class never produced a fully-probed
            # primary (the declaration is too coarse for this run) or a
            # genuine deadlock; the per-rank fallback distinguishes them.
            raise SymmetryBroken(
                f"{len(stuck)} probed ranks left blocked "
                f"(first: rank {stuck[0].stats.rank} on "
                f"{stuck[0].blocked_on!r})")
        if self._parked or self._pending:
            raise SymmetryBroken(
                "collectives left waiting at end of run")
        return self._assemble(len(gens))

    # -- collective hook ---------------------------------------------------

    def _collective(
        self, state: _RankState, request: CollectiveRequest, now: float
    ) -> bool:
        if len(request.participants) <= 1:
            return False  # free no-op; expand for the exact result
        ckey = self._class_of(request.cid)
        state.blocked_on = request
        state.block_start = now
        if self._all_probed(request):
            key = (request.cid, request.seq)
            entry = self._pending.get(key)
            if entry is None:
                entry = self._pending[key] = []
            entry.append((state, request))
            if len(entry) == len(request.participants):
                del self._pending[key]
                self._satisfy_primary(entry, (ckey, request.seq))
        else:
            mkey = (ckey, request.seq)
            memo = self._memos.get(mkey)
            if memo is not None:
                self._join(state, request, memo)
            else:
                self._parked.setdefault(mkey, []).append((state, request))
        return True

    def _class_of(self, cid: tuple) -> tuple:
        ckey = self._class_by_cid.get(cid)
        if ckey is None:
            ckey = self._class_by_cid[cid] = self.symmetry.class_key(cid)
        return ckey

    def _all_probed(self, request: CollectiveRequest) -> bool:
        full = self._full_by_cid.get(request.cid)
        if full is None:
            probed = self._probed
            full = self._full_by_cid[request.cid] = all(
                probed[r] for r in request.participants)
        return full

    def _satisfy_primary(self, entry: list, mkey: tuple) -> None:
        """Fire a fully-probed collective; record or verify its memo."""
        req0 = entry[0][1]
        p = len(req0.participants)
        payloads: list[Any] = [None] * p
        nbytes_by_me = [0] * p
        start = 0.0
        for st, req in entry:
            payloads[req.me] = req.payload
            nbytes_by_me[req.me] = req.nbytes
            clock = st.stats.clock
            if clock > start:
                start = clock
        nbytes = _op_nbytes(req0.op, req0.root, entry)
        root = req0.root if req0.root is not None else 0
        # Participant-invariant costers (a collapse precondition) price
        # by communicator size, so the duration memo can drop the
        # participant tuple — same float, one coster call per class.
        dkey = (req0.op, req0.algorithm, p, root, nbytes, req0.segments,
                req0.cid[0] if req0.cid else None)
        duration = self._durations.get(dkey)
        if duration is None:
            duration = self._durations[dkey] = self.coster.collective_time(
                req0.op,
                req0.algorithm,
                req0.participants,
                root,
                nbytes,
                segments=req0.segments,
                cid=req0.cid,
            )
        finish = start + duration
        results = _op_results(req0.op, req0.root, p, payloads)
        memo = self._memos.get(mkey)
        if memo is None:
            self._memos[mkey] = memo = _Memo(
                req0.op, req0.algorithm, req0.root, req0.segments, p,
                start, finish, nbytes_by_me, results,
            )
            waiting = self._parked.pop(mkey, None)
            if waiting:
                for st, req in waiting:
                    self._join(st, req, memo)
        elif (memo.start != start or memo.finish != finish
              or memo.op != req0.op or memo.algorithm != req0.algorithm
              or memo.root != req0.root or memo.segments != req0.segments
              or memo.p != p or memo.nbytes_by_me != nbytes_by_me):
            # Two primaries of one class disagreed: the class key is
            # too coarse for this run.
            raise SymmetryBroken(
                f"class {mkey[0]!r} primaries diverged at seq {mkey[1]}")
        self._events.push(
            finish, self._collective_done, (entry, results, finish)
        )

    def _join(self, state: _RankState, request: CollectiveRequest,
              memo: _Memo) -> None:
        """Satisfy a partially-probed member from its class memo."""
        if (request.op != memo.op
                or request.algorithm != memo.algorithm
                or request.root != memo.root
                or request.segments != memo.segments
                or len(request.participants) != memo.p
                or request.nbytes != memo.nbytes_by_me[request.me]):
            raise SymmetryBroken(
                f"rank {state.stats.rank} announced "
                f"{request.op}/{request.algorithm} diverging from its "
                f"class memo")
        if state.stats.clock > memo.start:
            raise SymmetryBroken(
                f"rank {state.stats.rank} arrived at "
                f"{state.stats.clock!r}, after its class started at "
                f"{memo.start!r}")
        value = memo.results[request.me]
        if not _phantom_ok(value):
            raise SymmetryBroken(
                "collective carries concrete data; unobserved members "
                "could contribute different values")
        # Inherited _collective_done: comm_time += finish - block_start,
        # then resume with a CollectiveReply — the same float operations
        # the rank's own communicator would have produced, since by
        # congruence its start/duration equal the memoed ones.
        self._events.push(
            memo.finish, self._collective_done,
            ([(state, request)], memo.results, memo.finish),
        )

    # -- everything the congruence argument cannot cover -------------------

    def _refuse(self, state: _RankState, request: Any, now: float) -> Any:
        raise SymmetryBroken(
            f"rank {state.stats.rank} issued {request!r}; only "
            "collectives and compute are collapsible")

    _handle_send = _refuse
    _handle_recv = _refuse
    _handle_isend = _refuse
    _handle_irecv = _refuse
    _handle_sendrecv = _refuse
    _handle_wait = _refuse
    _handle_wait_handle = _refuse
    _handle_tuple = _refuse
    _handle_span_open = _refuse
    _handle_span_close = _refuse
    _handle_counter = _refuse

    # -- result assembly ---------------------------------------------------

    def _assemble(self, nranks: int) -> SimResult:
        """Replicate probed stats/results onto their twins (SoA gathers)."""
        sym = self.symmetry
        states = self._ranks
        for st in states:
            s = st.stats
            if (s.messages_sent or s.bytes_sent or s.retries
                    or s.timeouts or s.recoveries or s.fault_delay):
                raise SymmetryBroken(
                    f"rank {s.rank} has point-to-point or fault activity")
            if not _phantom_ok(st.retval):
                raise SymmetryBroken(
                    f"rank {s.rank} returned concrete data")
            self._spans.finish(s.rank, s.clock)

        # Probe-slot arrays (structure-of-arrays view of the run)...
        clock = np.array([st.stats.clock for st in states])
        comm = np.array([st.stats.comm_time for st in states])
        comp = np.array([st.stats.compute_time for st in states])
        slot = np.full(nranks, -1, dtype=np.intp)
        for idx, st in enumerate(states):
            slot[st.stats.rank] = idx

        # ...gathered through the twin map (i, j) -> (i % pr, j % pc)
        # for unprobed ranks, identity for probed ones.
        t = sym.t
        ranks = np.arange(nranks)
        gi, gj = ranks // t, ranks % t
        on_probe = slot >= 0
        twin = np.where(on_probe, ranks,
                        (gi % sym.probe_rows) * t + (gj % sym.probe_cols))
        tslot = slot[twin]
        if np.any(tslot < 0):  # pragma: no cover - probe-set invariant
            raise SymmetryBroken("twin map left the probe set")
        all_clock = clock[tslot]
        all_comm = comm[tslot]
        all_comp = comp[tslot]

        stats: list[RankStats] = []
        for r in range(nranks):
            if on_probe[r]:
                stats.append(states[slot[r]].stats)
            else:
                rs = RankStats(rank=r)
                rs.clock = float(all_clock[r])
                rs.comm_time = float(all_comm[r])
                rs.compute_time = float(all_comp[r])
                stats.append(rs)
        return_values = [states[tslot[r]].retval for r in range(nranks)]
        return SimResult(
            stats=stats,
            return_values=return_values,
            trace=self._trace,
            spans=self._spans.roots,
        )


# ---------------------------------------------------------------------------
# Symmetry declarations for the in-repo algorithms
# ---------------------------------------------------------------------------
#
# The class-key maps below are coupled, by design, to the communicator
# creation order of the rank programs (CartComm row = world child 0,
# col = 1; then outer row/outer col/inner row/inner col = 2..5 where
# the program creates them).  docs/cost_model.md derives each map from
# the program's per-step clock evolution.


def summa_symmetry(s: int, t: int) -> GridSymmetry:
    """Flat SUMMA (and flat block-cyclic SUMMA): every row comm behaves
    like every other row comm, ditto columns — a 1x1 probe cross."""
    return GridSymmetry(s, t, 1, 1, {0: _const, 1: _const})


def hsumma_symmetry(s: int, t: int, I: int, J: int) -> GridSymmetry:
    """HSUMMA with an ``I x J`` group grid; probe one group's worth of
    full rows and columns.

    Within an outer step the guarded outer phases desynchronise ranks
    by their inner coordinates, so the class keys carry exactly the
    coordinates that phase order makes observable: outer-row comms
    split by ``jj`` (guard + seq alignment), outer-col comms by
    ``(ii, jj)`` (seq alignment + start-time split), inner-row comms
    by ``ii`` (start-time split), inner-col comms are uniform.

    Degenerate group strips simplify: a trivial outer dimension's
    broadcast is a free single-member no-op, so the desync (and the
    probe) shrinks with it.
    """
    si, tj = s // I, t // J
    if I == 1 and J == 1:
        # Both outer phases are free; the inner comms span full grid
        # rows/columns and stay in lockstep — SUMMA's cross probe.
        return GridSymmetry(s, t, 1, 1, {4: _const, 5: _const})
    if I == 1:
        # No outer-col phase, so nothing desynchronises by ii: the
        # inner comms run uniformly and only jj (outer-row guard)
        # structures the run.
        return GridSymmetry(s, t, 1, tj, {
            2: lambda color: color % tj,  # color = i*tj + jj
            4: _const,
            5: _const,
        })
    if J == 1:
        # No outer-row phase; outer-col comms need ii for sequence
        # alignment, and inner-row comms (whose members all share ii)
        # start at different times depending on ii == ik.
        return GridSymmetry(s, t, si, 1, {
            3: lambda color: color % si,  # color = j*si + ii
            4: lambda color: color % si,  # color = i*J + y = i
            5: _const,
        })
    return GridSymmetry(s, t, si, tj, {
        2: lambda color: color % tj,                      # color = i*tj + jj
        3: lambda color: (color % si, (color // si) % tj),  # = j*si + ii
        4: lambda color: (color // J) % si,               # color = i*J + y
        5: _const,                                        # color = j*I + x
    })


def cyclic_symmetry(s: int, t: int, I: int = 1, J: int = 1) -> GridSymmetry:
    """Block-cyclic SUMMA; the hierarchical variant interleaves the
    phases (outer-row, inner-row, outer-col, inner-col), which makes
    both inner families start uniformly — the outer families still
    need their guard coordinate for sequence alignment, because a
    guarded comm only announces in the steps its ``jj``/``ii`` matches
    the rotating owner."""
    if I * J <= 1:
        return summa_symmetry(s, t)
    si, tj = s // I, t // J
    if I == 1:
        return GridSymmetry(s, t, 1, tj, {
            2: lambda color: color % tj,
            4: _const,
            5: _const,
        })
    if J == 1:
        # Unlike HSUMMA's J=1 case, the inner-row phase here runs
        # *before* the guarded outer-col phase, so it starts uniformly.
        return GridSymmetry(s, t, si, 1, {
            3: lambda color: color % si,
            4: _const,
            5: _const,
        })
    return GridSymmetry(s, t, si, tj, {
        2: lambda color: color % tj,   # color = i*tj + jj
        3: lambda color: color % si,   # color = j*si + ii
        4: _const,
        5: _const,
    })
