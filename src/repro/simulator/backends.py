"""Execution backends: one rank-program path from p=4 to p=2^20.

Every algorithm in this repository is written once, as a set of SPMD
rank generators.  A *backend* decides how much machinery executes them:

* :class:`DesBackend` — the full discrete-event engine.  Collectives
  expand into their exact per-message point-to-point schedules; every
  transfer is an event.  Bit-identical to the historical ``Engine``
  (it *is* the engine), and the reference semantics everything else is
  validated against.
* :class:`MacroBackend` — the same generators, but each
  :class:`~repro.simulator.requests.CollectiveRequest` is satisfied
  directly from a :class:`~repro.experiments.stepmodel.CollectiveCoster`
  oracle instead of being expanded: all participants synchronise at the
  latest arrival, the oracle prices the collective once, and every
  participant resumes at ``start + T``.  Point-to-point traffic and
  compute still run through the inherited event machinery, so
  algorithms mixing collectives with sends (block-cyclic, Cannon
  shifts, overlap variants' split-phase broadcasts) remain faithful.
  When the runner declares a :class:`~repro.simulator.collapse.
  GridSymmetry` and the run is eligible (participant-invariant coster,
  no faults/contention/tracing), :meth:`MacroBackend.run_with_factory`
  steps only a covering *probe set* of ranks and replicates the rest
  from their behavioural twins — bit-identical to the per-rank path,
  ``O(s + t)`` generators instead of ``s * t`` (see
  :mod:`repro.simulator.collapse` and ``docs/cost_model.md``).
* :class:`~repro.simulator.predictor.PredictorBackend` — no stepping at
  all: the runners compose the coster's closed forms phase by phase
  (``backend="predictor"``).  Exact for total/compute time versus the
  macro backend on homogeneous networks; see ``docs/cost_model.md``
  for the documented tolerance on ``comm_time``.

On homogeneous networks the macro path reproduces the DES makespan
*exactly* for the SUMMA family (see ``tests/properties``): the bcast
root is always the latest participant, and the binomial/Van de Geijn
schedules on power-of-two communicators finish all ranks
simultaneously with every rank continuously blocked — so the
barrier-per-collective abstraction loses nothing.  What the macro
backend trades away is per-message detail *within* a collective:
``messages_sent``/``bytes_sent`` do not count macro-satisfied
collectives, per-transfer traces inside them are absent, and on
heterogeneous topologies desynchronisation inside a collective is
approximated by the coster.

Why it scales: a p=16384 HSUMMA step is ~3 events instead of ~10^5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.network.model import Network
from repro.payloads import combine_payloads
from repro.simulator.engine import Engine, RankProgram, _RankState
from repro.simulator.requests import CollectiveReply, CollectiveRequest
from repro.simulator.tracing import SimResult

#: Sentinel for "no previous payload" in the reply-reuse loop; never a
#: value a collective can produce.
_NOTHING = object()


class Backend(ABC):
    """Executes a set of SPMD rank programs and returns a
    :class:`~repro.simulator.tracing.SimResult`."""

    @abstractmethod
    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        """Run one generator per rank to completion."""


class DesBackend(Engine, Backend):
    """Full discrete-event execution (the reference semantics).

    Identical to :class:`~repro.simulator.engine.Engine` — the alias
    exists so call sites name the backend they chose.
    """


class MacroBackend(Engine, Backend):
    """Step-synchronous execution: collectives priced by a cost oracle.

    Parameters
    ----------
    network:
        Network model; used for any point-to-point traffic the programs
        issue and as the source of the default coster's parameters.
    coster:
        A :class:`~repro.experiments.stepmodel.CollectiveCoster`.
        Defaults to the analytic closed forms on a plain homogeneous
        network and to the micro-DES oracle (exact per-collective
        simulation, memoised) on anything with topology.
    contention, collect_trace, max_events, eager_threshold:
        As on :class:`~repro.simulator.engine.Engine`; they govern the
        point-to-point machinery, which is inherited unchanged.
    symmetry:
        Optional :class:`~repro.simulator.collapse.GridSymmetry`
        declaring the run's rank-equivalence structure.  Only
        :meth:`run_with_factory` uses it (to attempt the collapsed
        fast path); :meth:`run` always executes per rank.
    """

    _inline_compute = True

    def __init__(
        self,
        network: Network,
        *,
        coster: Any = None,
        contention: bool = False,
        collect_trace: bool = False,
        max_events: int = 200_000_000,
        eager_threshold: int = 0,
        faults: Any = None,
        symmetry: Any = None,
    ) -> None:
        if faults is not None and not getattr(faults, "empty", False):
            # The coster oracle prices whole collectives analytically;
            # it has no notion of per-message drops, degraded windows or
            # escalation, so silently accepting a schedule would report
            # healthy timings for a faulty run.
            raise ConfigurationError(
                "the macro backend does not support fault injection; "
                "use backend='des' for faulted runs"
            )
        super().__init__(
            network,
            contention=contention,
            collect_trace=collect_trace,
            max_events=max_events,
            eager_threshold=eager_threshold,
        )
        if coster is None:
            coster = _default_coster(network, contention=contention)
        self.coster = coster
        self.symmetry = symmetry
        #: How the last :meth:`run_with_factory` call executed:
        #: ``{"mode": "collapsed", "probed": k}`` or
        #: ``{"mode": "per-rank", "reason": ...}``.  Diagnostics only.
        self.collapse_report: dict[str, Any] = {
            "mode": "per-rank", "reason": "run_with_factory not used"}

    def run_with_factory(self, make_programs) -> SimResult:
        """Run ``make_programs()``, collapsing symmetric ranks when safe.

        When a :class:`~repro.simulator.collapse.GridSymmetry` was
        declared and the configuration is eligible, only a covering
        probe set of rank generators is stepped and the rest are
        replicated from their twins — bit-identical to :meth:`run` by
        the congruence argument in ``docs/cost_model.md``, and verified
        en route: any observation outside the declared symmetry makes
        the attempt raise internally, after which this method falls
        back to :meth:`run` with *fresh* generators from
        ``make_programs``.  ``self.collapse_report`` records which path
        executed and why.
        """
        reason = self._collapse_blocker()
        if reason is None:
            from repro.simulator.collapse import (
                CollapsedMacroEngine,
                SymmetryBroken,
            )

            engine = CollapsedMacroEngine(
                self.network,
                symmetry=self.symmetry,
                coster=self.coster,
                max_events=self.max_events,
            )
            try:
                sim = engine.run(make_programs())
            except SymmetryBroken as broken:
                reason = str(broken)
            else:
                self.collapse_report = {
                    "mode": "collapsed",
                    "probed": len(self.symmetry.probe_indices()),
                    "ranks": self.symmetry.nranks,
                }
                return sim
        self.collapse_report = {"mode": "per-rank", "reason": reason}
        return self.run(make_programs())

    def _collapse_blocker(self) -> str | None:
        """Why the collapsed path cannot be attempted, or None."""
        if self.symmetry is None:
            return "no grid symmetry declared"
        if not getattr(self.coster, "participant_invariant", False):
            return "coster depends on participant identity"
        if self.contention:
            return "contention modelling enabled"
        if self.collect_trace:
            return "transfer tracing enabled"
        if self.eager_threshold:
            return "eager protocol changes p2p completion semantics"
        if self.symmetry.covers_grid:
            return "probe set covers the whole grid"
        return None

    def run(self, programs: Iterable[RankProgram]) -> SimResult:
        #: (cid, seq) -> [(rank state, its request)]; a collective fires
        #: once every participant has arrived.
        self._pending: dict[tuple, list[tuple[_RankState, CollectiveRequest]]] = {}
        #: coster result cache; costers are deterministic in the full
        #: argument set, and bulk-synchronous algorithms repeat the
        #: same (op, size, bytes) shape thousands of times.
        self._durations: dict[tuple, float] = {}
        return super().run(programs)

    # -- the collective hook -------------------------------------------------

    def _collective(
        self, state: _RankState, request: CollectiveRequest, now: float
    ) -> bool:
        if len(request.participants) <= 1:
            # Single-rank collectives are free no-ops; expanding them
            # costs nothing and reuses the exact result semantics.
            return False
        state.blocked_on = request
        state.block_start = now
        key = (request.cid, request.seq)
        entry = self._pending.get(key)
        if entry is None:
            entry = self._pending[key] = []
        entry.append((state, request))
        if len(entry) == len(request.participants):
            del self._pending[key]
            self._satisfy(entry)
        return True

    def _satisfy(
        self, entry: list[tuple[_RankState, CollectiveRequest]]
    ) -> None:
        req0 = entry[0][1]
        p = len(req0.participants)
        payloads: list[Any] = [None] * p
        start = 0.0
        for st, req in entry:
            payloads[req.me] = req.payload
            clock = st.stats.clock
            if clock > start:
                start = clock
        nbytes = _op_nbytes(req0.op, req0.root, entry)
        root = req0.root if req0.root is not None else 0
        key = (req0.op, req0.algorithm, req0.participants, root, nbytes,
               req0.segments, req0.cid)
        duration = self._durations.get(key)
        if duration is None:
            duration = self._durations[key] = self.coster.collective_time(
                req0.op,
                req0.algorithm,
                req0.participants,
                root,
                nbytes,
                segments=req0.segments,
                cid=req0.cid,
            )
        finish = start + duration
        results = _op_results(req0.op, req0.root, p, payloads)
        self._events.push(
            finish, self._collective_done, (entry, results, finish)
        )

    def _collective_done(
        self,
        entry: list[tuple[_RankState, CollectiveRequest]],
        results: list[Any],
        finish: float,
    ) -> None:
        resume = self._resume
        reply = None
        prev = _NOTHING
        for st, req in entry:
            st.stats.comm_time += finish - st.block_start
            value = results[req.me]
            if reply is None or value is not prev:
                # bcast/allgather/allreduce/barrier hand every rank
                # the same object; one reply wrapper serves them all.
                reply = CollectiveReply(value)
                prev = value
            resume(st, reply, finish)


def _default_coster(network: Network, *, contention: bool) -> Any:
    from repro.experiments.stepmodel import AnalyticCoster, MicroDesCoster
    from repro.network.homogeneous import HomogeneousNetwork

    if isinstance(network, HomogeneousNetwork) and network.intra_params is None:
        return AnalyticCoster(network.params)
    return MicroDesCoster(network, contention=contention)


def _op_nbytes(
    op: str,
    root: int | None,
    entry: list[tuple[_RankState, CollectiveRequest]],
) -> int:
    """Wire size following the coster convention: the root's total
    payload for distribution ops, the largest per-rank contribution for
    contribution ops."""
    if op in ("bcast", "scatter"):
        for _, req in entry:
            if req.me == root:
                return req.nbytes
        return 0
    if op == "barrier":
        return 0
    return max(req.nbytes for _, req in entry)


def _op_results(
    op: str, root: int | None, p: int, payloads: list[Any]
) -> list[Any]:
    """Per-participant results (indexed by communicator rank), matching
    the expanded algorithms' return conventions."""
    if op == "bcast":
        return [payloads[root]] * p
    if op == "scatter":
        parts = payloads[root]
        return [parts[i] for i in range(p)]
    if op == "gather":
        return [payloads if i == root else None for i in range(p)]
    if op == "allgather":
        return [payloads] * p
    if op in ("reduce", "allreduce"):
        acc = payloads[0]
        for contribution in payloads[1:]:
            acc = combine_payloads(acc, contribution)
        if op == "allreduce":
            return [acc] * p
        return [acc if i == root else None for i in range(p)]
    if op == "barrier":
        return [None] * p
    raise ConfigurationError(f"macro backend cannot satisfy op {op!r}")


def resolve_backend(
    backend: Any,
    network: Network,
    *,
    contention: bool = False,
    collect_trace: bool = False,
    eager_threshold: int = 0,
    coster: Any = None,
    faults: Any = None,
    symmetry: Any = None,
) -> Backend:
    """Turn a backend spec into a ready engine.

    ``backend`` may be None or ``"des"`` (full discrete-event),
    ``"macro"`` (coster-satisfied collectives), ``"predictor"``
    (closed-form composition — only meaningful through the algorithm
    runners, which compute the prediction without building an engine;
    resolving it here returns a :class:`~repro.simulator.predictor.
    PredictorBackend` whose :meth:`run` explains that), or an
    already-built :class:`~repro.simulator.engine.Engine` /
    :class:`Backend` instance, which is returned as-is (its own
    network/options win).

    ``faults`` is a :class:`repro.faults.FaultSchedule`; only the
    discrete-event path can honour one (the macro backend raises, and a
    prebuilt engine must have been constructed with the schedule).
    ``symmetry`` is a :class:`~repro.simulator.collapse.GridSymmetry`
    enabling the macro backend's collapsed fast path; the other
    backends ignore it.
    """
    active = faults is not None and not getattr(faults, "empty", False)
    if isinstance(backend, (Engine, Backend)):
        if active and getattr(backend, "_faults", None) is not faults:
            raise ConfigurationError(
                "a prebuilt engine cannot adopt a fault schedule; pass "
                "faults= to the engine constructor instead"
            )
        return backend
    if backend is None or backend == "des":
        return DesBackend(
            network,
            contention=contention,
            collect_trace=collect_trace,
            eager_threshold=eager_threshold,
            faults=faults,
        )
    if backend == "macro":
        return MacroBackend(
            network,
            coster=coster,
            contention=contention,
            collect_trace=collect_trace,
            eager_threshold=eager_threshold,
            faults=faults,
            symmetry=symmetry,
        )
    if backend == "predictor":
        from repro.simulator.predictor import PredictorBackend

        return PredictorBackend(network, faults=faults)
    raise ConfigurationError(
        f"unknown backend {backend!r} (expected 'des', 'macro', "
        "'predictor', or an Engine instance)"
    )
