"""Closed-form performance prediction: the zero-stepping backend.

The macro backend executes rank generators and satisfies every
collective from a :class:`~repro.experiments.stepmodel.CollectiveCoster`
oracle.  On a homogeneous fault-free network the resulting virtual
times follow a *fixed critical chain* per algorithm step — e.g. one
SUMMA step is exactly ``clock += T_row; clock += T_col; clock += g`` —
so the whole run can be priced without ever building generators,
communicators or an event queue.  This module composes those chains
directly from the coster's analytic forms (see ``docs/cost_model.md``
for the derivations and the congruence argument).

Fidelity contract versus ``backend="macro"`` on the same network:

* ``total_time`` and ``compute_time`` are **bit-identical** — the
  predictor performs the same float additions in the same order as the
  critical rank's clock in the macro engine.
* ``comm_time`` is bit-identical for the flat variants (SUMMA, cyclic
  SUMMA) and agrees within a few ULPs (documented as 1e-9 relative)
  for the hierarchical variants, where macro ranks accumulate the same
  per-step phase times under different groupings.

The prediction carries **one representative rank** in
``SimResult.stats`` (a p=2^20 grid would otherwise materialise a
million ``RankStats``) and empty ``return_values``; the runners build
the phantom ``C`` themselves.  Use ``backend="predictor"`` through
:func:`repro.core.summa.run_summa` / :func:`repro.core.hsumma.
run_hsumma` / :func:`repro.core.cyclic.run_cyclic` or the CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import ConfigurationError
from repro.network.model import Network
from repro.simulator.backends import Backend
from repro.simulator.tracing import RankStats, SimResult


class PredictorBackend(Backend):
    """Marker backend returned by ``resolve_backend("predictor")``.

    The predictor never steps rank programs, so :meth:`run` cannot
    exist in a meaningful form — the algorithm runners detect
    ``backend="predictor"`` *before* building programs and call the
    ``predict_*`` functions below instead.  Resolving the name still
    succeeds (so generic plumbing can validate backend specs), but
    executing it raises with directions.
    """

    def __init__(self, network: Network, *, faults: Any = None) -> None:
        if faults is not None and not getattr(faults, "empty", False):
            raise ConfigurationError(
                "backend='predictor' cannot run: feature 'fault "
                "injection' requires execution — closed forms price "
                "healthy runs only; fallback: use backend='des' for "
                "faulted runs"
            )
        self.network = network

    def run(self, programs: Any) -> SimResult:
        raise ConfigurationError(
            "the predictor backend composes closed forms and cannot "
            "execute rank programs; call it through the algorithm "
            "runners (run_summa/run_hsumma/run_cyclic/run_cannon/"
            "run_fox/run_dns3d/run_25d with backend='predictor') or "
            "the CLI"
        )


def _refuse(name: str, feature: str, detail: str, fallback: str) -> None:
    """Raise the predictor's structured refusal.

    Every refusal names the offending *feature* and the cheapest
    backend that supports it, so a caller (or the planner) can react
    programmatically instead of parsing prose.
    """
    raise ConfigurationError(
        f"backend='predictor' cannot price {name}: feature "
        f"{feature!r} requires execution — {detail}; "
        f"fallback: use {fallback}"
    )


def _require_predictable(
    name: str,
    *,
    phantom: bool,
    faults: Any,
    verify: Any,
    contention: bool,
    trace: bool = False,
) -> None:
    """Validate a runner's arguments for ``backend="predictor"``.

    The predictor produces timings only; anything that needs actual
    execution — concrete data, fault injection, the verifier's
    recorder, contention modelling, transfer tracing — has no closed
    form and must use a simulating backend.  Each refusal names the
    offending feature and suggests the fallback backend.
    """
    from repro.verify.session import coerce_verify

    if not phantom:
        _refuse(
            name, "concrete data",
            "the predictor composes closed forms and never computes a "
            "concrete C; pass PhantomArray inputs (scale mode)",
            "backend='des' or backend='macro' for real data",
        )
    if faults is not None and not getattr(faults, "empty", False):
        _refuse(
            name, "fault injection",
            "closed forms price healthy runs only (retransmission "
            "schedules depend on event interleaving)",
            "backend='des' for faulted runs",
        )
    if coerce_verify(verify) is not None:
        _refuse(
            name, "verify",
            "the predictor runs no rank programs, so there is nothing "
            "for the verifier's recorder to observe",
            "backend='des' or backend='macro' with verify=",
        )
    if contention:
        _refuse(
            name, "contention",
            "the closed forms assume an uncontended network",
            "backend='des' with contention=True",
        )
    if trace:
        _refuse(
            name, "trace",
            "the predictor produces no transfers or spans to record",
            "backend='des' or backend='macro' with trace=True",
        )


def _refuse_pipelined(name: str, algorithm: str | None) -> None:
    """Refuse the segmented broadcast family (except the grandfathered
    plain ``pipelined`` chain, whose bulk closed form predates this
    policy).

    In a DES run the family's pre-posted stage receives overlap the
    neighbouring gemm and the next step's broadcast; the predictor's
    serial phase chain would price every stage bulk-synchronously and
    silently overstate the run it claims to predict.
    """
    if algorithm in ("segmented", "fourcolor", "hypersystolic"):
        _refuse(
            name, f"pipelined broadcast {algorithm}",
            "the phase chain prices collectives bulk-synchronously and "
            "has no model for the stage overlap the segmented schedule "
            "exists for",
            "backend='macro' (oracle pricing, same closed forms) or "
            "backend='des'",
        )


def _resolve_coster(network: Network, coster: Any) -> Any:
    from repro.simulator.backends import _default_coster

    if coster is None:
        coster = _default_coster(network, contention=False)
    if not getattr(coster, "participant_invariant", False):
        raise ConfigurationError(
            "backend='predictor' cannot price this run: feature "
            "'participant-dependent costs' requires stepping — this "
            "network/coster prices collectives per participant set "
            "(heterogeneous links or a topology-positional coster), "
            "not per participant count; fallback: use backend='macro' "
            "(per-rank stepping with the same coster) or backend='des'"
        )
    return coster


class _Chain:
    """The critical rank's clock chain, mirroring the macro engine's
    float operations exactly.

    A macro collective finishes at ``start + T`` with ``start`` the
    latest participant clock and charges ``finish - block_start`` of
    comm time; on the critical chain ``start == block_start == clock``,
    so each phase is ``finish = clock + T; comm += finish - clock;
    clock = finish`` — reproduced verbatim here.  Compute requests add
    ``seconds`` to both the compute counter and the clock, as in
    :meth:`repro.simulator.engine.Engine._handle_compute`.
    """

    __slots__ = ("clock", "comm", "compute", "_coster", "_network",
                 "_memo")

    def __init__(self, coster: Any, network: Network | None = None) -> None:
        self.clock = 0.0
        self.comm = 0.0
        self.compute = 0.0
        self._coster = coster
        self._network = network
        self._memo: dict[tuple, float] = {}

    def collective(self, op: str, algorithm: str | None, p: int,
                   nbytes: int, *, segments: Any = None,
                   cid0: int = 0) -> None:
        if p <= 1:
            # The engine expands single-rank collectives as free no-ops.
            return
        key = (op, algorithm, p, nbytes, segments, cid0)
        duration = self._memo.get(key)
        if duration is None:
            duration = self._memo[key] = self._coster.collective_time(
                op, algorithm, tuple(range(p)), 0, nbytes,
                segments=segments, cid=(cid0, 0),
            )
        finish = self.clock + duration
        self.comm += finish - self.clock
        self.clock = finish

    def p2p(self, nbytes: int) -> None:
        """One blocking point-to-point hop on the critical chain.

        On the chains below the partner always posted at or before the
        critical rank's clock, so the engine's
        ``finish = max(now, partner_post) + wire`` collapses to
        ``finish = clock + wire`` — the same float addition, with the
        wire time taken from the (uniform) network.
        """
        key = ("p2p", nbytes)
        duration = self._memo.get(key)
        if duration is None:
            duration = self._memo[key] = self._network.transfer_time(
                0, 1, nbytes)
        finish = self.clock + duration
        self.comm += finish - self.clock
        self.clock = finish

    def compute_seconds(self, seconds: float) -> None:
        self.compute += seconds
        self.clock = self.clock + seconds

    def result(self) -> SimResult:
        rep = RankStats(rank=0, clock=self.clock, comm_time=self.comm,
                        compute_time=self.compute)
        return SimResult(stats=[rep], return_values=[])


def _bcast_alg(override: Any, options: Any) -> str:
    if override is not None:
        return override
    if options is not None:
        return options.bcast
    from repro.mpi.comm import CollectiveOptions

    return CollectiveOptions().bcast


def _reduce_alg(options: Any) -> str:
    if options is not None:
        return options.reduce
    from repro.mpi.comm import CollectiveOptions

    return CollectiveOptions().reduce


def _segments(options: Any) -> Any:
    return options.bcast_segments if options is not None else None


def predict_summa(
    cfg: Any,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a SUMMA run (``cfg`` as
    :class:`repro.core.summa.SummaConfig`); see the module docstring
    for the fidelity contract."""
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    alg = _bcast_alg(cfg.bcast, options)
    _refuse_pipelined("a SUMMA run", alg)
    seg = _segments(options)
    chain = _Chain(coster)
    mloc, nloc = cfg.m // cfg.s, cfg.n // cfg.t
    a_bytes = mloc * cfg.block * a_itemsize
    b_bytes = cfg.block * nloc * b_itemsize
    gemm = gemm_flops(mloc, cfg.block, nloc) * gamma
    for _ in range(cfg.nsteps):
        chain.collective("bcast", alg, cfg.t, a_bytes, segments=seg, cid0=0)
        chain.collective("bcast", alg, cfg.s, b_bytes, segments=seg, cid0=1)
        chain.compute_seconds(gemm)
    return chain.result()


def predict_hsumma(
    cfg: Any,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of an HSUMMA run (``cfg`` as
    :class:`repro.core.hsumma.HSummaConfig`).

    Per outer step the critical chain is outer-row, outer-col, then
    ``inner_steps`` repetitions of inner-row, inner-col, gemm — the
    order every macro rank's clock converges to (the guarded outer
    phases desynchronise ranks within a step; the first unguarded
    inner collective re-synchronises them at the latest arrival).
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    outer_alg = _bcast_alg(cfg.outer_bcast, options)
    inner_alg = _bcast_alg(cfg.inner_bcast, options)
    _refuse_pipelined("an HSUMMA run", outer_alg)
    _refuse_pipelined("an HSUMMA run", inner_alg)
    seg = _segments(options)
    chain = _Chain(coster)
    mloc, nloc = cfg.m // cfg.s, cfg.n // cfg.t
    si, tj = cfg.inner_s, cfg.inner_t
    a_outer = mloc * cfg.outer_block * a_itemsize
    b_outer = cfg.outer_block * nloc * b_itemsize
    a_inner = mloc * cfg.inner_block * a_itemsize
    b_inner = cfg.inner_block * nloc * b_itemsize
    gemm = gemm_flops(mloc, cfg.inner_block, nloc) * gamma
    for _ in range(cfg.outer_steps):
        chain.collective("bcast", outer_alg, cfg.J, a_outer,
                         segments=seg, cid0=2)
        chain.collective("bcast", outer_alg, cfg.I, b_outer,
                         segments=seg, cid0=3)
        for _ in range(cfg.inner_steps):
            chain.collective("bcast", inner_alg, tj, a_inner,
                             segments=seg, cid0=4)
            chain.collective("bcast", inner_alg, si, b_inner,
                             segments=seg, cid0=5)
            chain.compute_seconds(gemm)
    return chain.result()


def predict_cyclic(
    cfg: Any,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a block-cyclic (H)SUMMA run (``cfg``
    as :class:`repro.core.cyclic.CyclicConfig`, blocking schedule).

    The flat variant is two broadcasts and a gemm per rotating pivot;
    the hierarchical variant follows :func:`repro.core.cyclic.
    cyclic_summa_program`'s ``hier_blocking`` order (outer-row,
    inner-row, outer-col, inner-col).  The overlap schedule posts
    split-phase broadcasts through the point-to-point machinery and
    has no closed form here.
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    alg = _bcast_alg(None, options)
    _refuse_pipelined("a block-cyclic run", alg)
    seg = _segments(options)
    chain = _Chain(coster)
    mloc, nloc = cfg.m // cfg.s, cfg.n // cfg.t
    a_bytes = mloc * cfg.nb * a_itemsize
    b_bytes = cfg.nb * nloc * b_itemsize
    gemm = gemm_flops(mloc, cfg.nb, nloc) * gamma
    if not cfg.hierarchical:
        for _ in range(cfg.nsteps):
            chain.collective("bcast", alg, cfg.t, a_bytes,
                             segments=seg, cid0=0)
            chain.collective("bcast", alg, cfg.s, b_bytes,
                             segments=seg, cid0=1)
            chain.compute_seconds(gemm)
        return chain.result()
    si, tj = cfg.s // cfg.I, cfg.t // cfg.J
    for _ in range(cfg.nsteps):
        chain.collective("bcast", alg, cfg.J, a_bytes, segments=seg, cid0=2)
        chain.collective("bcast", alg, tj, a_bytes, segments=seg, cid0=4)
        chain.collective("bcast", alg, cfg.I, b_bytes, segments=seg, cid0=3)
        chain.collective("bcast", alg, si, b_bytes, segments=seg, cid0=5)
        chain.compute_seconds(gemm)
    return chain.result()


@dataclasses.dataclass(frozen=True)
class CannonConfig:
    """Shape of a Cannon run on a square ``q x q`` torus."""

    m: int
    l: int
    n: int
    q: int

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"grid dim must be >= 1, got {self.q}")
        for label, dim in (("m", self.m), ("l", self.l), ("n", self.n)):
            if dim % self.q:
                raise ConfigurationError(
                    f"{label}={dim} not divisible by grid dim {self.q}")


@dataclasses.dataclass(frozen=True)
class FoxConfig:
    """Shape of a Fox run on a square ``q x q`` grid."""

    m: int
    l: int
    n: int
    q: int

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"grid dim must be >= 1, got {self.q}")
        for label, dim in (("m", self.m), ("l", self.l), ("n", self.n)):
            if dim % self.q:
                raise ConfigurationError(
                    f"{label}={dim} not divisible by grid dim {self.q}")


@dataclasses.dataclass(frozen=True)
class Dns3dConfig:
    """Shape of a 3-D (DNS) run on a ``q x q x q`` mesh."""

    m: int
    l: int
    n: int
    q: int

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ConfigurationError(f"mesh dim must be >= 1, got {self.q}")
        for label, dim in (("m", self.m), ("l", self.l), ("n", self.n)):
            if dim % self.q:
                raise ConfigurationError(
                    f"{label}={dim} not divisible by mesh dim {self.q}")


@dataclasses.dataclass(frozen=True)
class Summa25dConfig:
    """Shape of a 2.5D run: ``q x q`` layer grid, replication ``c``.

    Mirrors :func:`repro.algorithms.algo25d._layer_grid`'s constraints
    so a planner-built config fails fast instead of at replay time.
    """

    m: int
    l: int
    n: int
    q: int
    c: int

    def __post_init__(self) -> None:
        if self.c < 1:
            raise ConfigurationError(
                f"replication c must be >= 1, got {self.c}")
        if self.q < 1:
            raise ConfigurationError(f"grid dim must be >= 1, got {self.q}")
        if self.q % self.c:
            raise ConfigurationError(
                f"2.5D step split needs c | q (q={self.q}, c={self.c})")
        for label, dim in (("m", self.m), ("l", self.l), ("n", self.n)):
            if dim % self.q:
                raise ConfigurationError(
                    f"{label}={dim} not divisible by grid dim {self.q}")

    @property
    def nprocs(self) -> int:
        return self.q * self.q * self.c


def predict_cannon(
    cfg: CannonConfig,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a Cannon run.

    The chain follows a doubly-interior rank (``i >= 1, j >= 1``):
    skew A, skew B, then ``q`` rounds of gemm and (except after the
    last) the A and B ring shifts.  The round-0 A shift resynchronises
    every rank at the interior rank's clock (its wait for the skewed
    neighbour dominates), so this chain's final clock is the run's
    ``total_time`` bit-for-bit; per-rank ``comm_time`` groups the same
    phase floats differently on the boundary ranks, hence the
    documented 1e-9 relative tolerance on comm.
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    _refuse_pipelined("Cannon's algorithm", _bcast_alg(None, options))
    chain = _Chain(coster, network)
    q = cfg.q
    mloc, lloc, nloc = cfg.m // q, cfg.l // q, cfg.n // q
    a_bytes = mloc * lloc * a_itemsize
    b_bytes = lloc * nloc * b_itemsize
    gemm = gemm_flops(mloc, lloc, nloc) * gamma
    if q > 1:
        chain.p2p(a_bytes)  # skew A
        chain.p2p(b_bytes)  # skew B
    for step in range(q):
        chain.compute_seconds(gemm)
        if step == q - 1:
            break
        chain.p2p(a_bytes)  # shift A
        chain.p2p(b_bytes)  # shift B
    return chain.result()


def predict_fox(
    cfg: FoxConfig,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a Fox run.

    Fully lockstep: every round is a row broadcast of the pivot A
    tile, a gemm, and (except after the last) the B roll — the same
    floats on every rank, so total, compute *and* comm replay
    bit-identically.
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    alg = _bcast_alg(None, options)
    _refuse_pipelined("Fox's algorithm", alg)
    seg = _segments(options)
    chain = _Chain(coster, network)
    q = cfg.q
    mloc, lloc, nloc = cfg.m // q, cfg.l // q, cfg.n // q
    a_bytes = mloc * lloc * a_itemsize
    b_bytes = lloc * nloc * b_itemsize
    gemm = gemm_flops(mloc, lloc, nloc) * gamma
    for k in range(q):
        chain.collective("bcast", alg, q, a_bytes, segments=seg, cid0=0)
        chain.compute_seconds(gemm)
        if k == q - 1:
            break
        chain.p2p(b_bytes)  # roll B
    return chain.result()


def predict_dns3d(
    cfg: Dns3dConfig,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a 3-D (DNS) run.

    The chain follows rank ``(k, k, k)`` (``k >= 1``), which receives
    both routed tiles: route A hop, j-axis broadcast, route B hop,
    i-axis broadcast, one gemm, and the k-axis reduction.  Every axis
    broadcast starts at the routed tile's arrival and every reduction
    starts at the (global) gemm finish, so the final clock is
    ``total_time`` bit-for-bit.
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    alg = _bcast_alg(None, options)
    _refuse_pipelined("the 3-D (DNS) algorithm", alg)
    seg = _segments(options)
    chain = _Chain(coster, network)
    q = cfg.q
    mloc, lloc, nloc = cfg.m // q, cfg.l // q, cfg.n // q
    a_bytes = mloc * lloc * a_itemsize
    b_bytes = lloc * nloc * b_itemsize
    if q > 1:
        chain.p2p(a_bytes)  # route A (i,j,0) -> (i,j,j)
    chain.collective("bcast", alg, q, a_bytes, segments=seg, cid0=0)
    if q > 1:
        chain.p2p(b_bytes)  # route B (i,j,0) -> (i,j,i)
    chain.collective("bcast", alg, q, b_bytes, segments=seg, cid0=1)
    chain.compute_seconds(gemm_flops(mloc, lloc, nloc) * gamma)
    chain.collective("reduce", _reduce_alg(options), q,
                     mloc * nloc * 8, cid0=2)
    return chain.result()


def predict_summa25d(
    cfg: Summa25dConfig,
    *,
    network: Network,
    options: Any = None,
    gamma: float = 0.0,
    coster: Any = None,
    a_itemsize: int = 8,
    b_itemsize: int = 8,
) -> SimResult:
    """Closed-form prediction of a 2.5D run.

    Fully lockstep: two layer-axis replication broadcasts, then each
    layer's ``q/c`` pivot steps (row broadcast, column broadcast,
    gemm), then the layer-axis reduction of the partial C — every rank
    performs the same floats, so total, compute and comm replay
    bit-identically against the macro backend.
    """
    from repro.blocks.ops import gemm_flops

    coster = _resolve_coster(network, coster)
    alg = _bcast_alg(None, options)
    _refuse_pipelined("the 2.5D algorithm", alg)
    seg = _segments(options)
    chain = _Chain(coster, network)
    q, c = cfg.q, cfg.c
    mloc, lloc, nloc = cfg.m // q, cfg.l // q, cfg.n // q
    a_bytes = mloc * lloc * a_itemsize
    b_bytes = lloc * nloc * b_itemsize
    gemm = gemm_flops(mloc, lloc, nloc) * gamma
    chain.collective("bcast", alg, c, a_bytes, segments=seg, cid0=0)
    chain.collective("bcast", alg, c, b_bytes, segments=seg, cid0=0)
    for _ in range(q // c):
        chain.collective("bcast", alg, q, a_bytes, segments=seg, cid0=1)
        chain.collective("bcast", alg, q, b_bytes, segments=seg, cid0=2)
        chain.compute_seconds(gemm)
    chain.collective("reduce", _reduce_alg(options), c,
                     mloc * nloc * 8, cid0=0)
    return chain.result()
