"""Named, nestable spans over virtual time — the tracing vocabulary.

The paper's argument is an *attribution* argument: HSUMMA wins because
the broadcast phases shrink (Tables I/II, Figs. 5-9).  Flat per-rank
scalars cannot answer "how much of the makespan was the inter-group
broadcast vs. the intra-group broadcast vs. the local gemm?", so rank
programs (and the MPI layer automatically) open spans around the
phases they execute:

    yield from ctx.span("bcast.inter", step=k)
    a_piv = yield from outer_row.bcast(a_piv, root=yk)
    yield from ctx.end_span()

A span is an interval of one rank's virtual clock.  Spans nest (each
collective opens a ``coll.*`` child inside whatever phase span is
open), carry free-form attributes, and are assembled by the engine
into per-rank trees exposed on
:class:`~repro.simulator.tracing.SimResult`.

Opening and closing a span costs **zero virtual time**: the requests
are absorbed inline by the engine without scheduling an event, so a
traced run produces bit-identical timings to an untraced one.  When
tracing is off (the default) the span helpers yield nothing at all and
the engine sees no requests — zero overhead of any kind.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Mapping

from repro.errors import SimulationError
from repro.simulator.requests import _Request

#: Separator for span paths ("bcast.inter/coll.bcast").
PATH_SEP = "/"


class SpanOpenRequest(_Request):
    """Open a span named ``name`` on the yielding rank (zero time)."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: Mapping[str, Any] | None = None):
        if not name:
            raise SimulationError("span name must be non-empty")
        self.name = name
        self.attrs = dict(attrs) if attrs else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanOpen({self.name!r})"


class SpanCloseRequest(_Request):
    """Close the innermost open span (zero time).

    ``attrs`` are merged into the span at close time, so values only
    known at the end (e.g. the delivered payload size on a non-root
    broadcast rank) can still be recorded.
    """

    __slots__ = ("attrs",)

    def __init__(self, attrs: Mapping[str, Any] | None = None):
        self.attrs = dict(attrs) if attrs else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SpanClose()"


@dataclasses.dataclass
class Span:
    """One named interval of a rank's virtual clock.

    Attributes
    ----------
    name:
        Phase name; dotted by convention ("bcast.inter", "coll.bcast").
    rank:
        World rank the span ran on.
    start, end:
        Virtual open/close times.  ``end`` is patched when the span
        closes (spans still open when the rank finishes are closed at
        its final clock).
    attrs:
        Free-form annotations (step index, algorithm, payload bytes...).
    children:
        Spans opened while this one was open, in open order.
    """

    name: str
    rank: int
    start: float
    end: float = 0.0
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)
    children: list["Span"] = dataclasses.field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (children are sequential
        on a single-threaded rank, so this is an exact subtraction)."""
        return self.duration - sum(c.duration for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Iterator["Span"]:
        """Every span in this subtree named ``name``."""
        for span in self.walk():
            if span.name == name:
                yield span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, rank={self.rank}, "
            f"[{self.start:.3g}, {self.end:.3g}], "
            f"{len(self.children)} children)"
        )


class SpanRecorder:
    """Engine-side assembler of per-rank span trees.

    The engine forwards every :class:`SpanOpenRequest` /
    :class:`SpanCloseRequest` here with the yielding rank's current
    virtual clock; the recorder maintains one open-span stack per rank
    and collects completed top-level spans as roots.
    """

    def __init__(self, nranks: int):
        self._stacks: list[list[Span]] = [[] for _ in range(nranks)]
        self.roots: list[Span] = []
        #: Open spans across all ranks; zero on untraced runs, letting
        #: the engine skip the per-transfer current_path call entirely.
        self.nopen = 0

    def open(self, rank: int, name: str, attrs: dict[str, Any], time: float) -> None:
        span = Span(name=name, rank=rank, start=time, attrs=attrs)
        stack = self._stacks[rank]
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        stack.append(span)
        self.nopen += 1

    def close(self, rank: int, attrs: dict[str, Any], time: float) -> None:
        stack = self._stacks[rank]
        if not stack:
            raise SimulationError(
                f"rank {rank} closed a span but none is open"
            )
        span = stack.pop()
        span.end = time
        if attrs:
            span.attrs.update(attrs)
        self.nopen -= 1

    def finish(self, rank: int, time: float) -> None:
        """Force-close anything still open when the rank's program ends."""
        stack = self._stacks[rank]
        while stack:
            stack.pop().end = time
            self.nopen -= 1

    def current_path(self, rank: int) -> str | None:
        """Slash-joined names of the rank's open spans (outermost first),
        or None when no span is open — used to attribute transfers."""
        stack = self._stacks[rank]
        if not stack:
            return None
        return PATH_SEP.join(s.name for s in stack)


def iter_spans(roots: list[Span]) -> Iterator[Span]:
    """Every span under ``roots``, depth-first in recording order."""
    for root in roots:
        yield from root.walk()


def phase_of(span_path: str | None) -> str | None:
    """Top-level phase name of a span path ("bcast.inter/coll.bcast"
    -> "bcast.inter"); None stays None."""
    if span_path is None:
        return None
    head, _, _ = span_path.partition(PATH_SEP)
    return head
