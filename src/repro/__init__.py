"""repro — reproduction of "Hierarchical Parallel Matrix Multiplication
on Large-Scale Distributed Memory Platforms" (Quintin, Hasanov,
Lastovetsky; ICPP 2013).

The package implements HSUMMA and SUMMA (plus the classical baselines)
over a deterministic discrete-event simulation of distributed-memory
platforms, the paper's analytic cost models, and drivers regenerating
every figure and table of its evaluation.

Quick start::

    import numpy as np
    from repro import multiply

    A = np.random.default_rng(0).standard_normal((256, 256))
    B = np.random.default_rng(1).standard_normal((256, 256))
    result = multiply(A, B, nprocs=16, algorithm="hsumma", block=16)
    assert np.allclose(result.C, A @ B)
    print(result.total_time, result.comm_time)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-reproduction comparison.
"""

from repro.core.api import ALGORITHMS, MatmulResult, multiply
from repro.core.factorize_api import KERNELS, FactorResult, factorize
from repro.core.hsumma import HSummaConfig, run_hsumma
from repro.core.summa import SummaConfig, run_summa
from repro.core.tuning import tune_group_count
from repro.errors import ReproError
from repro.metrics import (
    critical_path,
    phase_rollup,
    spans_to_csv,
    write_chrome_trace,
)
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray
from repro.platforms import bluegene_p, exascale_2012, grid5000_graphene
from repro.simulator.runtime import run_spmd

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "FactorResult",
    "KERNELS",
    "factorize",
    "HSummaConfig",
    "HockneyParams",
    "MatmulResult",
    "PhantomArray",
    "ReproError",
    "SummaConfig",
    "bluegene_p",
    "critical_path",
    "exascale_2012",
    "grid5000_graphene",
    "multiply",
    "phase_rollup",
    "run_hsumma",
    "run_spmd",
    "run_summa",
    "spans_to_csv",
    "tune_group_count",
    "write_chrome_trace",
    "__version__",
]
