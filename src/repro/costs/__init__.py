"""``repro.costs`` — the unified cost registry.

One package owns every SUMMA/HSUMMA/broadcast closed form:

* :mod:`repro.costs.registry` — per-collective costs.  The
  :class:`CostQuery` → :class:`CostEstimate` interface, the broadcast
  ``L/W`` factor table (discrete *and* smooth flavours of each
  algorithm), and the non-broadcast collective forms.
* :mod:`repro.costs.closed_forms` — per-algorithm costs: the paper's
  equations (2)-(12) plus the 2.5D replication form.
* :mod:`repro.costs.lower_bounds` — the memory-independent and
  memory-dependent communication lower bounds every plan is measured
  against.

``repro.models``, ``repro.collectives.cost`` and (through the costers)
``repro.simulator.predictor`` are thin consumers of this package;
``tests/costs/test_drift.py`` pins that they cannot drift apart.
"""

from repro.costs.closed_forms import (
    algo25d_communication_cost,
    critical_ratio,
    crossover_processor_count,
    hsumma_bandwidth_factor,
    hsumma_beats_summa,
    hsumma_communication_cost,
    hsumma_latency_factor,
    hsumma_optimal_vdg_cost,
    matmul_flops,
    predicted_extremum_kind,
    summa_bandwidth_factor,
    summa_communication_cost,
    summa_computation_cost,
    summa_latency_factor,
    vdg_cost_derivative,
)
from repro.costs.lower_bounds import (
    LowerBound,
    bandwidth_lower_bound_elements,
    latency_lower_bound_terms,
    lower_bound_time,
    memory_dependent_bound_elements,
    memory_independent_bound_elements,
)
from repro.costs.registry import (
    BCAST_ENTRIES,
    PIPELINED_BCASTS,
    SMOOTH_MODELS,
    BcastEntry,
    BroadcastModel,
    CostEstimate,
    CostQuery,
    bcast_bandwidth_factor,
    bcast_entry,
    bcast_latency_factor,
    estimate,
    PipelineDepthWarning,
    hypersystolic_depth,
    hypersystolic_stride,
    max_pipeline_segments,
    optimal_pipeline_segments,
    segmented_fill_slots,
)

__all__ = [
    "BCAST_ENTRIES",
    "PIPELINED_BCASTS",
    "SMOOTH_MODELS",
    "BcastEntry",
    "BroadcastModel",
    "CostEstimate",
    "CostQuery",
    "LowerBound",
    "algo25d_communication_cost",
    "bandwidth_lower_bound_elements",
    "bcast_bandwidth_factor",
    "bcast_entry",
    "bcast_latency_factor",
    "critical_ratio",
    "crossover_processor_count",
    "estimate",
    "hsumma_bandwidth_factor",
    "hsumma_beats_summa",
    "hsumma_communication_cost",
    "hsumma_latency_factor",
    "hsumma_optimal_vdg_cost",
    "hypersystolic_depth",
    "hypersystolic_stride",
    "latency_lower_bound_terms",
    "lower_bound_time",
    "matmul_flops",
    "memory_dependent_bound_elements",
    "memory_independent_bound_elements",
    "PipelineDepthWarning",
    "max_pipeline_segments",
    "optimal_pipeline_segments",
    "predicted_extremum_kind",
    "segmented_fill_slots",
    "summa_bandwidth_factor",
    "summa_communication_cost",
    "summa_computation_cost",
    "summa_latency_factor",
    "vdg_cost_derivative",
]
