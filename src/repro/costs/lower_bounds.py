"""Communication lower bounds for parallel matrix multiplication.

Every plan the planner returns is measured against the
memory-independent lower bound of Ballard, Demmel, Holtz, Lipshitz and
Schwartz ("Strong Scaling of Matrix Multiplication Algorithms and
Memory-Independent Communication Lower Bounds", SPAA'12): for the
classical (non-Strassen) algorithm some rank must move

    ``W >= Omega(n^2 / p^(2/3))``   elements,

regardless of how much memory each rank has.  With per-rank memory
``M`` the older memory-dependent bound (Irony-Toledo-Tiskin) applies
too:

    ``W >= n^3 / (p * sqrt(8 * M)) - M``   elements,

and the effective bandwidth floor is the larger of the two.  The
constants here follow the Theta-statements (leading constant 1 for the
memory-independent term), so reported gaps are honest up to the
bounds' own constant factors — the *scaling* with ``n``, ``p`` and
``M`` is exact.  2D algorithms (SUMMA/HSUMMA, ``M = Theta(n^2/p)``)
sit on the memory-dependent branch at ``Theta(n^2/sqrt(p))``; 2.5D/3D
replication walks down toward the memory-independent floor.

The latency floor is ``ceil(log2 p)`` messages: the entries of ``C``
depend on all of ``A`` and ``B``, so information must fan in/out
across all ``p`` ranks, which no schedule does in fewer rounds.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ModelError


def memory_independent_bound_elements(n: float, p: float) -> float:
    """BDHLS memory-independent bandwidth floor, in elements per rank:
    ``n^2 / p^(2/3)`` (zero at ``p == 1`` — everything is local)."""
    if n <= 0 or p < 1:
        raise ModelError(f"need n > 0, p >= 1; got n={n}, p={p}")
    if p == 1:
        return 0.0
    return n * n / p ** (2.0 / 3.0)


def memory_dependent_bound_elements(
    n: float, p: float, memory_elements: float
) -> float:
    """Irony-Toledo-Tiskin bandwidth floor for per-rank memory ``M``
    (elements): ``n^3 / (p * sqrt(8 M)) - M``, clamped at zero."""
    if n <= 0 or p < 1 or memory_elements <= 0:
        raise ModelError(
            f"need n > 0, p >= 1, M > 0; got n={n}, p={p}, M={memory_elements}"
        )
    if p == 1:
        return 0.0
    return max(0.0, n**3 / (p * math.sqrt(8.0 * memory_elements)) - memory_elements)


def bandwidth_lower_bound_elements(
    n: float, p: float, memory_elements: float | None = None
) -> float:
    """Elements some rank must communicate: the max of the applicable
    bounds (memory-independent always; memory-dependent when a per-rank
    memory is given)."""
    w = memory_independent_bound_elements(n, p)
    if memory_elements is not None:
        w = max(w, memory_dependent_bound_elements(n, p, memory_elements))
    return w


def latency_lower_bound_terms(p: float) -> float:
    """Messages on the critical path: ``ceil(log2 p)`` fan-in rounds."""
    if p < 1:
        raise ModelError(f"need p >= 1, got {p}")
    if p <= 1:
        return 0.0
    return float(math.ceil(math.log2(p)))


@dataclasses.dataclass(frozen=True)
class LowerBound:
    """The time floor a plan is measured against.

    ``comm_seconds = latency_terms * alpha + elements * beta`` and
    ``seconds = comm_seconds + compute_seconds`` (perfect overlap of
    communication with computation is *not* assumed — the floor adds
    them, which is itself a valid floor only for the bulk-synchronous
    schedules this repository prices; an overlap schedule is floored by
    ``max`` instead, reported as ``overlap_seconds``).
    """

    elements: float
    latency_terms: float
    comm_seconds: float
    compute_seconds: float

    @property
    def seconds(self) -> float:
        """Bulk-synchronous floor: communication plus computation."""
        return self.comm_seconds + self.compute_seconds

    @property
    def overlap_seconds(self) -> float:
        """Floor under perfect communication/computation overlap."""
        return max(self.comm_seconds, self.compute_seconds)


def lower_bound_time(
    n: float,
    p: float,
    alpha: float,
    beta: float,
    gamma: float = 0.0,
    *,
    memory_elements: float | None = None,
) -> LowerBound:
    """Assemble the full time floor for an ``n x n`` multiply on ``p``
    ranks (``beta`` per **element**, matching the closed forms)."""
    if alpha < 0 or beta < 0 or gamma < 0:
        raise ModelError(
            f"need alpha, beta, gamma >= 0; got {alpha}, {beta}, {gamma}"
        )
    elements = bandwidth_lower_bound_elements(n, p, memory_elements)
    latency = latency_lower_bound_terms(p)
    return LowerBound(
        elements=elements,
        latency_terms=latency,
        comm_seconds=latency * alpha + elements * beta,
        compute_seconds=2.0 * n**3 / p * gamma,
    )
