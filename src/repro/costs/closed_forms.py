"""Algorithm-level closed forms — the paper's equations (2)-(12).

These used to live in ``repro.models.summa_model`` /
``repro.models.hsumma_model`` / ``repro.models.optimizer`` while the
predictor and the per-collective layer carried parallel copies; they
now live here, built on the registry's smooth broadcast factors
(:data:`repro.costs.registry.SMOOTH_MODELS`), and the ``repro.models``
modules are thin re-export shims.  ``beta`` is per *element*
throughout (multiply a per-byte beta by the word size to convert), and
``p`` may be non-integer — the extremum analysis differentiates
through ``sqrt(p)``.

Also here: the 2.5D matmul communication cost (Solomonik-Demmel) the
planner uses to price replication, and the raw flop count.
"""

from __future__ import annotations

import math

from repro.costs.registry import BroadcastModel, SMOOTH_MODELS
from repro.errors import ModelError

VANDEGEIJN_MODEL = SMOOTH_MODELS["vandegeijn"]


def matmul_flops(n: float) -> float:
    """Classical-algorithm flop count ``2 n^3`` of an ``n x n`` multiply."""
    if n <= 0:
        raise ModelError(f"need n > 0, got {n}")
    return 2.0 * n**3


# ---------------------------------------------------------------------------
# SUMMA — equation (2) and Tables I/II
# ---------------------------------------------------------------------------

def _check_summa(n: float, p: float, b: float) -> None:
    if n <= 0 or p < 1 or b <= 0:
        raise ModelError(f"need n > 0, p >= 1, b > 0; got n={n}, p={p}, b={b}")
    if b > n:
        raise ModelError(f"block size {b} exceeds matrix size {n}")


def summa_communication_cost(
    n: float,
    p: float,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel,
) -> float:
    """Equation (2): total SUMMA communication time.

    Per step, the pivot column and pivot row (each ``n/sqrt(p) * b``
    elements) are broadcast among ``sqrt(p)`` ranks; there are ``n/b``
    steps:

        ``T_S(n, p) = 2 * ( (n/b) * L(sqrt(p)) * alpha
                            + (n^2/sqrt(p)) * W(sqrt(p)) * beta )``
    """
    _check_summa(n, p, b)
    q = math.sqrt(p)
    steps = n / b
    volume = n * n / q  # elements broadcast per direction in total
    return 2.0 * (steps * model.L(q) * alpha + volume * model.W(q) * beta)


def summa_latency_factor(n: float, p: float, b: float, model: BroadcastModel) -> float:
    """The multiplier on ``alpha`` (Table I/II 'Latency Factor' column)."""
    _check_summa(n, p, b)
    return 2.0 * (n / b) * model.L(math.sqrt(p))


def summa_bandwidth_factor(n: float, p: float, model: BroadcastModel) -> float:
    """The multiplier on ``beta`` (Table I/II 'Bandwidth Factor' column)."""
    if n <= 0 or p < 1:
        raise ModelError(f"need n > 0 and p >= 1; got n={n}, p={p}")
    q = math.sqrt(p)
    return 2.0 * (n * n / q) * model.W(q)


def summa_computation_cost(n: float, p: float, gamma: float) -> float:
    """The ``2 n^3 / p`` flops at ``gamma`` seconds each (Tables I/II)."""
    if n <= 0 or p < 1 or gamma < 0:
        raise ModelError(f"need n > 0, p >= 1, gamma >= 0; got {n}, {p}, {gamma}")
    return 2.0 * n**3 / p * gamma


# ---------------------------------------------------------------------------
# HSUMMA — equations (3)-(5) and the HSUMMA rows of Tables I/II
# ---------------------------------------------------------------------------

def _check_hsumma(n: float, p: float, G: float, b: float, B: float) -> None:
    if n <= 0 or p < 1 or b <= 0 or B <= 0:
        raise ModelError(
            f"need n > 0, p >= 1, b > 0, B > 0; got n={n}, p={p}, b={b}, B={B}"
        )
    if not (1 <= G <= p):
        raise ModelError(f"group count G={G} outside [1, p={p}]")
    if b > B:
        raise ModelError(f"inner block {b} must be <= outer block {B}")


def hsumma_communication_cost(
    n: float,
    p: float,
    G: float,
    b: float,
    alpha: float,
    beta: float,
    model: BroadcastModel,
    *,
    B: float | None = None,
    outer_model: BroadcastModel | None = None,
) -> float:
    """Equations (3)-(5) generalised to ``b != B`` and to a different
    broadcast algorithm per level (``outer_model`` defaults to
    ``model``):

        ``T_HS = 2*(n/B)*L(sqrt(G))*alpha + 2*(n/b)*L(sqrt(p/G))*alpha
               + 2*(n^2/sqrt(p)) * (W(sqrt(G)) + W(sqrt(p/G))) * beta``

    ``G = 1`` and ``G = p`` recover SUMMA exactly (asserted by tests).
    """
    B = b if B is None else B
    _check_hsumma(n, p, G, b, B)
    om = outer_model or model
    qG = math.sqrt(G)
    qI = math.sqrt(p / G)
    latency = 2.0 * ((n / B) * om.L(qG) + (n / b) * model.L(qI)) * alpha
    volume = n * n / math.sqrt(p)
    bandwidth = 2.0 * volume * (om.W(qG) + model.W(qI)) * beta
    return latency + bandwidth


def hsumma_latency_factor(
    n: float, p: float, G: float, b: float, model: BroadcastModel, *, B: float | None = None
) -> float:
    """Multiplier on ``alpha`` (HSUMMA rows of Tables I/II, both levels)."""
    B = b if B is None else B
    _check_hsumma(n, p, G, b, B)
    return 2.0 * (
        (n / B) * model.L(math.sqrt(G)) + (n / b) * model.L(math.sqrt(p / G))
    )


def hsumma_bandwidth_factor(
    n: float, p: float, G: float, model: BroadcastModel
) -> float:
    """Multiplier on ``beta`` (HSUMMA rows of Tables I/II, both levels)."""
    if n <= 0 or p < 1 or not (1 <= G <= p):
        raise ModelError(f"bad arguments n={n}, p={p}, G={G}")
    volume = n * n / math.sqrt(p)
    return 2.0 * volume * (
        model.W(math.sqrt(G)) + model.W(math.sqrt(p / G))
    )


def hsumma_optimal_vdg_cost(
    n: float, p: float, b: float, alpha: float, beta: float
) -> float:
    """The paper's equation (12): HSUMMA cost at the optimum
    ``G = sqrt(p)`` with the Van de Geijn broadcast and ``b = B``:

    ``(log2(p) + 4*(p^(1/4) - 1)) * (n/b) * alpha
      + 8*(1 - p^(-1/4)) * (n^2/sqrt(p)) * beta``
    """
    if n <= 0 or p < 1 or b <= 0:
        raise ModelError(f"need n > 0, p >= 1, b > 0; got {n}, {p}, {b}")
    q4 = p ** 0.25
    latency = (math.log2(p) + 4.0 * (q4 - 1.0)) * (n / b) * alpha
    bandwidth = 8.0 * (1.0 - 1.0 / q4) * (n * n / math.sqrt(p)) * beta
    return latency + bandwidth


# ---------------------------------------------------------------------------
# Extremum analysis — equations (6)-(11)
# ---------------------------------------------------------------------------

def critical_ratio(n: float, b: float, p: float) -> float:
    """The paper's threshold ``2*n*b/p`` (eq. 10/11), in elements."""
    if n <= 0 or b <= 0 or p < 1:
        raise ModelError(f"need n > 0, b > 0, p >= 1; got {n}, {b}, {p}")
    return 2.0 * n * b / p


def hsumma_beats_summa(
    n: float, b: float, p: float, alpha: float, beta: float
) -> bool:
    """Equation (10): True when ``alpha/beta > 2nb/p`` so HSUMMA's cost
    has its minimum at ``G = sqrt(p)`` strictly inside ``(1, p)``."""
    if alpha <= 0 or beta <= 0:
        raise ModelError(f"need alpha, beta > 0; got {alpha}, {beta}")
    return alpha / beta > critical_ratio(n, b, p)


def predicted_extremum_kind(
    n: float, b: float, p: float, alpha: float, beta: float
) -> str:
    """'minimum', 'maximum', or 'flat' at ``G = sqrt(p)`` for the Van de
    Geijn cost function (eqs. 10/11)."""
    r = alpha / beta
    c = critical_ratio(n, b, p)
    if math.isclose(r, c, rel_tol=1e-12):
        return "flat"
    return "minimum" if r > c else "maximum"


def vdg_cost_derivative(
    n: float, p: float, G: float, b: float, alpha: float, beta: float
) -> float:
    """Equation (9): ``dT_HS/dG`` for the Van de Geijn broadcast, b=B:

    ``dT/dG = (G - sqrt(p)) / (G * sqrt(G)) * (n*alpha/b - 2*n^2*beta/p)``
    """
    if not (0 < G <= p):
        raise ModelError(f"G={G} outside (0, p={p}]")
    return (G - math.sqrt(p)) / (G * math.sqrt(G)) * (
        n * alpha / b - 2.0 * n * n * beta / p
    )


def crossover_processor_count(
    n: float, b: float, alpha: float, beta: float
) -> float:
    """The processor count beyond which HSUMMA's interior minimum
    exists: solving eq. (10) ``alpha/beta > 2nb/p`` for ``p`` gives

        ``p* = 2 n b beta / alpha``

    — the crossover of Figure 9.  For the paper's BG/P parameters
    (n=65536, b=256, alpha/beta=3000 elements) this is ~11185, i.e.
    between the measured 8192 and 16384 core counts, matching where the
    model's parity ends."""
    if n <= 0 or b <= 0 or alpha <= 0 or beta <= 0:
        raise ModelError(
            f"need positive arguments; got n={n}, b={b}, "
            f"alpha={alpha}, beta={beta}"
        )
    return 2.0 * n * b * beta / alpha


# ---------------------------------------------------------------------------
# 2.5D matmul (Solomonik-Demmel) — the planner's replication axis
# ---------------------------------------------------------------------------

def algo25d_communication_cost(
    n: float, p: float, c: float, alpha: float, beta: float
) -> float:
    """Per-rank communication time of 2.5D matmul with replication
    factor ``c`` on a ``sqrt(p/c) x sqrt(p/c) x c`` grid:

        ``T_2.5D ≈ (sqrt(p/c^3) + log2(c)) * alpha
                   + 2 * n^2 / sqrt(c*p) * beta``

    ``c = 1`` is the 2D (Cannon/SUMMA-volume) baseline; ``c = p^(1/3)``
    is the 3D algorithm, meeting the memory-independent lower bound's
    ``n^2/p^(2/3)`` scaling.  ``beta`` per element, like everything in
    this module.  The planner prices the extra ``log2(c)`` allreduce
    latency and the replicated memory footprint elsewhere.
    """
    if n <= 0 or p < 1:
        raise ModelError(f"need n > 0, p >= 1; got n={n}, p={p}")
    if not (1 <= c <= p ** (1.0 / 3.0) * (1 + 1e-9)):
        raise ModelError(
            f"replication c={c} outside [1, p^(1/3)={p ** (1.0 / 3.0):.3g}]"
        )
    latency = (math.sqrt(p / c**3) + math.log2(c)) * alpha
    bandwidth = 2.0 * n * n / math.sqrt(c * p) * beta
    return latency + bandwidth
