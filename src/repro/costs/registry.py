"""The single source of truth for per-collective closed-form costs.

Historically three layers each carried their own copy of the Hockney
closed forms: :mod:`repro.models.broadcast_model` (the paper's smooth
``L(p)/W(p)`` factor functions the optimiser differentiates through),
:mod:`repro.collectives.cost` (the discrete critical-path factors the
DES engine realises), and the predictor/macro costers built on top.
This registry collapses them into one table:

* :data:`BCAST_ENTRIES` — one :class:`BcastEntry` per broadcast
  algorithm, holding **both** flavours of each factor function:

  - ``L``/``W`` — *discrete* (integer ``p``, ``ceil``/``floor`` tree
    depths) — exactly what the executable collectives in
    :mod:`repro.collectives` realise on the wire, pinned by the
    DES cross-validation tests;
  - ``L_smooth``/``W_smooth`` — *smooth* (real ``p``) — the paper's
    analytic forms, differentiable through non-integer ``sqrt(p)``,
    consumed by :mod:`repro.costs.closed_forms` (eqs. 2-12) and the
    group-count optimiser.

  The two flavours agree exactly at powers of two (the drift test in
  ``tests/costs/test_drift.py`` pins this, plus object identity of the
  re-exports, so the layers can never diverge again).

* :func:`estimate` — the one query interface: a :class:`CostQuery`
  (op, algorithm, participant count, message bytes, network
  parameters) in, a :class:`CostEstimate` (seconds plus its
  latency/bandwidth decomposition) out.  Every non-broadcast
  collective's critical-path cost lives here too.

Size convention (shared with the macro backend): for rooted
distribution ops (``bcast``, ``scatter``) ``nbytes`` is the total
payload at the root; for contribution ops (``gather``, ``allgather``,
``reduce``, ``allreduce``) it is one rank's contribution; ``barrier``
ignores it.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import warnings
from typing import Callable

from repro.errors import ModelError
from repro.network.model import HockneyParams


# ---------------------------------------------------------------------------
# Broadcast factor functions, discrete and smooth
# ---------------------------------------------------------------------------

def _log2ceil(p: int) -> int:
    """Discrete binomial-tree depth: ``ceil(log2 p)``."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    return (p - 1).bit_length()


def _binary_depth(p: int) -> int:
    """Depth of the balanced binary tree over ``p`` nodes (root depth 0)."""
    return max(0, int(math.floor(math.log2(p))))


def _log2_smooth(p: float) -> float:
    return math.log2(p) if p > 1 else 0.0


@dataclasses.dataclass(frozen=True)
class BroadcastModel:
    """Latency/bandwidth factor functions of a broadcast algorithm.

    ``L`` and ``W`` take the participant count ``p`` (a positive float —
    the optimizer differentiates through non-integer ``p``) and return
    the factor multiplying ``alpha`` / ``m * beta``.
    """

    name: str
    L: Callable[[float], float]
    W: Callable[[float], float]

    def time(self, m_elements: float, p: float, alpha: float, beta: float) -> float:
        """``L(p)*alpha + m*W(p)*beta`` (zero at ``p == 1``)."""
        if p <= 1:
            return 0.0
        return self.L(p) * alpha + m_elements * self.W(p) * beta


@dataclasses.dataclass(frozen=True)
class BcastEntry:
    """One broadcast algorithm's registry row: both factor flavours.

    ``L``/``W`` take an integer ``p >= 2`` and return the discrete
    critical-path factor; ``L_smooth``/``W_smooth`` take a real
    ``p > 1``.  (Callers guard ``p == 1``, where every factor is zero.)
    """

    name: str
    L: Callable[[int], float]
    W: Callable[[int], float]
    L_smooth: Callable[[float], float]
    W_smooth: Callable[[float], float]


BCAST_ENTRIES: dict[str, BcastEntry] = {
    e.name: e
    for e in (
        BcastEntry(
            name="flat",
            L=lambda p: float(p - 1),
            W=lambda p: float(p - 1),
            L_smooth=lambda p: p - 1.0 if p > 1 else 0.0,
            W_smooth=lambda p: p - 1.0 if p > 1 else 0.0,
        ),
        BcastEntry(
            name="chain",
            L=lambda p: float(p - 1),
            W=lambda p: float(p - 1),
            L_smooth=lambda p: p - 1.0 if p > 1 else 0.0,
            W_smooth=lambda p: p - 1.0 if p > 1 else 0.0,
        ),
        BcastEntry(
            name="binomial",
            L=lambda p: float(_log2ceil(p)),
            W=lambda p: float(_log2ceil(p)),
            L_smooth=_log2_smooth,
            W_smooth=_log2_smooth,
        ),
        BcastEntry(
            # Inner nodes forward to two children sequentially: about
            # two sends per level on the critical path.
            name="binary",
            L=lambda p: float(2 * _binary_depth(p)),
            W=lambda p: float(2 * _binary_depth(p)),
            L_smooth=lambda p: 2.0 * _log2_smooth(p),
            W_smooth=lambda p: 2.0 * _log2_smooth(p),
        ),
        BcastEntry(
            # Scatter-allgather: (log2 p + p - 1) alpha + 2(p-1)/p m beta.
            name="vandegeijn",
            L=lambda p: float(_log2ceil(p) + (p - 1)),
            W=lambda p: 2.0 * (p - 1) / p,
            L_smooth=lambda p: _log2_smooth(p) + (p - 1.0) if p > 1 else 0.0,
            W_smooth=lambda p: 2.0 * (p - 1.0) / p if p > 1 else 0.0,
        ),
    )
}

#: The paper's eq.-1 models built on the registry's smooth factors —
#: ``repro.models.broadcast_model`` re-exports these very objects, so
#: the analytic layer and this registry cannot drift.
SMOOTH_MODELS: dict[str, BroadcastModel] = {
    name: BroadcastModel(name=name, L=entry.L_smooth, W=entry.W_smooth)
    for name, entry in BCAST_ENTRIES.items()
}


def bcast_entry(algorithm: str) -> BcastEntry:
    """The registry row for ``algorithm``; :class:`ModelError` if the
    algorithm has no linear ``L/W`` form (e.g. the pipelined chain)."""
    entry = BCAST_ENTRIES.get(algorithm)
    if entry is None:
        raise ModelError(
            f"no closed-form L/W entry for broadcast algorithm "
            f"{algorithm!r} (the pipelined chain is priced directly by "
            "estimate/bcast_time)"
        )
    return entry


def bcast_latency_factor(algorithm: str, p: int) -> float:
    """``L(p)``: the number of ``alpha`` terms on the critical path
    (discrete flavour — what the executable collective realises)."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    return bcast_entry(algorithm).L(p)


def bcast_bandwidth_factor(algorithm: str, p: int) -> float:
    """``W(p)``: the multiplier on ``m * beta`` on the critical path
    (discrete flavour)."""
    if p < 1:
        raise ModelError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    return bcast_entry(algorithm).W(p)


#: The segmented broadcast family: every algorithm whose completion
#: time is ``(base + rate*S) * (alpha + m*beta/(chunks*S))`` for some
#: pipeline depth ``S`` — priced directly by :func:`estimate` (no
#: linear ``L/W`` row) and enumerated over ``S`` by the planner.
PIPELINED_BCASTS = frozenset(
    {"pipelined", "segmented", "fourcolor", "hypersystolic"}
)


@functools.lru_cache(maxsize=None)
def segmented_fill_slots(p: int) -> int:
    """Fill latency of the pipelined balanced binary tree: the slot in
    which segment 0 reaches the *last* rank.

    Node ``v`` (heap order, root 0) receives segment 0 after its parent
    chain has forwarded it, two blocking sends per inner node (child
    ``2v+1`` first, then ``2v+2``), which works out to
    ``bit_length(v+1) + popcount(v+1) - 2`` slots — depth plus one
    extra slot per right-edge on the path.  The maximum over
    ``w = v+1 in [1, p]`` is either the deepest all-ones ``w`` (a pure
    right spine) or the max-popcount ``w`` of full bit-length, found by
    the classic clear-one-bit-set-all-lower scan.  Exhaustively checked
    against the ``O(p)`` scan in the conformance tests.
    """
    if p < 2:
        return 0
    L = p.bit_length()
    best = 2 * (L - 1) if L > 1 else 2  # w = 2^(L-1)-1: all-ones, shorter
    ones_above = 0
    max_pc = 0
    for i in range(L - 1, -1, -1):
        if (p >> i) & 1:
            if i < L - 1:
                # Clear bit i of p, set every lower bit: the largest
                # popcount among length-L values <= p branching here.
                max_pc = max(max_pc, ones_above + i)
            ones_above += 1
    max_pc = max(max_pc, ones_above)  # w = p itself
    return max(best, L + max_pc) - 2


def _hypersystolic_depth_at(p: int, k: int) -> int:
    """Deepest rank's segment-0 arrival slot at stride ``k``: group
    ``a``'s member ``j`` sits at depth ``a + j``."""
    ngroups = -(-p // k)
    return max(a + min(k, p - a * k) - 1 for a in range(ngroups))


@functools.lru_cache(maxsize=None)
def hypersystolic_stride(p: int) -> int:
    """The anchor stride ``K`` the hyper-systolic broadcast uses:
    minimiser of the exact fill depth (ties to the smaller ``K``),
    scanned over ``K <= 2*sqrt(p)+2`` — beyond that the first group's
    own chain (``K-1`` slots) already exceeds the ``~2*sqrt(p)``
    optimum."""
    if p < 2:
        return 1
    best_k, best_d = 1, _hypersystolic_depth_at(p, 1)
    for k in range(2, min(p, 2 * math.isqrt(p) + 2) + 1):
        d = _hypersystolic_depth_at(p, k)
        if d < best_d:
            best_k, best_d = k, d
    return best_k


@functools.lru_cache(maxsize=None)
def hypersystolic_depth(p: int) -> int:
    """Fill depth ``D`` at the chosen stride: segment ``k`` reaches the
    deepest rank in slot ``D + k``."""
    if p < 2:
        return 0
    return _hypersystolic_depth_at(p, hypersystolic_stride(p))


#: ``(base, rate, chunks)`` per pipelined algorithm: completion time is
#: ``(base + rate*S) * (alpha + m*beta/(chunks*S))`` (functions of p).
def _pipeline_shape(algorithm: str, p: int) -> tuple[int, int, int]:
    if algorithm == "pipelined":
        return p - 2, 1, 1
    if algorithm == "segmented":
        if p == 2:
            return 0, 1, 1
        return segmented_fill_slots(p) - 2, 2, 1
    if algorithm == "fourcolor":
        return p - 2, 1, 2
    if algorithm == "hypersystolic":
        return hypersystolic_depth(p) - 1, 1, 1
    raise ModelError(f"not a pipelined broadcast algorithm: {algorithm!r}")


class PipelineDepthWarning(RuntimeWarning):
    """The analytic optimum ``S*`` exceeds the route's segment capacity.

    The closed form assumes every segment can be in flight at once
    (infinitely many NIC slots); a real route only holds about one
    segment per pipeline stage, so depths beyond
    :func:`max_pipeline_segments` buy no additional overlap.  See
    ``docs/cost_model.md``.
    """


def max_pipeline_segments(p: int, algorithm: str = "pipelined") -> int:
    """Per-route segment capacity of a pipelined broadcast.

    The family's completion shape ``(base + rate*S)`` means the route
    drains one segment per ``rate`` slots after a ``base``-slot fill:
    at most ``base + rate`` segments are ever simultaneously in flight,
    which is the depth beyond which the infinite-NIC closed form stops
    describing the modelled machine.
    """
    if p <= 2:
        return 1
    base, rate, _chunks = _pipeline_shape(algorithm, p)
    return max(1, base + rate)


def optimal_pipeline_segments(
    m_bytes: float, p: int, alpha: float, beta: float,
    algorithm: str = "pipelined", *, clamp: bool = False,
) -> int:
    """Segment count minimising a pipelined broadcast's completion time
    ``(base + rate*S)(alpha + m*beta/(chunks*S))``:
    ``S* = sqrt(base*m*beta/(chunks*rate*alpha))``.

    For the default pipelined chain this is the classic
    ``sqrt(m*beta*(p-2)/alpha)``; the other family members substitute
    their own fill latency (``segmented``: tree fill minus 2, at rate
    2 slots/segment; ``fourcolor``: ``p-2`` over ``2S`` chunks;
    ``hypersystolic``: ``D-1``).

    When ``S*`` exceeds :func:`max_pipeline_segments` — the infinite-NIC
    artifact documented in ``docs/cost_model.md`` — a
    :class:`PipelineDepthWarning` is emitted; pass ``clamp=True`` to cap
    the result at the route capacity instead of returning the raw
    optimum (the default keeps the historical closed-form value, which
    the pinned predictor artifacts rely on).
    """
    if p <= 2 or m_bytes <= 0 or alpha <= 0:
        return 1
    base, rate, chunks = _pipeline_shape(algorithm, p)
    if base <= 0:
        return 1
    s = math.sqrt(m_bytes * beta * base / (chunks * rate * alpha))
    depth = max(1, round(s))
    cap = max(1, base + rate)
    if depth > cap:
        warnings.warn(
            f"optimal pipeline depth {depth} exceeds the {algorithm} "
            f"route's segment capacity {cap} at p={p}; the closed form "
            "assumes infinite NIC slots (docs/cost_model.md)",
            PipelineDepthWarning, stacklevel=2,
        )
        if clamp:
            return cap
    return depth


# ---------------------------------------------------------------------------
# The query interface
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CostQuery:
    """One collective to price: what, among how many, over which wire.

    ``alpha``/``beta`` are the Hockney parameters of the (homogeneous)
    network the collective runs over, per **byte**; ``nbytes`` follows
    the module-level size convention.  ``algorithm=None`` asks for the
    op's default algorithm where one exists.
    """

    op: str
    algorithm: str | None
    p: int
    nbytes: float
    alpha: float
    beta: float
    segments: int | None = None

    @classmethod
    def from_params(
        cls,
        op: str,
        algorithm: str | None,
        p: int,
        nbytes: float,
        params: HockneyParams,
        *,
        segments: int | None = None,
    ) -> "CostQuery":
        return cls(op=op, algorithm=algorithm, p=p, nbytes=nbytes,
                   alpha=params.alpha, beta=params.beta, segments=segments)


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """A priced collective: total seconds plus its decomposition.

    ``seconds`` is the authoritative number (computed with the same
    float-operation order the macro/predictor fidelity contract pins);
    ``alpha_terms`` and ``beta_bytes`` decompose it as
    ``alpha_terms * alpha + beta_bytes * beta`` up to float
    reassociation — useful for latency/bandwidth attribution and the
    lower-bound gap analysis.
    """

    seconds: float
    alpha_terms: float
    beta_bytes: float

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(
            seconds=self.seconds + other.seconds,
            alpha_terms=self.alpha_terms + other.alpha_terms,
            beta_bytes=self.beta_bytes + other.beta_bytes,
        )


_ZERO = CostEstimate(seconds=0.0, alpha_terms=0.0, beta_bytes=0.0)


def _bcast_estimate(q: CostQuery) -> CostEstimate:
    m, p, alpha, beta = q.nbytes, q.p, q.alpha, q.beta
    if q.algorithm == "pipelined":
        s = q.segments or optimal_pipeline_segments(m, p, alpha, beta)
        return CostEstimate(
            seconds=(p - 2 + s) * (alpha + (m / s) * beta),
            alpha_terms=float(p - 2 + s),
            beta_bytes=(p - 2 + s) * (m / s),
        )
    if q.algorithm in PIPELINED_BCASTS:
        s = q.segments or optimal_pipeline_segments(m, p, alpha, beta,
                                                    q.algorithm)
        if q.algorithm == "fourcolor" and p == 2:
            # One link pair: the executable sends the message whole.
            slots, chunk = 1, m
        else:
            base, rate, chunks = _pipeline_shape(q.algorithm, p)
            slots, chunk = base + rate * s, m / (chunks * s)
        return CostEstimate(
            seconds=slots * (alpha + chunk * beta),
            alpha_terms=float(slots),
            beta_bytes=slots * chunk,
        )
    entry = bcast_entry(q.algorithm)
    L, W = entry.L(p), entry.W(p)
    return CostEstimate(
        seconds=L * alpha + m * W * beta,
        alpha_terms=L,
        beta_bytes=m * W,
    )


def estimate(q: CostQuery) -> CostEstimate:
    """Price one collective from the registry's closed forms.

    This is *the* cost function: :mod:`repro.collectives.cost`, the
    macro backend's :class:`~repro.experiments.stepmodel.AnalyticCoster`
    / :class:`~repro.experiments.stepmodel.TopologyCoster`, and (through
    them) the closed-form predictor all route here.  Validation and the
    float-operation order match the historical
    ``repro.collectives.cost.collective_time`` exactly.
    """
    if q.nbytes < 0:
        raise ModelError(f"message size must be >= 0, got {q.nbytes}")
    if q.p < 1:
        raise ModelError(f"p must be >= 1, got {q.p}")
    if q.p == 1:
        return _ZERO
    if q.op == "bcast":
        return _bcast_estimate(q)
    m, p, alpha, beta = q.nbytes, q.p, q.alpha, q.beta
    log2p = _log2ceil(p)
    if q.op == "scatter":
        # Binomial range-splitting tree: the payload halves each level.
        return CostEstimate(
            seconds=log2p * alpha + (p - 1) / p * m * beta,
            alpha_terms=float(log2p),
            beta_bytes=(p - 1) / p * m,
        )
    if q.op == "gather":
        # Mirror of scatter with per-rank contributions: level k moves
        # 2^k contributions, summing to (p-1) along the critical path.
        return CostEstimate(
            seconds=log2p * alpha + (p - 1) * m * beta,
            alpha_terms=float(log2p),
            beta_bytes=(p - 1) * m,
        )
    if q.op == "allgather":
        if q.algorithm == "ring":
            return CostEstimate(
                seconds=(p - 1) * (alpha + m * beta),
                alpha_terms=float(p - 1),
                beta_bytes=(p - 1) * m,
            )
        if q.algorithm in ("recursive_doubling", "bruck"):
            return CostEstimate(
                seconds=log2p * alpha + (p - 1) * m * beta,
                alpha_terms=float(log2p),
                beta_bytes=(p - 1) * m,
            )
        raise ModelError(f"no closed-form allgather cost for {q.algorithm!r}")
    if q.op == "reduce":
        if q.algorithm == "flat":
            return CostEstimate(
                seconds=(p - 1) * (alpha + m * beta),
                alpha_terms=float(p - 1),
                beta_bytes=(p - 1) * m,
            )
        if q.algorithm == "binomial":
            return CostEstimate(
                seconds=log2p * (alpha + m * beta),
                alpha_terms=float(log2p),
                beta_bytes=log2p * m,
            )
        raise ModelError(f"no closed-form reduce cost for {q.algorithm!r}")
    if q.op == "allreduce":
        if q.algorithm == "rabenseifner":
            return CostEstimate(
                seconds=2 * log2p * alpha + 2 * (p - 1) / p * m * beta,
                alpha_terms=float(2 * log2p),
                beta_bytes=2 * (p - 1) / p * m,
            )
        if q.algorithm == "recursive_doubling":
            if p & (p - 1) == 0:
                return CostEstimate(
                    seconds=log2p * (alpha + m * beta),
                    alpha_terms=float(log2p),
                    beta_bytes=log2p * m,
                )
            # The implementation falls back to reduce + bcast off
            # powers of two.
            return estimate(
                dataclasses.replace(q, op="reduce", algorithm="binomial")
            ) + estimate(
                dataclasses.replace(q, op="bcast", algorithm="binomial")
            )
        raise ModelError(f"no closed-form allreduce cost for {q.algorithm!r}")
    if q.op == "barrier":
        # Dissemination barrier: ceil(log2 p) zero-byte rounds.
        return CostEstimate(
            seconds=log2p * alpha, alpha_terms=float(log2p), beta_bytes=0.0
        )
    raise ModelError(f"unknown collective op {q.op!r}")
