"""Two-dimensional Cartesian process grids.

SUMMA distributes matrices over an ``s x t`` grid; HSUMMA additionally
partitions that grid into an ``I x J`` grid of groups.  This module
provides the row-major coordinate bookkeeping plus the derived row and
column communicators both algorithms broadcast along.
"""

from __future__ import annotations

from repro.errors import CommunicatorError
from repro.mpi.comm import Comm


class CartComm:
    """A communicator arranged as an ``s x t`` row-major grid.

    Rank ``r`` sits at row ``r // t``, column ``r % t``.  The object is
    a view over ``comm``; constructing it is free, but the derived
    row/column communicators are created eagerly (collectively) so that
    every member performs the same construction sequence.
    """

    def __init__(self, comm: Comm, s: int, t: int):
        if s * t != comm.size:
            raise CommunicatorError(
                f"grid {s}x{t} does not match communicator size {comm.size}"
            )
        self.comm = comm
        self.s = s
        self.t = t
        self.row, self.col = divmod(comm.rank, t)
        # Collective: every member executes both splits in this order.
        self.row_comm = comm.split_by(lambda r: r // t, key_of=lambda r: r % t)
        self.col_comm = comm.split_by(lambda r: r % t, key_of=lambda r: r // t)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``rank``."""
        if not (0 <= rank < self.size):
            raise CommunicatorError(
                f"rank {rank} outside grid of {self.size}"
            )
        return divmod(rank, self.t)

    def rank_at(self, row: int, col: int) -> int:
        """Rank sitting at ``(row, col)``; coordinates wrap (torus-style),
        which is what Cannon/Fox shifting needs."""
        return (row % self.s) * self.t + (col % self.t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CartComm({self.s}x{self.t}, rank={self.rank}@({self.row},{self.col}))"
