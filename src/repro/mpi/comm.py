"""Communicators and collective dispatch for the simulated MPI layer.

Design notes
------------
* **Per-rank objects.**  Each simulated rank owns its own
  :class:`MpiContext` and :class:`Comm` instances; ranks share nothing,
  exactly like separate MPI processes.
* **Context isolation.**  Messages are matched on ``(src, dst, tag)``
  where the effective tag is ``(communicator context id, user tag)``.
  Context ids are hierarchical — each communicator hands out sequence
  numbers to the communicators derived from it — so as long as derived
  communicators are created *collectively* (every member of the parent
  executes the same construction calls in the same order, the normal
  SPMD discipline and an MPI requirement too), identical ids on
  different ranks always denote the same communicator.
* **Local splits.**  ``split_by`` takes a function of the member rank,
  evaluated identically on every member, so membership is computed
  without messages.  Real MPI_Comm_split exchanges colors; its cost is
  negligible and amortised, and the paper's model ignores it as well.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Generator, Sequence

from repro.collectives import (
    get_allgather,
    get_allreduce,
    get_broadcast,
    get_reduce,
)
from repro.collectives.barrier import barrier_dissemination
from repro.collectives.gather import gather_binomial
from repro.collectives.scatter import scatter_binomial
from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    FaultToleranceError,
)
from repro.faults.schedule import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.simulator.requests import (
    RECV_TIMEOUT,
    CollectiveRequest,
    ComputeRequest,
    CounterRequest,
    IRecvRequest,
    ISendRequest,
    RecvRequest,
    RequestHandle,
    SendRecvRequest,
    SendRequest,
    payload_nbytes,
)
from repro.simulator.spans import SpanCloseRequest, SpanOpenRequest

Gen = Generator[Any, Any, Any]


def _wire_size(payload: Any) -> int | None:
    """Payload wire size for span annotations; None when unknowable."""
    try:
        return payload_nbytes(payload)
    except Exception:
        return None


@dataclasses.dataclass(frozen=True)
class CollectiveOptions:
    """Default algorithm choices for collective operations.

    Attributes
    ----------
    bcast:
        Broadcast algorithm name from
        :data:`repro.collectives.BROADCAST_ALGORITHMS` ("binomial",
        "vandegeijn", "flat", "binary", "chain", "pipelined",
        "segmented", "fourcolor", "hypersystolic").
    bcast_segments:
        Pipeline depth ``s``: segment count for the pipelined /
        segmented broadcast family (None = auto).
    allgather:
        "ring", "recursive_doubling" or "bruck".
    reduce:
        Reduction tree: "binomial" or "flat".
    allreduce:
        "recursive_doubling" or "rabenseifner".
    """

    bcast: str = "binomial"
    bcast_segments: int | None = None
    allgather: str = "ring"
    reduce: str = "binomial"
    allreduce: str = "recursive_doubling"

    def replace(self, **kwargs: Any) -> "CollectiveOptions":
        return dataclasses.replace(self, **kwargs)


class _RankShared:
    """Read-only state safely shared across the per-rank contexts of one
    SPMD run.

    Ranks behave like separate MPI processes, but each Python process
    simulating p ranks would otherwise hold p copies of the world rank
    tuple (O(p^2) memory at p=16384) and recompute every ``split_by``
    partition p times (O(p^2) color evaluations).  Sharing is sound
    because both are pure functions of collectively-executed calls: the
    SPMD discipline already requires every member to derive identical
    memberships, so the first rank's answer is every rank's answer.
    """

    __slots__ = ("world_ranks", "splits", "collectives")

    def __init__(self, nranks: int) -> None:
        self.world_ranks = tuple(range(nranks))
        #: child cid -> {color: ordered world-rank tuple}
        self.splits: dict[tuple, dict[int, tuple[int, ...]]] = {}
        #: (cid, seq) -> [signature tuple, ranks seen]: the collective
        #: announcement registry.  The first announcement of a slot
        #: seeds it; every later announcement must match field for
        #: field, so a wrong root or a desynchronised call order fails
        #: at the *call site* of the second rank instead of as a
        #: downstream payload error or deadlock.  Entries are dropped
        #: once every participant has announced, keeping the registry
        #: O(concurrent collectives).
        self.collectives: dict[tuple, list] = {}


def make_contexts(
    nranks: int,
    options: CollectiveOptions | None = None,
    gamma: float = 0.0,
    trace: bool = False,
    retry: RetryPolicy | None = None,
) -> list["MpiContext"]:
    """One :class:`MpiContext` per rank, sharing membership caches.

    Preferred over constructing contexts in a loop for large worlds:
    the shared :class:`_RankShared` keeps world/partition storage O(p)
    instead of O(p^2).
    """
    shared = _RankShared(nranks)
    opts = options or CollectiveOptions()
    return [
        MpiContext(r, nranks, options=opts, gamma=gamma, trace=trace,
                   shared=shared, retry=retry)
        for r in range(nranks)
    ]


class MpiContext:
    """Per-rank execution context: identity plus collective defaults.

    Parameters
    ----------
    rank, nranks:
        This rank's world identity.
    options:
        Collective algorithm defaults for all communicators.
    gamma:
        Seconds per floating-point operation, used by
        :meth:`compute_flops`.  The paper's model charges ``2*n^3/p``
        flops at ``gamma`` each.
    trace:
        Emit tracing spans (:mod:`repro.simulator.spans`).  Off by
        default; when off the span helpers yield nothing, so untraced
        runs carry zero overhead and bit-identical timings.
    shared:
        Membership caches shared across the ranks of one run (see
        :func:`make_contexts`).  A private one is created when omitted.
    retry:
        :class:`repro.faults.RetryPolicy` governing timed receives and
        the fault-tolerant broadcast on this rank's communicators.
        Defaults to :data:`repro.faults.DEFAULT_RETRY_POLICY`.
    """

    def __init__(
        self,
        rank: int,
        nranks: int,
        options: CollectiveOptions | None = None,
        gamma: float = 0.0,
        trace: bool = False,
        shared: _RankShared | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if not (0 <= rank < nranks):
            raise CommunicatorError(f"rank {rank} outside world of {nranks}")
        self.rank = rank
        self.nranks = nranks
        self.options = options or CollectiveOptions()
        if gamma < 0:
            raise CommunicatorError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma
        self.trace = trace
        self.retry = retry or DEFAULT_RETRY_POLICY
        if shared is None or len(shared.world_ranks) != nranks:
            shared = _RankShared(nranks)
        self._shared = shared
        self.world = Comm(self, shared.world_ranks, cid=(), _index=rank)

    def compute(self, seconds: float) -> Sequence[Any]:
        """Charge ``seconds`` of local computation (drive with
        ``yield from``)."""
        return (ComputeRequest(seconds),)

    def compute_flops(self, flops: float) -> Sequence[Any]:
        """Charge ``flops`` floating-point operations at ``gamma`` s/flop
        (drive with ``yield from``)."""
        return (ComputeRequest(flops * self.gamma),)

    # -- tracing spans ------------------------------------------------------
    #
    # span/end_span return plain request tuples rather than generators:
    # they are driven with ``yield from`` on every step of the hottest
    # rank-program loops, and an empty tuple costs no frame when tracing
    # is off.

    def span(self, name: str, **attrs: Any) -> Sequence[Any]:
        """Open a named span at the rank's current virtual time.

        Usage (always paired with :meth:`end_span`)::

            yield from ctx.span("bcast.inter", step=k)
            ...
            yield from ctx.end_span()

        A no-op (nothing yielded) when tracing is disabled.
        """
        if self.trace:
            return (SpanOpenRequest(name, attrs),)
        return ()

    def end_span(self, **attrs: Any) -> Sequence[Any]:
        """Close the innermost open span, merging ``attrs`` into it."""
        if self.trace:
            return (SpanCloseRequest(attrs),)
        return ()

    def in_span(self, name: str, gen: Gen, **attrs: Any) -> Gen:
        """Run generator ``gen`` inside a span; returns its result."""
        if not self.trace:
            result = yield from gen
            return result
        yield SpanOpenRequest(name, attrs)
        result = yield from gen
        yield SpanCloseRequest()
        return result


class Comm:
    """A communicator: an ordered subset of world ranks.

    Only member ranks hold a ``Comm`` object for a given communicator.
    ``rank``/``size`` are relative to the communicator; all public
    methods take communicator-relative ranks.
    """

    def __init__(
        self,
        ctx: MpiContext,
        world_ranks: Sequence[int],
        cid: tuple,
        _index: int | None = None,
    ):
        self._ctx = ctx
        self._world_ranks = tuple(world_ranks)
        if _index is not None:
            # Fast path for internally-constructed communicators whose
            # membership is known valid (world, cached splits): skips
            # the O(size) duplicate check and index scan that dominate
            # setup cost at p=16384.
            self.rank = _index
        else:
            if len(set(self._world_ranks)) != len(self._world_ranks):
                raise CommunicatorError(
                    f"duplicate ranks in {self._world_ranks}"
                )
            try:
                self.rank = self._world_ranks.index(ctx.rank)
            except ValueError:
                raise CommunicatorError(
                    f"world rank {ctx.rank} is not a member of "
                    f"{self._world_ranks}"
                ) from None
        self.size = len(self._world_ranks)
        self._cid = cid
        self._child_seq = itertools.count()
        self._coll_seq = itertools.count()
        self._ft_seq = itertools.count()  # ft-bcast invocation salts
        self._tag_cache: dict[int, tuple] = {}

    # -- identity -----------------------------------------------------------

    @property
    def ctx(self) -> MpiContext:
        return self._ctx

    @property
    def options(self) -> CollectiveOptions:
        return self._ctx.options

    def world_rank(self, comm_rank: int) -> int:
        """Translate a communicator rank to the world rank."""
        self._check_rank(comm_rank)
        return self._world_ranks[comm_rank]

    @property
    def world_ranks(self) -> tuple[int, ...]:
        return self._world_ranks

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.size):
            raise CommunicatorError(
                f"rank {r} out of range for communicator of size {self.size}"
            )

    def _tag(self, tag: int) -> tuple:
        # Wire tags repeat across the steps of bulk-synchronous
        # algorithms; interning the (cid, tag) tuple keeps the engine's
        # channel-table probes on identical objects (equal either way —
        # this is purely an allocation saving).
        wire = self._tag_cache.get(tag)
        if wire is None:
            wire = self._tag_cache[tag] = (self._cid, tag)
        return wire

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Comm(size={self.size}, rank={self.rank}, cid={self._cid})"

    # -- point-to-point ------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> Gen:
        """Blocking send of ``obj`` to communicator rank ``dest``."""
        self._check_rank(dest)
        yield SendRequest(self._world_ranks[dest], self._tag(tag), obj, nbytes)

    def recv(self, source: int, tag: int = 0,
             timeout: float | None = None) -> Gen:
        """Blocking receive from communicator rank ``source``.

        With ``timeout`` set, returns :data:`repro.simulator.requests.
        RECV_TIMEOUT` if no matching send was posted within that much
        virtual time (the building block of the recovery protocols —
        see :meth:`recv_retry` and :mod:`repro.collectives.ft`).
        """
        self._check_rank(source)
        payload = yield RecvRequest(self._world_ranks[source], self._tag(tag),
                                    timeout=timeout)
        return payload

    def recv_retry(self, source: int, tag: int = 0,
                   policy: RetryPolicy | None = None) -> Gen:
        """Receive with timeout-and-retry: re-post the receive with
        exponentially growing windows until a message arrives.

        Counts one *recovery* in the rank's stats when the receive
        succeeds after at least one expiry.  Raises
        :class:`repro.errors.FaultToleranceError` once
        ``policy.max_attempts`` windows have all expired — by then the
        peer is presumed dead, not slow.
        """
        self._check_rank(source)
        policy = policy or self._ctx.retry
        wire_tag = self._tag(tag)
        src = self._world_ranks[source]
        for attempt in range(policy.max_attempts):
            payload = yield RecvRequest(
                src, wire_tag, timeout=policy.escalation_timeout(attempt)
            )
            if payload is not RECV_TIMEOUT:
                if attempt > 0:
                    yield CounterRequest("recoveries")
                return payload
        raise FaultToleranceError(
            f"recv from rank {source} (tag {tag}): all "
            f"{policy.max_attempts} timed attempts expired"
        )

    def isend(self, obj: Any, dest: int, tag: int = 0, nbytes: int | None = None) -> Gen:
        """Nonblocking send; returns a handle for :meth:`wait`."""
        self._check_rank(dest)
        handle = yield ISendRequest(self._world_ranks[dest], self._tag(tag), obj, nbytes)
        return handle

    def irecv(self, source: int, tag: int = 0) -> Gen:
        """Nonblocking receive; returns a handle for :meth:`wait`."""
        self._check_rank(source)
        handle = yield IRecvRequest(self._world_ranks[source], self._tag(tag))
        return handle

    # A bare RequestHandle yielded to the engine waits on itself; the
    # wait helpers yield handles directly rather than allocating a
    # WaitRequest wrapper per wait (identical semantics — see the
    # engine's dispatch table).

    def wait(self, handle: RequestHandle) -> Gen:
        """Block until ``handle`` completes; returns irecv payload."""
        payload = yield handle
        return payload

    def waitall(self, handles: Sequence[RequestHandle]) -> Gen:
        """Wait on every handle; returns payloads in handle order."""
        results = []
        for handle in handles:
            payload = yield handle
            results.append(payload)
        return results

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
        nbytes: int | None = None,
    ) -> Gen:
        """Simultaneous send+receive (the Cannon/Fox shift primitive)."""
        self._check_rank(dest)
        self._check_rank(source)
        world = self._world_ranks
        # The engine's fused shift primitive: both posts plus both
        # waits (receive first, send second) in one resume — identical
        # on the wire and in every charged wait time to the explicit
        # isend/irecv/wait sequence.
        payload = yield SendRecvRequest(
            world[dest], world[source], self._tag(sendtag),
            self._tag(recvtag), sendobj, nbytes,
        )
        return payload

    # -- collectives ----------------------------------------------------------
    #
    # Every collective first yields a CollectiveRequest announcing the
    # operation.  The discrete-event backend absorbs it (resumes with
    # None) and the method expands the collective into point-to-point
    # messages exactly as before; the macro backend instead satisfies
    # the request from a cost oracle and resumes with a
    # CollectiveReply carrying the op's result, skipping the expansion.
    #
    # When the context traces, every collective call wraps itself in a
    # ``coll.*`` span annotated with the resolved algorithm name, the
    # communicator size and (at close, once known on every rank) the
    # payload's wire size — so span trees self-document which collective
    # ran where without the algorithms knowing about tracing at all.

    #: Announcement signature fields, with the check id a mismatch in
    #: each maps to (compared in order; the first difference wins).
    _SIG_FIELDS = (
        ("participants", "collective-comm-mismatch"),
        ("op", "collective-op-mismatch"),
        ("root", "collective-root-mismatch"),
        ("algorithm", "collective-arg-mismatch"),
        ("segments", "collective-arg-mismatch"),
    )

    def _announce(
        self,
        op: str,
        algorithm: str,
        payload: Any,
        root: int | None = None,
        segments: int | None = None,
    ) -> CollectiveRequest:
        seq = next(self._coll_seq)
        sig = (self._world_ranks, op, root, algorithm, segments)
        registry = self._ctx._shared.collectives
        key = (self._cid, seq)
        entry = registry.get(key)
        if entry is None:
            registry[key] = [sig, 1]
        else:
            if entry[0] != sig:
                self._reject_announcement(key, entry[0], sig)
            entry[1] += 1
            if entry[1] >= len(self._world_ranks):
                del registry[key]
        return CollectiveRequest(
            op,
            algorithm,
            self._cid,
            seq,
            self._world_ranks,
            self.rank,
            root,
            payload,
            segments,
        )

    def _reject_announcement(self, key: tuple, expected: tuple,
                             observed: tuple) -> None:
        """A second rank announced collective slot ``key`` with a
        different signature: name the first differing field and fail
        eagerly with the verification check id a verifier would
        assign."""
        names = [name for name, _ in self._SIG_FIELDS]
        exp = dict(zip(names, expected))
        obs = dict(zip(names, observed))
        for name, check in self._SIG_FIELDS:
            if exp[name] != obs[name]:
                raise CollectiveMismatchError(
                    f"rank {self._ctx.rank}: collective #{key[1]} on "
                    f"communicator {key[0] or '()'} announced "
                    f"{name}={obs[name]!r} but another participant "
                    f"announced {name}={exp[name]!r} ({check})",
                    check=check, cid=key[0], seq=key[1],
                    expected=exp, observed=obs,
                )
        raise CollectiveMismatchError(  # pragma: no cover - defensive
            f"inconsistent collective announcement for {key}",
            check="collective-arg-mismatch", cid=key[0], seq=key[1],
            expected=exp, observed=obs,
        )

    def bcast(self, obj: Any, root: int, algorithm: str | None = None) -> Gen:
        """Broadcast ``obj`` from ``root``; returns the object on every rank.

        ``algorithm`` overrides the context default for this call.
        """
        self._check_rank(root)
        ctx = self._ctx
        options = ctx.options
        name = algorithm or options.bcast
        segments = options.bcast_segments
        if ctx.trace:
            yield SpanOpenRequest(
                "coll.bcast",
                {"comm_size": self.size, "algorithm": name, "root": root},
            )
        reply = yield self._announce(
            "bcast", name, obj if self.rank == root else None,
            root=root, segments=segments,
        )
        if reply is None:
            # Algorithm lookup deferred to the expansion path: the
            # macro backend answers most announcements without it.
            algo = get_broadcast(name)
            result = yield from algo(self, obj, root, segments=segments)
        else:
            result = reply.value
        if ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(result)})
        return result

    def scatter(self, parts: Sequence[Any] | None, root: int) -> Gen:
        """Scatter ``parts[i]`` to rank ``i``; ``parts`` given on root only."""
        self._check_rank(root)
        if self.rank == root:
            # Early argument validation: fail at the call site instead
            # of as a downstream IndexError inside the scatter tree.
            if parts is None:
                raise CommunicatorError(
                    f"scatter root {root} must supply the parts sequence"
                )
            if len(parts) < self.size:
                raise CommunicatorError(
                    f"scatter root {root} supplied {len(parts)} parts for a "
                    f"communicator of size {self.size}"
                )
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.scatter",
                {"comm_size": self.size, "algorithm": "binomial", "root": root},
            )
        reply = yield self._announce(
            "scatter", "binomial", parts if self.rank == root else None,
            root=root,
        )
        if reply is None:
            result = yield from scatter_binomial(self, parts, root)
        else:
            result = reply.value
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(result)})
        return result

    def gather(self, obj: Any, root: int) -> Gen:
        """Gather every rank's ``obj`` to ``root`` (list indexed by rank)."""
        self._check_rank(root)
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.gather",
                {"comm_size": self.size, "algorithm": "binomial", "root": root},
            )
        reply = yield self._announce("gather", "binomial", obj, root=root)
        if reply is None:
            result = yield from gather_binomial(self, obj, root)
        else:
            result = reply.value
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(obj)})
        return result

    def allgather(self, obj: Any, algorithm: str | None = None) -> Gen:
        """All ranks end with the list of every rank's contribution."""
        name = algorithm or self.options.allgather
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.allgather", {"comm_size": self.size, "algorithm": name}
            )
        reply = yield self._announce("allgather", name, obj)
        if reply is None:
            result = yield from get_allgather(name)(self, obj)
        else:
            result = reply.value
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(obj)})
        return result

    def reduce(self, obj: Any, root: int) -> Gen:
        """Element-wise sum onto ``root`` (None elsewhere)."""
        self._check_rank(root)
        name = self.options.reduce
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.reduce",
                {"comm_size": self.size, "algorithm": name, "root": root},
            )
        reply = yield self._announce("reduce", name, obj, root=root)
        if reply is None:
            result = yield from get_reduce(name)(self, obj, root)
        else:
            result = reply.value
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(obj)})
        return result

    def allreduce(self, obj: Any, algorithm: str | None = None) -> Gen:
        """Element-wise sum delivered to every rank."""
        name = algorithm or self.options.allreduce
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.allreduce", {"comm_size": self.size, "algorithm": name}
            )
        reply = yield self._announce("allreduce", name, obj)
        if reply is None:
            result = yield from get_allreduce(name)(self, obj)
        else:
            result = reply.value
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(obj)})
        return result

    def barrier(self) -> Gen:
        """Dissemination barrier."""
        if self._ctx.trace:
            yield SpanOpenRequest(
                "coll.barrier",
                {"comm_size": self.size, "algorithm": "dissemination"},
            )
        reply = yield self._announce("barrier", "dissemination", None)
        if reply is None:
            yield from barrier_dissemination(self)
        if self._ctx.trace:
            yield SpanCloseRequest({"nbytes": _wire_size(None)})

    # -- derived communicators -------------------------------------------------

    def _next_cid(self) -> tuple:
        return self._cid + (next(self._child_seq),)

    def dup(self) -> "Comm":
        """Duplicate with a fresh context (collective over members)."""
        return Comm(self._ctx, self._world_ranks, self._next_cid())

    def split_by(
        self,
        color_of: Callable[[int], int],
        key_of: Callable[[int], int] | None = None,
    ) -> "Comm":
        """Split into disjoint communicators by color (collective call).

        ``color_of(r)`` and ``key_of(r)`` are evaluated for every member
        rank ``r`` of this communicator and must be pure functions so
        all members derive identical memberships.  Returns the new
        communicator containing this rank, ordered by ``(key, rank)``.

        The full partition is computed once per run and shared across
        ranks (keyed by the collectively-unique child context id) —
        sound for exactly the reason the split is collective: every
        member evaluates the same functions over the same members, so
        the first rank's partition is every rank's partition.
        """
        cid = self._next_cid()
        my_color = color_of(self.rank)
        partition = self._ctx._shared.splits.get(cid)
        if partition is None:
            by_color: dict[int, list[int]] = {}
            for r in range(self.size):
                by_color.setdefault(color_of(r), []).append(r)
            partition = {}
            for color, members in by_color.items():
                if key_of is not None:
                    members.sort(key=lambda r: (key_of(r), r))
                partition[color] = tuple(
                    self._world_ranks[r] for r in members
                )
            self._ctx._shared.splits[cid] = partition
        world = partition[my_color]
        return Comm(
            self._ctx,
            world,
            cid + (my_color,),
            _index=world.index(self._ctx.rank),
        )

    def subset(self, comm_ranks: Sequence[int]) -> "Comm | None":
        """Communicator over ``comm_ranks`` (collective over members).

        Returns ``None`` on ranks outside the subset; every member of
        *this* communicator must call it with the same list.
        """
        cid = self._next_cid()
        for r in comm_ranks:
            self._check_rank(r)
        if self.rank not in comm_ranks:
            return None
        world = [self._world_ranks[r] for r in comm_ranks]
        return Comm(self._ctx, world, cid)
