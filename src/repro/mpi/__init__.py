"""MPI-like SPMD layer over the discrete-event simulator.

Provides communicators (:class:`Comm`), two-dimensional Cartesian grids
(:class:`CartComm`), point-to-point operations and collective
operations with pluggable algorithms — the vocabulary SUMMA/HSUMMA are
written in.  All potentially-blocking methods are generators and must
be driven with ``yield from``::

    def program(ctx):
        comm = ctx.world
        data = yield from comm.bcast(data, root=0)
        yield from ctx.compute(seconds)

The semantics intentionally mirror mpi4py's lower-case object API; a
real-MPI backend could implement the same surface.
"""

from repro.mpi.comm import CollectiveOptions, Comm, MpiContext
from repro.mpi.cart import CartComm

__all__ = ["CollectiveOptions", "Comm", "MpiContext", "CartComm"]
