"""Speed-proportional integer partitioning.

Splitting ``total`` items among ranks proportionally to their relative
speeds is the core primitive of heterogeneous data distributions
(Beaumont et al. 2001; Lastovetsky & Dongarra 2009).  We use the
largest-remainder method, which minimises the maximum deviation from
the ideal fractional share, with a guaranteed minimum of one item per
rank (a zero-width rank would deadlock collective patterns).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def proportional_partition(total: int, speeds: Sequence[float]) -> list[int]:
    """Integer shares of ``total`` proportional to ``speeds``.

    >>> proportional_partition(100, [1.0, 1.0, 2.0])
    [25, 25, 50]
    """
    if total <= 0:
        raise ConfigurationError(f"total must be >= 1, got {total}")
    if not speeds:
        raise ConfigurationError("need at least one speed")
    if any(s <= 0 for s in speeds):
        raise ConfigurationError(f"speeds must be positive, got {list(speeds)}")
    p = len(speeds)
    if total < p:
        raise ConfigurationError(
            f"cannot give {p} ranks at least one of {total} items"
        )
    weight = sum(speeds)
    ideal = [total * s / weight for s in speeds]
    shares = [max(1, int(x)) for x in ideal]
    # Largest-remainder correction toward the exact total.
    def remainder(i: int) -> float:
        return ideal[i] - int(ideal[i])

    excess = sum(shares) - total
    if excess > 0:
        # Trim the smallest remainders first (never below 1).
        order = sorted(range(p), key=remainder)
        idx = 0
        while excess > 0:
            i = order[idx % p]
            if shares[i] > 1:
                shares[i] -= 1
                excess -= 1
            idx += 1
    elif excess < 0:
        order = sorted(range(p), key=remainder, reverse=True)
        for k in range(-excess):
            shares[order[k % p]] += 1
    assert sum(shares) == total
    return shares


def partition_bounds(total: int, speeds: Sequence[float]) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges for the proportional shares."""
    shares = proportional_partition(total, speeds)
    bounds = []
    start = 0
    for w in shares:
        bounds.append((start, start + w))
        start += w
    return bounds
