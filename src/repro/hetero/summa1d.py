"""1-D heterogeneous SUMMA.

``C = A @ B`` on ``p`` ranks of *different* speeds:

* ``B`` and ``C`` are partitioned by columns with widths proportional
  to the rank speeds — per step, rank ``r`` performs
  ``2 * n * b * w_r`` flops, so speed-proportional widths equalise the
  compute time (the Beaumont-et-al. load-balancing principle in one
  dimension);
* ``A`` is partitioned by columns into ``n/b`` pivot panels round-robin
  over the ranks; each step the owner broadcasts its ``n x b`` panel
  and everyone updates its ``C`` slice.

The broadcast per step is exactly SUMMA's pivot pattern, so the paper's
hierarchical two-phase trick applies unchanged: with ``groups=G`` the
panel goes first to one delegate per group, then within the groups —
demonstrating that HSUMMA's idea composes with heterogeneity.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator, Sequence

import numpy as np

from repro.blocks.ops import gemm_flops
from repro.errors import ConfigurationError
from repro.hetero.partition import partition_bounds
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult
from repro.util.validation import require, require_divides

Gen = Generator[Any, Any, Any]


@dataclasses.dataclass(frozen=True)
class Hetero1dConfig:
    """Parameters of a 1-D heterogeneous run.

    ``C = A @ B`` with ``A (m, l)``, ``B (l, n)``; ``p`` ranks with
    relative ``speeds``; pivot panel width ``block``; optional group
    count ``groups`` for hierarchical broadcasts (must divide ``p``).
    """

    m: int
    l: int
    n: int
    speeds: tuple[float, ...]
    block: int
    groups: int = 1

    def __post_init__(self) -> None:
        require(self.m > 0 and self.l > 0 and self.n > 0,
                f"matrix dims must be positive: {self.m}, {self.l}, {self.n}")
        require(len(self.speeds) >= 1, "need at least one rank")
        require(all(s > 0 for s in self.speeds),
                f"speeds must be positive: {self.speeds}")
        require_divides(self.block, self.l, "hetero1d: block into inner dim")
        require_divides(self.groups, len(self.speeds),
                        "hetero1d: groups into rank count")
        require(self.n >= len(self.speeds),
                f"need at least one column per rank: n={self.n}, "
                f"p={len(self.speeds)}")

    @property
    def p(self) -> int:
        return len(self.speeds)

    @property
    def nsteps(self) -> int:
        return self.l // self.block

    def col_bounds(self) -> list[tuple[int, int]]:
        """Column ranges of ``B``/``C`` per rank (speed-proportional)."""
        return partition_bounds(self.n, self.speeds)


def hetero_summa1d_program(
    ctx: MpiContext,
    a_panels: dict[int, Any],
    b_slice: Any,
    cfg: Hetero1dConfig,
) -> Gen:
    """Per-rank generator.

    ``a_panels`` maps step index to this rank's owned ``(m, block)``
    pivot panels of ``A`` (round-robin ownership); ``b_slice`` is the
    rank's ``(l, w_r)`` column slice of ``B``.  Returns the rank's
    ``(m, w_r)`` slice of ``C``.
    """
    comm = ctx.world
    me = comm.rank
    p = cfg.p
    G = cfg.groups
    per_group = p // G
    group = me // per_group

    if G > 1:
        # Delegate comm: rank 0 of each group (collective construction);
        # group comms for the within-group phase.
        delegates = comm.split_by(lambda r: 0 if r % per_group == 0 else 1 + r,
                                  key_of=lambda r: r)
        group_comm = comm.split_by(lambda r: r // per_group)

    phantom = isinstance(b_slice, PhantomArray)
    w = b_slice.shape[1]
    if phantom:
        c_slice: Any = PhantomArray((cfg.m, w))
    else:
        c_slice = np.zeros((cfg.m, w))

    for k in range(cfg.nsteps):
        owner = k % p
        panel = a_panels.get(k) if me == owner else None
        if G == 1:
            panel = yield from comm.bcast(panel, root=owner)
        else:
            # Two-phase: to the group delegates, then within groups.
            owner_group = owner // per_group
            my_delegate = group * per_group
            if me == owner and me != my_delegate:
                # Hand the panel to the own group's delegate first so
                # the delegate tree has a single root.
                yield from comm.send(panel, my_delegate, tag=7)
                panel = None
            if me == my_delegate:
                if owner == me:
                    pass  # already have it
                elif owner // per_group == group:
                    panel = yield from comm.recv(owner, tag=7)
                panel = yield from delegates.bcast(
                    panel, root=owner_group
                ) if delegates.size > 1 else panel
            if me % per_group == 0:
                # I am a delegate: distribute within my group.
                panel = yield from group_comm.bcast(panel, root=0)
            else:
                panel = yield from group_comm.bcast(None, root=0)

        yield from ctx.compute_flops(gemm_flops(cfg.m, cfg.block, w))
        if not phantom:
            b_rows = b_slice[k * cfg.block : (k + 1) * cfg.block, :]
            c_slice += panel @ b_rows
    return c_slice


def run_hetero_summa1d(
    A: Any,
    B: Any,
    *,
    speeds: Sequence[float],
    block: int,
    groups: int = 1,
    base_gamma: float = 1e-9,
    partition_speeds: Sequence[float] | None = None,
    network: Network | None = None,
    params: Any = None,
    options: CollectiveOptions | None = None,
    backend: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply ``A @ B`` on ranks of relative ``speeds``.

    Rank ``r`` computes at ``base_gamma / speeds[r]`` seconds per flop
    and owns a ``C`` column slice proportional to
    ``partition_speeds[r]`` (default: the true speeds — the balanced
    distribution; pass uniform values to measure the naive split).
    Returns ``(C, SimResult)``.
    """
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")
    part = tuple(partition_speeds) if partition_speeds is not None else tuple(speeds)
    if len(part) != len(speeds):
        raise ConfigurationError(
            f"partition_speeds has {len(part)} entries for {len(speeds)} ranks"
        )
    cfg = Hetero1dConfig(m=m, l=l, n=n, speeds=part, block=block,
                         groups=groups)
    true_speeds = tuple(speeds)
    p = cfg.p
    bounds = cfg.col_bounds()
    phantom = isinstance(A, PhantomArray) or isinstance(B, PhantomArray)

    if network is None:
        network = HomogeneousNetwork(p, params or DEFAULT_PARAMS)

    def make_programs():
        contexts = make_contexts(p, options=options)
        programs = []
        for rank in range(p):
            a_panels: dict[int, Any] = {}
            for k in range(cfg.nsteps):
                if k % p == rank:
                    if phantom:
                        a_panels[k] = PhantomArray((m, block))
                    else:
                        Ad = np.asarray(A, dtype=float)
                        a_panels[k] = Ad[:, k * block : (k + 1) * block].copy()
            lo, hi = bounds[rank]
            if phantom:
                b_slice: Any = PhantomArray((l, hi - lo))
            else:
                b_slice = np.asarray(B, dtype=float)[:, lo:hi].copy()
            ctx = contexts[rank]
            ctx.gamma = base_gamma / true_speeds[rank]
            programs.append(hetero_summa1d_program(ctx, a_panels, b_slice, cfg))
        return programs

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        meta={"program": "hetero-summa1d", "ranks": p},
    )

    if phantom:
        return PhantomArray((m, n)), sim
    C = np.empty((m, n))
    for rank in range(p):
        lo, hi = bounds[rank]
        C[:, lo:hi] = sim.return_values[rank]
    return C, sim
