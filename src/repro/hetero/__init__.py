"""Heterogeneous-platform matrix multiplication.

The paper motivates SUMMA's primacy partly through its heterogeneous
descendants (its refs [9], [10]: Beaumont et al., Lastovetsky &
Dongarra) — SUMMA is "the starting point to implement parallel matrix
multiplication on specific platforms".  This package carries the
reproduction into that territory:

* :mod:`repro.hetero.partition` — speed-proportional 1-D partitioning;
* :mod:`repro.hetero.summa1d` — a 1-D heterogeneous SUMMA (columns of
  ``B``/``C`` sized by rank speed, pivot panels of ``A`` broadcast per
  step), with the paper's hierarchical two-phase broadcast as an
  option — showing the HSUMMA idea composes with heterogeneity.
"""

from repro.hetero.partition import proportional_partition
from repro.hetero.summa1d import run_hetero_summa1d

__all__ = ["proportional_partition", "run_hetero_summa1d"]
