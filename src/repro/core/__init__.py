"""The paper's contribution: SUMMA and hierarchical SUMMA (HSUMMA).

* :mod:`repro.core.summa` — the baseline SUMMA of van de Geijn & Watts,
  pivot row/column broadcasts over a 2-D grid.
* :mod:`repro.core.hsumma` — the paper's two-level redesign, with
  independent outer (between-group) and inner (within-group) block
  sizes and broadcast algorithms, plus the multi-level generalisation
  the paper lists as future work.
* :mod:`repro.core.grouping` — processor-grid and group-grid selection,
  including topology-aware group-to-node alignment.
* :mod:`repro.core.tuning` — empirical optimal-group-count search, the
  "few iterations of HSUMMA" auto-tuner sketched in the conclusions.
* :mod:`repro.core.api` — the one-call public interface
  (:func:`repro.core.api.multiply`).
"""

from repro.core.api import MatmulResult, multiply
from repro.core.grouping import choose_group_grid, valid_group_counts
from repro.core.hsumma import HSummaConfig, run_hsumma
from repro.core.summa import SummaConfig, run_summa
from repro.core.tuning import tune_group_count

__all__ = [
    "MatmulResult",
    "multiply",
    "choose_group_grid",
    "valid_group_counts",
    "HSummaConfig",
    "run_hsumma",
    "SummaConfig",
    "run_summa",
    "tune_group_count",
]
