"""Processor-grid and group-grid arithmetic for HSUMMA.

HSUMMA partitions an ``s x t`` grid into ``I x J`` groups of
``(s/I) x (t/J)`` processors.  Both factors must divide evenly; for a
requested total group count ``G`` there may be several feasible
``(I, J)`` splits, and :func:`choose_group_grid` picks the one whose
*inner* grids are most square (square inner grids minimise the
per-broadcast data volume, mirroring the paper's square-grid analysis).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.network.mapping import RankMapping, subgrid_order
from repro.util.gridmath import divisors


def feasible_group_grids(s: int, t: int, G: int) -> list[tuple[int, int]]:
    """All ``(I, J)`` with ``I*J == G``, ``I | s`` and ``J | t``."""
    if s < 1 or t < 1 or G < 1:
        raise ConfigurationError(f"need s,t,G >= 1; got s={s}, t={t}, G={G}")
    out = []
    for I in divisors(G):
        J = G // I
        if s % I == 0 and t % J == 0:
            out.append((I, J))
    return out


def choose_group_grid(s: int, t: int, G: int) -> tuple[int, int]:
    """The feasible ``(I, J)`` whose inner ``(s/I) x (t/J)`` grid is most
    square; raises if ``G`` admits no feasible split."""
    candidates = feasible_group_grids(s, t, G)
    if not candidates:
        raise ConfigurationError(
            f"cannot arrange {G} groups on a {s}x{t} grid "
            f"(valid counts: {valid_group_counts(s, t)})"
        )

    def squareness(ij: tuple[int, int]) -> tuple[float, float]:
        I, J = ij
        inner = abs(math.log((s / I) / (t / J)))
        outer = abs(math.log(I / J)) if I and J else 0.0
        return (inner, outer)

    return min(candidates, key=squareness)


def valid_group_counts(s: int, t: int) -> list[int]:
    """Every ``G`` in ``[1, s*t]`` with a feasible ``(I, J)`` split —
    the x-axis of the paper's group-sweep figures."""
    p = s * t
    return [G for G in divisors(p) if feasible_group_grids(s, t, G)]


def group_of(i: int, j: int, s: int, t: int, I: int, J: int) -> tuple[int, int]:
    """Group coordinates ``(x, y)`` of grid position ``(i, j)``."""
    if s % I or t % J:
        raise ConfigurationError(f"group grid {I}x{J} does not divide {s}x{t}")
    if not (0 <= i < s and 0 <= j < t):
        raise ConfigurationError(f"({i}, {j}) outside grid {s}x{t}")
    return (i // (s // I), j // (t // J))


def group_aligned_mapping(
    s: int, t: int, I: int, J: int, ranks_per_node: int = 1
) -> RankMapping:
    """Rank-to-node mapping that packs each HSUMMA group onto
    consecutive nodes.

    The default (row-major) placement interleaves groups across the
    machine; on a torus this makes within-group broadcasts span long
    routes — the source of the paper's Figure-8 "zigzags".  Aligning
    groups with node order keeps intra-group traffic local.  Used by
    the topology-aware-grouping ablation.
    """
    if s % I or t % J:
        raise ConfigurationError(f"group grid {I}x{J} does not divide {s}x{t}")
    if ranks_per_node < 1:
        raise ConfigurationError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
    nranks = s * t
    # Order ranks by (group id, position inside group), then deal nodes.
    order = subgrid_order(s, t, I, J)
    node_of = [0] * nranks
    for position, rank in enumerate(order):
        node_of[rank] = position // ranks_per_node
    nnodes = -(-nranks // ranks_per_node)
    return RankMapping(node_of, nnodes)
