"""SUMMA — Scalable Universal Matrix Multiplication Algorithm.

The van de Geijn & Watts algorithm the paper redesigns: ``C = A @ B``
over an ``s x t`` processor grid with block (checkerboard) distributed
matrices.  There are ``l/b`` steps; in step ``k`` the owners of the
``b``-wide pivot column of ``A`` broadcast it along their grid row, the
owners of the pivot row of ``B`` broadcast it along their grid column,
and every rank accumulates one rank-``b`` update into its ``C`` tile.

This module provides the per-rank SPMD generator
(:func:`summa_program`) and a one-call runner (:func:`run_summa`) that
distributes the inputs, simulates, checks nothing is left in flight,
and reassembles ``C``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.ops import local_gemm_acc, slice_cols, slice_rows
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.simulator.tracing import SimResult
from repro.verify.session import run_verified
from repro.util.validation import require, require_divides

Gen = Generator[Any, Any, Any]


@dataclasses.dataclass(frozen=True)
class SummaConfig:
    """Static parameters of a SUMMA run.

    ``C = A @ B`` with ``A`` of shape ``(m, l)`` and ``B`` of shape
    ``(l, n)`` on an ``s x t`` grid with pivot block size ``block``.
    """

    m: int
    l: int
    n: int
    s: int
    t: int
    block: int
    bcast: str | None = None  # override CollectiveOptions.bcast

    def __post_init__(self) -> None:
        require(self.m > 0 and self.l > 0 and self.n > 0,
                f"matrix dims must be positive: {self.m}, {self.l}, {self.n}")
        require(self.s > 0 and self.t > 0,
                f"grid dims must be positive: {self.s}x{self.t}")
        require_divides(self.s, self.m, "SUMMA: grid rows into C rows")
        require_divides(self.t, self.n, "SUMMA: grid cols into C cols")
        require_divides(self.s, self.l, "SUMMA: grid rows into inner dim")
        require_divides(self.t, self.l, "SUMMA: grid cols into inner dim")
        require_divides(self.block, self.l, "SUMMA: block into inner dim")
        # A pivot column (width `block`) must live on one grid column,
        # and the B pivot row on one grid row.
        require_divides(self.block, self.l // self.t,
                        "SUMMA: block into A tile width")
        require_divides(self.block, self.l // self.s,
                        "SUMMA: block into B tile height")

    @property
    def nsteps(self) -> int:
        return self.l // self.block


def summa_program(ctx: MpiContext, a_tile: Any, b_tile: Any, cfg: SummaConfig) -> Gen:
    """Per-rank SUMMA generator; returns this rank's ``C`` tile."""
    grid = CartComm(ctx.world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    a_tile_cols = cfg.l // cfg.t
    b_tile_rows = cfg.l // cfg.s
    c_tile = _c_accumulator(a_tile, b_tile, cfg)

    for k in range(cfg.nsteps):
        g0 = k * cfg.block

        yield from ctx.span("bcast.row", step=k, matrix="A")
        owner_col = g0 // a_tile_cols
        a_piv = None
        if j == owner_col:
            c0 = g0 % a_tile_cols
            a_piv = slice_cols(a_tile, c0, c0 + cfg.block)
        a_piv = yield from grid.row_comm.bcast(
            a_piv, root=owner_col, algorithm=cfg.bcast
        )
        yield from ctx.end_span()

        yield from ctx.span("bcast.col", step=k, matrix="B")
        owner_row = g0 // b_tile_rows
        b_piv = None
        if i == owner_row:
            r0 = g0 % b_tile_rows
            b_piv = slice_rows(b_tile, r0, r0 + cfg.block)
        b_piv = yield from grid.col_comm.bcast(
            b_piv, root=owner_row, algorithm=cfg.bcast
        )
        yield from ctx.end_span()

        yield from ctx.span("gemm", step=k)
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        yield from ctx.end_span()
    return c_tile


def _c_accumulator(a_tile: Any, b_tile: Any, cfg: SummaConfig) -> Any:
    """Zeroed ``(m/s) x (n/t)`` accumulator matching the tile mode."""
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        return PhantomArray((cfg.m // cfg.s, cfg.n // cfg.t))
    return np.zeros((cfg.m // cfg.s, cfg.n // cfg.t))


def run_summa(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    block: int,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    bcast: str | None = None,
    bcast_segments: int | None = None,
    contention: bool = False,
    trace: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply block-distributed ``A @ B`` with SUMMA on a simulated
    platform; returns ``(C, SimResult)``.

    ``bcast_segments`` sets the pipeline depth ``s`` of the segmented
    broadcast family (``pipelined``/``segmented``/``fourcolor``/
    ``hypersystolic``; ``None`` = each algorithm's default) — a
    shorthand for ``options.bcast_segments``.

    ``A``/``B`` may be numpy arrays (data mode — ``C`` is the concrete
    product) or :class:`PhantomArray` husks (scale mode — ``C`` is a
    phantom and only the timing is meaningful).  With ``trace=True``
    the result carries phase spans and the transfer trace (see
    :mod:`repro.metrics`); timings are bit-identical either way.
    ``backend`` selects the execution backend (``"des"``, ``"macro"``,
    ``"predictor"`` or a prebuilt engine; see
    :mod:`repro.simulator.backends`).  The macro backend collapses
    symmetric ranks automatically when eligible (bit-identical; see
    ``docs/cost_model.md``); ``"predictor"`` skips simulation entirely
    and composes the coster's closed forms — phantom inputs only, no
    faults/verify/contention/tracing.
    ``faults`` injects a :class:`repro.faults.FaultSchedule` (or spec
    string) — discrete-event backend only; see ``docs/robustness.md``.
    ``verify`` enables the communication verifier (True or a
    :class:`repro.verify.VerifyOptions`); the verdict lands on
    ``SimResult.verdict`` — see ``docs/verification.md``.
    """
    s, t = grid
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: A is {A.shape}, B is {B.shape}")
    cfg = SummaConfig(m=m, l=l, n=n, s=s, t=t, block=block, bcast=bcast)
    if bcast_segments is not None:
        options = (options or CollectiveOptions()).replace(
            bcast_segments=bcast_segments)

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    _dist(m, l, s, t))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    _dist(l, n, s, t))

    from repro.faults.spec import coerce_faults
    from repro.network.homogeneous import HomogeneousNetwork
    from repro.simulator.runtime import DEFAULT_PARAMS

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    if backend == "predictor":
        from repro.simulator.predictor import (
            _require_predictable,
            predict_summa,
        )

        _require_predictable(
            "summa", phantom=da.phantom or db.phantom, faults=faults,
            verify=verify, contention=contention, trace=trace,
        )
        sim = predict_summa(
            cfg, network=network, options=options, gamma=gamma,
            a_itemsize=A.itemsize if isinstance(A, PhantomArray) else 8,
            b_itemsize=B.itemsize if isinstance(B, PhantomArray) else 8,
        )
        return PhantomArray((m, n)), sim

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma, trace=trace,
                          retry=faults.retry if faults is not None else None)
        ):
            i, j = divmod(rank, t)
            programs.append(
                summa_program(ctx, da.tile(i, j), db.tile(i, j), cfg)
            )
        return programs

    from repro.simulator.collapse import summa_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, collect_trace=trace, faults=faults,
        symmetry=summa_symmetry(s, t),
        meta={"program": "summa", "grid": f"{s}x{t}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        _dist(m, n, s, t),
    )
    tiles = {
        divmod(rank, t): sim.return_values[rank] for rank in range(nranks)
    }
    C = dc.assemble(tiles)
    return C, sim


def _dist(rows: int, cols: int, s: int, t: int):
    from repro.blocks.distribution import BlockDistribution

    return BlockDistribution(rows, cols, s, t)
