"""One-call public API for the factorization kernels.

Mirrors :func:`repro.core.api.multiply` for ``LU``/``QR``: pick the
kernel, the grid, the tile size and optionally the hierarchical group
grid, get back the factors plus the simulation accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import ConfigurationError
from repro.simulator.tracing import SimResult
from repro.util.gridmath import factor_grid

#: Kernels accepted by :func:`factorize`.
KERNELS = ("lu", "qr")


@dataclasses.dataclass
class FactorResult:
    """Factors plus simulation accounting.

    ``factors`` is ``(L, U)`` for LU and ``(R,)`` for QR (``Q`` stays
    implicit in the reflectors, as in LAPACK).
    """

    factors: tuple[Any, ...]
    sim: SimResult
    kernel: str
    parameters: dict[str, Any]

    @property
    def total_time(self) -> float:
        return self.sim.total_time

    @property
    def comm_time(self) -> float:
        return self.sim.comm_time

    @property
    def compute_time(self) -> float:
        return self.sim.compute_time


def factorize(
    A: Any,
    *,
    kernel: str = "lu",
    nprocs: int | None = None,
    grid: tuple[int, int] | None = None,
    block: int | None = None,
    groups: tuple[int, int] = (1, 1),
    network: Any = None,
    params: Any = None,
    gamma: float = 0.0,
    options: Any = None,
) -> FactorResult:
    """Factor ``A`` on a simulated distributed-memory platform.

    Parameters mirror :func:`repro.core.api.multiply`; ``groups``
    switches the panel broadcasts to the paper's hierarchical scheme.
    """
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; choose from {KERNELS}"
        )
    if grid is None:
        if nprocs is None:
            raise ConfigurationError("pass either nprocs or grid")
        grid = factor_grid(nprocs)
    n = A.shape[0]
    if block is None:
        # Largest tile size giving every rank at least one tile row/col.
        block = max(1, n // (max(grid) * 2))
        while n % block:
            block -= 1
    common = dict(grid=grid, block=block, groups=groups, network=network,
                  params=params, gamma=gamma, options=options)
    parameters = {"grid": grid, "block": block, "groups": groups}

    if kernel == "lu":
        from repro.factorization import run_block_lu

        L, U, sim = run_block_lu(A, **common)
        return FactorResult((L, U), sim, kernel, parameters)

    from repro.factorization import run_block_qr

    R, sim = run_block_qr(A, **common)
    return FactorResult((R,), sim, kernel, parameters)
