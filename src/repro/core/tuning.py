"""Empirical group-count tuning for HSUMMA.

The paper selects the optimal number of groups "sampling over valid
values" and notes the search "can be easily automated and incorporated
into the implementation by using few iterations of HSUMMA"
(Conclusions).  :func:`tune_group_count` implements exactly that: run a
truncated HSUMMA (a handful of outer steps) for each candidate ``G``
and keep the fastest — in simulation the truncated run is a faithful
per-step sample because virtual time has no noise.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.grouping import valid_group_counts
from repro.core.hsumma import run_hsumma
from repro.errors import ConfigurationError
from repro.payloads import PhantomArray


@dataclasses.dataclass(frozen=True)
class TuningReport:
    """Outcome of a group-count search."""

    best_groups: int
    times: dict[int, float]  # candidate G -> sampled virtual time
    sample_steps: int

    @property
    def best_time(self) -> float:
        return self.times[self.best_groups]


def tune_group_count(
    n: int,
    grid: tuple[int, int],
    block: int,
    *,
    sample_steps: int = 2,
    candidates: list[int] | None = None,
    metric: str = "total",
    **run_kwargs: Any,
) -> TuningReport:
    """Find the fastest group count for an ``n x n`` HSUMMA.

    Runs ``sample_steps`` outer steps of a *phantom* HSUMMA (problem
    size ``sample_steps * block`` in the inner dimension) for every
    candidate ``G`` and returns the argmin.

    Parameters
    ----------
    n:
        Full problem size (used to validate candidates; the sampled
        runs use a truncated inner dimension).
    grid:
        Processor grid ``(s, t)``.
    block:
        Outer (= inner) block size.
    sample_steps:
        How many outer steps to sample (the paper's "few iterations").
    candidates:
        Group counts to try; defaults to every count valid on ``grid``.
    metric:
        "total" or "comm" — which virtual time to minimise.
    run_kwargs:
        Forwarded to :func:`repro.core.hsumma.run_hsumma` (network,
        params, gamma, ...).
    """
    s, t = grid
    if metric not in ("total", "comm"):
        raise ConfigurationError(f"metric must be 'total' or 'comm', got {metric!r}")
    if candidates is None:
        candidates = valid_group_counts(s, t)
    if not candidates:
        raise ConfigurationError(f"no valid group counts for grid {s}x{t}")
    l_sample = sample_steps * block
    # The truncated inner dimension must still satisfy the divisibility
    # rules; scale the sample up to the smallest valid multiple.
    import math

    lcm_st = s * t // math.gcd(s, t)
    while l_sample % s or l_sample % t or (l_sample // t) % block or (l_sample // s) % block:
        l_sample += block
        if l_sample > max(n, block * lcm_st * 2):
            raise ConfigurationError(
                f"cannot build a sample problem for grid {s}x{t}, block {block}"
            )

    times: dict[int, float] = {}
    for G in candidates:
        A = PhantomArray((n, l_sample))
        B = PhantomArray((l_sample, n))
        _, sim = run_hsumma(
            A, B, grid=grid, groups=G, outer_block=block, **run_kwargs
        )
        times[G] = sim.total_time if metric == "total" else sim.comm_time
    best = min(times, key=lambda g: (times[g], g))
    return TuningReport(best_groups=best, times=times, sample_steps=sample_steps)
