"""HSUMMA — Hierarchical SUMMA, the paper's contribution.

The ``s x t`` grid is partitioned into an ``I x J`` grid of groups,
each an ``(s/I) x (t/J)`` inner grid.  Every SUMMA broadcast is split
into two phases (paper Section III, Algorithm 1):

1. **Outer phase** (once per ``B``-wide outer block): the owners of the
   pivot block column of ``A`` broadcast it *across groups* along the
   grid row — i.e. to the rank with the same inner coordinates in each
   other group — and symmetrically for the pivot block row of ``B``
   down the grid column.
2. **Inner phase** (``B/b`` steps per outer block): inside every group,
   plain SUMMA broadcasts of ``b``-wide slices of the received outer
   block along the inner row/column communicators, followed by the
   local gemm update.

With ``G = 1`` or ``G = p`` HSUMMA degenerates to SUMMA (the paper's
worst-case guarantee); tests assert both identities in data and time.

The multi-level generalisation the paper leaves as future work is
implemented in :func:`hsumma_multilevel_program`: the broadcast is
split across ``h`` nested levels of grouping rather than two.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator, Sequence

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc, slice_cols, slice_rows
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.simulator.tracing import SimResult
from repro.verify.session import run_verified
from repro.util.validation import require, require_divides

Gen = Generator[Any, Any, Any]


@dataclasses.dataclass(frozen=True)
class HSummaConfig:
    """Static parameters of an HSUMMA run.

    ``C = A @ B`` with ``A`` of shape ``(m, l)``, ``B`` of shape
    ``(l, n)``; grid ``s x t``; group grid ``I x J``; outer block
    ``outer_block`` (the paper's ``B``) and inner block ``inner_block``
    (the paper's ``b``, with ``b <= B`` and ``b | B``).
    """

    m: int
    l: int
    n: int
    s: int
    t: int
    I: int
    J: int
    outer_block: int
    inner_block: int
    outer_bcast: str | None = None  # override for between-group broadcasts
    inner_bcast: str | None = None  # override for within-group broadcasts

    def __post_init__(self) -> None:
        require(self.m > 0 and self.l > 0 and self.n > 0,
                f"matrix dims must be positive: {self.m}, {self.l}, {self.n}")
        require(self.s > 0 and self.t > 0,
                f"grid dims must be positive: {self.s}x{self.t}")
        require_divides(self.I, self.s, "HSUMMA: group rows into grid rows")
        require_divides(self.J, self.t, "HSUMMA: group cols into grid cols")
        require_divides(self.s, self.m, "HSUMMA: grid rows into C rows")
        require_divides(self.t, self.n, "HSUMMA: grid cols into C cols")
        require_divides(self.s, self.l, "HSUMMA: grid rows into inner dim")
        require_divides(self.t, self.l, "HSUMMA: grid cols into inner dim")
        require(self.inner_block <= self.outer_block,
                f"inner block {self.inner_block} must be <= outer block "
                f"{self.outer_block} (paper Section III)")
        require_divides(self.inner_block, self.outer_block,
                        "HSUMMA: inner block into outer block")
        require_divides(self.outer_block, self.l // self.t,
                        "HSUMMA: outer block into A tile width")
        require_divides(self.outer_block, self.l // self.s,
                        "HSUMMA: outer block into B tile height")

    @property
    def groups(self) -> int:
        return self.I * self.J

    @property
    def inner_s(self) -> int:
        """Rows of the within-group grid (``s / I``)."""
        return self.s // self.I

    @property
    def inner_t(self) -> int:
        """Columns of the within-group grid (``t / J``)."""
        return self.t // self.J

    @property
    def outer_steps(self) -> int:
        return self.l // self.outer_block

    @property
    def inner_steps(self) -> int:
        return self.outer_block // self.inner_block


def hsumma_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, cfg: HSummaConfig
) -> Gen:
    """Per-rank HSUMMA generator; returns this rank's ``C`` tile.

    Follows the paper's Algorithm 1: the rank at grid position
    ``(i, j)`` is processor ``P(x,y)(ii,jj)`` with group coordinates
    ``(x, y) = (i // (s/I), j // (t/J))`` and inner coordinates
    ``(ii, jj) = (i % (s/I), j % (t/J))``.
    """
    world = ctx.world
    grid = CartComm(world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    si, tj = cfg.inner_s, cfg.inner_t
    x, ii = divmod(i, si)
    y, jj = divmod(j, tj)

    # Four communicators (paper Algorithm 1), created collectively.
    # Outer row: fixed (grid row, inner col), varying group column —
    # communicator rank equals the group column y.
    outer_row = world.split_by(
        lambda r: (r // cfg.t) * tj + (r % cfg.t) % tj,
        key_of=lambda r: (r % cfg.t) // tj,
    )
    # Outer col: fixed (grid col, inner row), varying group row.
    outer_col = world.split_by(
        lambda r: (r % cfg.t) * si + (r // cfg.t) % si,
        key_of=lambda r: (r // cfg.t) // si,
    )
    # Inner row: fixed (group, inner row), varying inner column —
    # communicator rank equals jj.
    inner_row = world.split_by(
        lambda r: (r // cfg.t) * cfg.J + (r % cfg.t) // tj,
        key_of=lambda r: (r % cfg.t) % tj,
    )
    # Inner col: fixed (group, inner col), varying inner row.
    inner_col = world.split_by(
        lambda r: (r % cfg.t) * cfg.I + (r // cfg.t) // si,
        key_of=lambda r: (r // cfg.t) % si,
    )

    a_tile_cols = cfg.l // cfg.t
    b_tile_rows = cfg.l // cfg.s
    c_tile = _c_accumulator(a_tile, b_tile, cfg)

    for K in range(cfg.outer_steps):
        g0 = K * cfg.outer_block

        # --- outer (between-groups) broadcasts: the paper's phase 1 ---
        yield from ctx.span("bcast.inter", step=K)
        owner_grid_col = g0 // a_tile_cols
        yk, jk = divmod(owner_grid_col, tj)
        a_outer = None
        if jj == jk:
            if y == yk:
                c0 = g0 % a_tile_cols
                a_outer = slice_cols(a_tile, c0, c0 + cfg.outer_block)
            a_outer = yield from outer_row.bcast(
                a_outer, root=yk, algorithm=cfg.outer_bcast
            )

        owner_grid_row = g0 // b_tile_rows
        xk, ik = divmod(owner_grid_row, si)
        b_outer = None
        if ii == ik:
            if x == xk:
                r0 = g0 % b_tile_rows
                b_outer = slice_rows(b_tile, r0, r0 + cfg.outer_block)
            b_outer = yield from outer_col.bcast(
                b_outer, root=xk, algorithm=cfg.outer_bcast
            )
        yield from ctx.end_span()

        # --- inner SUMMA over the outer block: the paper's phase 2 ---
        for kk in range(cfg.inner_steps):
            off = kk * cfg.inner_block
            yield from ctx.span("bcast.intra", step=K, inner_step=kk)
            a_piv = None
            if jj == jk:
                a_piv = slice_cols(a_outer, off, off + cfg.inner_block)
            a_piv = yield from inner_row.bcast(
                a_piv, root=jk, algorithm=cfg.inner_bcast
            )
            b_piv = None
            if ii == ik:
                b_piv = slice_rows(b_outer, off, off + cfg.inner_block)
            b_piv = yield from inner_col.bcast(
                b_piv, root=ik, algorithm=cfg.inner_bcast
            )
            yield from ctx.end_span()
            yield from ctx.span("gemm", step=K, inner_step=kk)
            c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
            yield from ctx.end_span()
    return c_tile


def _c_accumulator(a_tile: Any, b_tile: Any, cfg: HSummaConfig) -> Any:
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        return PhantomArray((cfg.m // cfg.s, cfg.n // cfg.t))
    return np.zeros((cfg.m // cfg.s, cfg.n // cfg.t))


def run_hsumma(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    groups: int | tuple[int, int],
    outer_block: int,
    inner_block: int | None = None,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    outer_bcast: str | None = None,
    inner_bcast: str | None = None,
    bcast_segments: int | None = None,
    contention: bool = False,
    trace: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply block-distributed ``A @ B`` with HSUMMA; returns
    ``(C, SimResult)``.  ``bcast_segments`` sets the pipeline depth of
    the segmented broadcast family (shorthand for
    ``options.bcast_segments``; applies to both hierarchy levels).

    ``groups`` is either the total group count ``G`` (the group grid is
    chosen by :func:`repro.core.grouping.choose_group_grid`) or an
    explicit ``(I, J)``.  ``inner_block`` defaults to ``outer_block``
    (the paper's experimental setting ``b = B``).  With ``trace=True``
    the result carries ``bcast.inter`` / ``bcast.intra`` / ``gemm``
    phase spans and the transfer trace (see :mod:`repro.metrics`);
    timings are bit-identical either way.  ``faults`` injects a
    :class:`repro.faults.FaultSchedule` (or spec string) on the
    discrete-event backend; see ``docs/robustness.md``.  ``verify``
    enables the communication verifier (``docs/verification.md``).
    """
    from repro.core.grouping import choose_group_grid

    s, t = grid
    if bcast_segments is not None:
        options = (options or CollectiveOptions()).replace(
            bcast_segments=bcast_segments)
    if isinstance(groups, tuple):
        I, J = groups
    else:
        I, J = choose_group_grid(s, t, groups)
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: A is {A.shape}, B is {B.shape}")
    cfg = HSummaConfig(
        m=m, l=l, n=n, s=s, t=t, I=I, J=J,
        outer_block=outer_block,
        inner_block=inner_block if inner_block is not None else outer_block,
        outer_bcast=outer_bcast,
        inner_bcast=inner_bcast,
    )

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, s, t))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, s, t))

    from repro.faults.spec import coerce_faults
    from repro.network.homogeneous import HomogeneousNetwork
    from repro.simulator.runtime import DEFAULT_PARAMS

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    if backend == "predictor":
        from repro.simulator.predictor import (
            _require_predictable,
            predict_hsumma,
        )

        _require_predictable(
            "hsumma", phantom=da.phantom or db.phantom, faults=faults,
            verify=verify, contention=contention, trace=trace,
        )
        sim = predict_hsumma(
            cfg, network=network, options=options, gamma=gamma,
            a_itemsize=A.itemsize if isinstance(A, PhantomArray) else 8,
            b_itemsize=B.itemsize if isinstance(B, PhantomArray) else 8,
        )
        return PhantomArray((m, n)), sim

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma, trace=trace,
                          retry=faults.retry if faults is not None else None)
        ):
            gi, gj = divmod(rank, t)
            programs.append(
                hsumma_program(ctx, da.tile(gi, gj), db.tile(gi, gj), cfg)
            )
        return programs

    from repro.simulator.collapse import hsumma_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, collect_trace=trace, faults=faults,
        symmetry=hsumma_symmetry(s, t, I, J),
        meta={"program": "hsumma", "grid": f"{s}x{t}", "groups": f"{I}x{J}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, s, t),
    )
    tiles = {divmod(rank, t): sim.return_values[rank] for rank in range(nranks)}
    C = dc.assemble(tiles)
    return C, sim


# ---------------------------------------------------------------------------
# Multi-level extension (paper future work: "more than two levels")
# ---------------------------------------------------------------------------


def hsumma_multilevel_program(
    ctx: MpiContext,
    a_tile: Any,
    b_tile: Any,
    cfg: "MultiLevelConfig",
) -> Gen:
    """HSUMMA with ``h`` nested grouping levels.

    Level 0 is the between-top-level-groups phase; level ``h-1`` is the
    innermost grid.  The pivot block column/row is broadcast once per
    level, each level re-slicing its received block into the next
    level's block size, generalising the two-phase split of
    :func:`hsumma_program`.
    """
    world = ctx.world
    grid = CartComm(world, cfg.s, cfg.t)
    i, j = grid.row, grid.col

    # Per level: sizes of the *remaining* inner grid below that level.
    row_factors = cfg.row_factors  # I_0, I_1, ..., I_{h-1}; product == s
    col_factors = cfg.col_factors
    h = len(row_factors)

    # Decompose my coordinates level by level (mixed-radix digits).
    row_digits, col_digits = [], []
    ri, cj = i, j
    for lev in range(h):
        rbelow = _prod(row_factors[lev + 1 :])
        cbelow = _prod(col_factors[lev + 1 :])
        dr, ri = divmod(ri, rbelow)
        dc, cj = divmod(cj, cbelow)
        row_digits.append(dr)
        col_digits.append(dc)

    # Level communicators: at level `lev`, ranks sharing all digits
    # except the level-`lev` column digit form the horizontal comm (for
    # A), and symmetrically for the vertical comm (for B).
    def col_digit(r: int, lev: int) -> int:
        c = r % cfg.t
        for q in range(lev):
            c %= _prod(col_factors[q + 1 :])
        return c // _prod(col_factors[lev + 1 :])

    def row_digit(r: int, lev: int) -> int:
        c = r // cfg.t
        for q in range(lev):
            c %= _prod(row_factors[q + 1 :])
        return c // _prod(row_factors[lev + 1 :])

    h_comms = []
    v_comms = []
    for lev in range(h):
        h_comms.append(
            world.split_by(
                lambda r, lev=lev: (
                    r // cfg.t,
                    tuple(col_digit(r, q) for q in range(h) if q != lev),
                ),
                key_of=lambda r, lev=lev: col_digit(r, lev),
            )
        )
        v_comms.append(
            world.split_by(
                lambda r, lev=lev: (
                    r % cfg.t,
                    tuple(row_digit(r, q) for q in range(h) if q != lev),
                ),
                key_of=lambda r, lev=lev: row_digit(r, lev),
            )
        )

    a_tile_cols = cfg.l // cfg.t
    b_tile_rows = cfg.l // cfg.s
    blocks = cfg.blocks  # b_0 >= b_1 >= ... >= b_{h-1}
    c_tile = None
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile = PhantomArray((cfg.m // cfg.s, cfg.n // cfg.t))
    else:
        c_tile = np.zeros((cfg.m // cfg.s, cfg.n // cfg.t))

    # Recursive step structure flattened: iterate over the innermost
    # block index and broadcast at level `lev` whenever this index
    # crosses a level-`lev` block boundary.
    total_steps = cfg.l // blocks[-1]
    a_blocks: list[Any] = [None] * h
    b_blocks: list[Any] = [None] * h
    for step in range(total_steps):
        g0 = step * blocks[-1]

        owner_grid_col = g0 // a_tile_cols
        owner_grid_row = g0 // b_tile_rows
        # Digits of the owner position at each level.
        oc = owner_grid_col
        orw = owner_grid_row
        owner_col_digits, owner_row_digits = [], []
        for lev in range(h):
            cbelow = _prod(col_factors[lev + 1 :])
            rbelow = _prod(row_factors[lev + 1 :])
            d, oc = divmod(oc, cbelow)
            owner_col_digits.append(d)
            d, orw = divmod(orw, rbelow)
            owner_row_digits.append(d)

        for lev in range(h):
            if g0 % blocks[lev] != 0:
                continue  # not at a level-`lev` boundary
            if lev == 0 and h > 1:
                phase = "bcast.inter"
            elif lev == h - 1:
                phase = "bcast.intra"
            else:
                phase = f"bcast.mid{lev}"
            yield from ctx.span(phase, step=step, level=lev)
            width = blocks[lev]
            # A broadcast at this level: participants share my column
            # digits at deeper levels; I participate iff my digits below
            # `lev` match the owner's.
            if col_digits[lev + 1 :] == owner_col_digits[lev + 1 :]:
                if lev == 0:
                    src = None
                    if col_digits == owner_col_digits:
                        c0 = g0 % a_tile_cols
                        src = slice_cols(a_tile, c0, c0 + width)
                    a_blocks[0] = yield from h_comms[0].bcast(
                        src, root=owner_col_digits[0], algorithm=cfg.bcast
                    )
                else:
                    src = None
                    if col_digits[lev:] == owner_col_digits[lev:]:
                        off = g0 % blocks[lev - 1]
                        src = slice_cols(a_blocks[lev - 1], off, off + width)
                    a_blocks[lev] = yield from h_comms[lev].bcast(
                        src, root=owner_col_digits[lev], algorithm=cfg.bcast
                    )
            if row_digits[lev + 1 :] == owner_row_digits[lev + 1 :]:
                if lev == 0:
                    src = None
                    if row_digits == owner_row_digits:
                        r0 = g0 % b_tile_rows
                        src = slice_rows(b_tile, r0, r0 + width)
                    b_blocks[0] = yield from v_comms[0].bcast(
                        src, root=owner_row_digits[0], algorithm=cfg.bcast
                    )
                else:
                    src = None
                    if row_digits[lev:] == owner_row_digits[lev:]:
                        off = g0 % blocks[lev - 1]
                        src = slice_rows(b_blocks[lev - 1], off, off + width)
                    b_blocks[lev] = yield from v_comms[lev].bcast(
                        src, root=owner_row_digits[lev], algorithm=cfg.bcast
                    )
            yield from ctx.end_span()

        # The innermost broadcast delivered to everyone in the deepest
        # communicator; but ranks not on the owner's digit path at
        # deeper levels received nothing this step.
        a_piv = a_blocks[h - 1]
        b_piv = b_blocks[h - 1]
        yield from ctx.span("gemm", step=step)
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        yield from ctx.end_span()
    return c_tile


def _prod(xs: Sequence[int]) -> int:
    out = 1
    for v in xs:
        out *= v
    return out


def run_hsumma_multilevel(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    row_factors: tuple[int, ...],
    col_factors: tuple[int, ...],
    blocks: tuple[int, ...],
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    bcast: str | None = None,
    contention: bool = False,
    trace: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply with the multi-level hierarchy (h = len(factors) levels);
    same contract as :func:`run_hsumma`.

    ``h = 1`` is SUMMA, ``h = 2`` is HSUMMA; deeper hierarchies are the
    paper's future-work direction (see the multilevel ablation).
    """
    s, t = grid
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")
    cfg = MultiLevelConfig(
        m=m, l=l, n=n, s=s, t=t,
        row_factors=tuple(row_factors),
        col_factors=tuple(col_factors),
        blocks=tuple(blocks),
        bcast=bcast,
    )
    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, s, t))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, s, t))

    from repro.faults.spec import coerce_faults
    from repro.network.homogeneous import HomogeneousNetwork
    from repro.simulator.runtime import DEFAULT_PARAMS

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma, trace=trace,
                          retry=faults.retry if faults is not None else None)
        ):
            gi, gj = divmod(rank, t)
            programs.append(
                hsumma_multilevel_program(
                    ctx, da.tile(gi, gj), db.tile(gi, gj), cfg
                )
            )
        return programs

    if backend == "predictor":
        from repro.simulator.predictor import _refuse

        _refuse(
            "a multi-level HSUMMA run", "level-recursive scheduling",
            "the h-level hierarchy nests per-level broadcast loops whose "
            "phase boundaries have no closed form beyond h=2 "
            "(run_hsumma covers that case)",
            "backend='macro' (symmetry-collapsed) for deep hierarchies",
        )

    from repro.simulator.collapse import multilevel_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, collect_trace=trace, faults=faults,
        symmetry=multilevel_symmetry(s, t, cfg.row_factors, cfg.col_factors),
        meta={"program": "hsumma-multilevel", "grid": f"{s}x{t}",
              "levels": len(cfg.blocks)},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, s, t),
    )
    tiles = {divmod(rank, t): sim.return_values[rank] for rank in range(nranks)}
    return dc.assemble(tiles), sim


@dataclasses.dataclass(frozen=True)
class MultiLevelConfig:
    """Parameters for multi-level HSUMMA.

    ``row_factors``/``col_factors`` are per-level grouping factors whose
    products equal ``s``/``t``; ``blocks`` are per-level block sizes,
    non-increasing, each dividing the previous.
    """

    m: int
    l: int
    n: int
    s: int
    t: int
    row_factors: tuple[int, ...]
    col_factors: tuple[int, ...]
    blocks: tuple[int, ...]
    bcast: str | None = None

    def __post_init__(self) -> None:
        h = len(self.row_factors)
        require(h >= 1, "need at least one level")
        require(len(self.col_factors) == h and len(self.blocks) == h,
                "row_factors, col_factors and blocks must have equal length")
        require(_prod(self.row_factors) == self.s,
                f"row factors {self.row_factors} do not multiply to s={self.s}")
        require(_prod(self.col_factors) == self.t,
                f"col factors {self.col_factors} do not multiply to t={self.t}")
        for lev in range(1, h):
            require(self.blocks[lev] <= self.blocks[lev - 1],
                    "blocks must be non-increasing per level")
            require_divides(self.blocks[lev], self.blocks[lev - 1],
                            "multi-level blocks")
        require_divides(self.s, self.m, "grid rows into C rows")
        require_divides(self.t, self.n, "grid cols into C cols")
        require_divides(self.s, self.l, "grid rows into inner dim")
        require_divides(self.t, self.l, "grid cols into inner dim")
        require_divides(self.blocks[0], self.l // self.t,
                        "top block into A tile width")
        require_divides(self.blocks[0], self.l // self.s,
                        "top block into B tile height")
