"""SUMMA and HSUMMA over block-cyclic distributed matrices.

The paper's conclusions name the block-cyclic distribution as its main
future work: "we believe that by using block-cyclic distribution the
communication can be better overlapped and parallelized and thus the
communication cost can be reduced even further."

With the ScaLAPACK-style cyclic layout, global block column ``k`` of
``A`` lives on grid column ``k mod t`` — the broadcast *root rotates
every step* instead of serving ``l/(t*b)`` consecutive steps.  Two
consequences this module lets you measure:

* under the lookahead schedule (``overlap=True``) successive steps'
  broadcasts originate from different owners, so the injection load
  spreads across the grid and the pipeline fills without a hot root;
* the hierarchical (HSUMMA-style) variant splits each rotating
  broadcast into a between-groups phase and a within-group phase,
  keeping the paper's latency collapse while the ownership churns.

Since consecutive block columns never share an owner, the hierarchical
variant cannot amortise an outer block wider than one distribution
block — it is the ``b = B`` special case of HSUMMA, applied per
rotating pivot (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator

import numpy as np

from repro.blocks.distribution import BlockCyclicDistribution
from repro.blocks.ops import local_gemm_acc, slice_cols, slice_rows
from repro.collectives.nonblocking import IBcast
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult
from repro.util.validation import require, require_divides

Gen = Generator[Any, Any, Any]


@dataclasses.dataclass(frozen=True)
class CyclicConfig:
    """Parameters of a block-cyclic SUMMA/HSUMMA run.

    ``C = A @ B`` with ``A (m, l)``, ``B (l, n)``; grid ``s x t``;
    distribution block ``nb`` (square blocks, also the pivot width);
    optional group grid ``I x J`` for the hierarchical variant
    (``I = J = 1`` means plain cyclic SUMMA).
    """

    m: int
    l: int
    n: int
    s: int
    t: int
    nb: int
    I: int = 1
    J: int = 1

    def __post_init__(self) -> None:
        require(self.m > 0 and self.l > 0 and self.n > 0,
                f"matrix dims must be positive: {self.m}, {self.l}, {self.n}")
        require(self.s > 0 and self.t > 0,
                f"grid dims must be positive: {self.s}x{self.t}")
        require_divides(self.nb * self.s, self.m, "cyclic: rows of A/C")
        require_divides(self.nb * self.t, self.n, "cyclic: cols of B/C")
        require_divides(self.nb * self.s, self.l, "cyclic: rows of B")
        require_divides(self.nb * self.t, self.l, "cyclic: cols of A")
        require_divides(self.I, self.s, "cyclic: group rows into grid rows")
        require_divides(self.J, self.t, "cyclic: group cols into grid cols")

    @property
    def nsteps(self) -> int:
        """Global block count along the inner dimension."""
        return self.l // self.nb

    @property
    def hierarchical(self) -> bool:
        return self.I * self.J > 1

    def dist(self, rows: int, cols: int) -> BlockCyclicDistribution:
        return BlockCyclicDistribution(rows, cols, self.s, self.t,
                                       self.nb, self.nb)


def _local_pivot_a(a_tile: Any, cfg: CyclicConfig, k: int) -> Any:
    """Local columns of global block column ``k`` (owner side)."""
    lb = k // cfg.t
    return slice_cols(a_tile, lb * cfg.nb, (lb + 1) * cfg.nb)


def _local_pivot_b(b_tile: Any, cfg: CyclicConfig, k: int) -> Any:
    lb = k // cfg.s
    return slice_rows(b_tile, lb * cfg.nb, (lb + 1) * cfg.nb)


def cyclic_summa_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, cfg: CyclicConfig,
    *, overlap: bool = False,
) -> Gen:
    """Block-cyclic (H)SUMMA generator; returns this rank's packed tile.

    With ``cfg.I * cfg.J > 1`` each pivot broadcast is performed in two
    phases (between groups, then within the group); with ``overlap``
    the next step's broadcasts are pre-posted before the gemm.
    """
    grid = CartComm(ctx.world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    si, tj = cfg.s // cfg.I, cfg.t // cfg.J
    x, ii = divmod(i, si)
    y, jj = divmod(j, tj)

    if cfg.hierarchical:
        world = ctx.world
        outer_row = world.split_by(
            lambda r: (r // cfg.t) * tj + (r % cfg.t) % tj,
            key_of=lambda r: (r % cfg.t) // tj,
        )
        outer_col = world.split_by(
            lambda r: (r % cfg.t) * si + (r // cfg.t) % si,
            key_of=lambda r: (r // cfg.t) // si,
        )
        inner_row = world.split_by(
            lambda r: (r // cfg.t) * cfg.J + (r % cfg.t) // tj,
            key_of=lambda r: (r % cfg.t) % tj,
        )
        inner_col = world.split_by(
            lambda r: (r % cfg.t) * cfg.I + (r // cfg.t) // si,
            key_of=lambda r: (r // cfg.t) % si,
        )

    c_rows = cfg.m // cfg.s
    c_cols = cfg.n // cfg.t
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile: Any = PhantomArray((c_rows, c_cols))
    else:
        c_tile = np.zeros((c_rows, c_cols))

    def owners(k: int) -> tuple[int, int]:
        """Grid column owning A's block col k; grid row owning B's."""
        return k % cfg.t, k % cfg.s

    # ---- flat (non-hierarchical) broadcast paths ------------------------

    def flat_blocking(k: int) -> Gen:
        oc, orow = owners(k)
        a_piv = _local_pivot_a(a_tile, cfg, k) if j == oc else None
        a_piv = yield from grid.row_comm.bcast(a_piv, root=oc)
        b_piv = _local_pivot_b(b_tile, cfg, k) if i == orow else None
        b_piv = yield from grid.col_comm.bcast(b_piv, root=orow)
        return a_piv, b_piv

    def flat_make(k: int) -> tuple[IBcast, IBcast]:
        oc, orow = owners(k)
        return (IBcast(grid.row_comm, oc, tag_salt=k),
                IBcast(grid.col_comm, orow, tag_salt=k))

    def flat_complete(pair, k: int) -> Gen:
        oc, orow = owners(k)
        a_src = _local_pivot_a(a_tile, cfg, k) if j == oc else None
        b_src = _local_pivot_b(b_tile, cfg, k) if i == orow else None
        a_piv = yield from pair[0].complete(a_src)
        b_piv = yield from pair[1].complete(b_src)
        return a_piv, b_piv

    # ---- hierarchical broadcast path (two phases per pivot) -------------

    def hier_blocking(k: int) -> Gen:
        oc, orow = owners(k)
        yk, jk = divmod(oc, tj)
        xk, ik = divmod(orow, si)
        a_part = None
        if jj == jk:
            a_part = _local_pivot_a(a_tile, cfg, k) if y == yk else None
            a_part = yield from outer_row.bcast(a_part, root=yk)
        a_piv = yield from inner_row.bcast(a_part, root=jk)
        b_part = None
        if ii == ik:
            b_part = _local_pivot_b(b_tile, cfg, k) if x == xk else None
            b_part = yield from outer_col.bcast(b_part, root=xk)
        b_piv = yield from inner_col.bcast(b_part, root=ik)
        return a_piv, b_piv

    nsteps = cfg.nsteps

    if not overlap:
        for k in range(nsteps):
            if cfg.hierarchical:
                a_piv, b_piv = yield from hier_blocking(k)
            else:
                a_piv, b_piv = yield from flat_blocking(k)
            c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        return c_tile

    if cfg.hierarchical:
        raise ConfigurationError(
            "overlap is implemented for the flat cyclic variant; the "
            "hierarchical+overlap combination is exercised through "
            "repro.core.overlap at block granularity"
        )

    cur = flat_make(0)
    yield from cur[0].post()
    yield from cur[1].post()
    pending: list[IBcast] = []
    for k in range(nsteps):
        a_piv, b_piv = yield from flat_complete(cur, k)
        pending.extend(cur)
        if k + 1 < nsteps:
            nxt = flat_make(k + 1)
            yield from nxt[0].post()
            yield from nxt[1].post()
        else:
            nxt = None
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        if nxt is not None:
            cur = nxt
        if len(pending) > 8:
            retire, pending = pending[:-4], pending[-4:]
            for bc in retire:
                yield from bc.finish()
    for bc in pending:
        yield from bc.finish()
    return c_tile


def run_cyclic(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    nb: int,
    groups: tuple[int, int] = (1, 1),
    overlap: bool = False,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    bcast_segments: int | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Multiply block-cyclic ``A @ B``; returns ``(C, SimResult)``.

    ``groups=(I, J)`` enables the hierarchical (HSUMMA-style) two-phase
    broadcast; ``overlap=True`` enables one-step lookahead (flat
    variant).  ``bcast_segments`` sets the segmented-broadcast pipeline
    depth (shorthand for ``options.bcast_segments``).
    """
    from repro.faults.spec import coerce_faults

    s, t = grid
    if bcast_segments is not None:
        options = (options or CollectiveOptions()).replace(
            bcast_segments=bcast_segments)
    I, J = groups
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")
    cfg = CyclicConfig(m=m, l=l, n=n, s=s, t=t, nb=nb, I=I, J=J)

    da_dist = cfg.dist(m, l)
    db_dist = cfg.dist(l, n)
    dc_dist = cfg.dist(m, n)

    phantom = isinstance(A, PhantomArray) or isinstance(B, PhantomArray)

    def tile(dist: BlockCyclicDistribution, M: Any, gi: int, gj: int) -> Any:
        if phantom:
            return PhantomArray(dist.tile_shape(gi, gj))
        return dist.extract_tile(np.asarray(M, dtype=float), gi, gj)

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    if backend == "predictor":
        from repro.simulator.predictor import (
            _require_predictable,
            predict_cyclic,
        )

        if overlap:
            raise ConfigurationError(
                "backend='predictor' cannot price cyclic: feature "
                "'overlap' requires execution — the split-phase "
                "schedule posts broadcasts through the point-to-point "
                "machinery and has no closed form; fallback: use "
                "backend='des' or backend='macro'"
            )
        _require_predictable(
            "cyclic", phantom=phantom, faults=faults,
            verify=verify, contention=contention,
        )
        sim = predict_cyclic(
            cfg, network=network, options=options, gamma=gamma,
            a_itemsize=A.itemsize if isinstance(A, PhantomArray) else 8,
            b_itemsize=B.itemsize if isinstance(B, PhantomArray) else 8,
        )
        return PhantomArray((m, n)), sim

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            gi, gj = divmod(rank, t)
            programs.append(
                cyclic_summa_program(
                    ctx,
                    tile(da_dist, A, gi, gj),
                    tile(db_dist, B, gi, gj),
                    cfg,
                    overlap=overlap,
                )
            )
        return programs

    from repro.simulator.collapse import cyclic_symmetry

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults,
        # The overlap schedule runs split-phase broadcasts through the
        # point-to-point machinery, which the collapse cannot cover —
        # declaring no symmetry keeps it on the per-rank path outright.
        symmetry=None if overlap else cyclic_symmetry(s, t, I, J),
        meta={"program": "cyclic", "grid": f"{s}x{t}"},
    )

    tiles = {divmod(rank, t): sim.return_values[rank] for rank in range(nranks)}
    if phantom:
        return PhantomArray((m, n)), sim
    return dc_dist.assemble(tiles), sim
