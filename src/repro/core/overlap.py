"""Communication/computation overlap for SUMMA and HSUMMA.

The paper's conclusions point out that all reported gains come
*without* overlapping communication and computation, and name overlap
as a further improvement.  This module implements the classic
one-step-lookahead scheme on top of the split-phase broadcast
(:mod:`repro.collectives.nonblocking`):

* before computing the rank-``b`` update for step ``k``, every rank
  pre-posts the receives for step ``k+1``'s pivot column and row;
* the owners inject step ``k+1``'s panels as soon as their step-``k``
  forwarding is done, so the transfers progress *while* every rank is
  inside its gemm;
* tree forwarding is nonblocking, so interior ranks relay the next
  pivots without stalling their own compute.

In the limit where per-step communication and computation are
comparable, the virtual makespan drops from ``comm + compute`` towards
``max(comm, compute)`` — which the ablation benchmark measures.

SUMMA's pivot panels never depend on gemm results (they are slices of
the *input* matrices), so lookahead depth 1 is enough to hide one full
step of communication; deeper lookahead only adds buffer memory.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.blocks.dmatrix import DistMatrix
from repro.blocks.distribution import BlockDistribution
from repro.blocks.ops import local_gemm_acc, slice_cols, slice_rows
from repro.collectives.nonblocking import IBcast
from repro.core.summa import SummaConfig
from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]


def _refuse_overlap_predictor(name: str, backend: Any) -> None:
    """The overlap schedules hide transfers behind the gemm through the
    point-to-point machinery; the predictor's serial phase chain has no
    model for that, so it refuses with the named-feature error instead
    of silently pricing the bulk-synchronous schedule."""
    if backend == "predictor":
        from repro.simulator.predictor import _refuse

        _refuse(
            f"a {name} run", "overlap",
            "the lookahead schedule hides transfers behind the gemm and "
            "the phase chain prices phases serially",
            "backend='des' (exact schedule) or backend='macro'",
        )


def summa_overlap_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, cfg: SummaConfig
) -> Gen:
    """SUMMA with one-step lookahead; returns this rank's ``C`` tile.

    Equivalent arithmetic to :func:`repro.core.summa.summa_program`
    (tests assert identical results); only the schedule differs.
    """
    grid = CartComm(ctx.world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    a_tile_cols = cfg.l // cfg.t
    b_tile_rows = cfg.l // cfg.s
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile: Any = PhantomArray((cfg.m // cfg.s, cfg.n // cfg.t))
    else:
        c_tile = np.zeros((cfg.m // cfg.s, cfg.n // cfg.t))

    def pivot_sources(k: int) -> tuple[int, Any, int, Any]:
        """(owner_col, a_slice_or_None, owner_row, b_slice_or_None)."""
        g0 = k * cfg.block
        owner_col = g0 // a_tile_cols
        owner_row = g0 // b_tile_rows
        a_src = None
        if j == owner_col:
            c0 = g0 % a_tile_cols
            a_src = slice_cols(a_tile, c0, c0 + cfg.block)
        b_src = None
        if i == owner_row:
            r0 = g0 % b_tile_rows
            b_src = slice_rows(b_tile, r0, r0 + cfg.block)
        return owner_col, a_src, owner_row, b_src

    seg = ctx.options.bcast_segments

    def make_step(k: int) -> tuple[IBcast, IBcast]:
        owner_col, _, owner_row, _ = pivot_sources(k)
        return (
            IBcast(grid.row_comm, owner_col, tag_salt=2 * k, segments=seg),
            IBcast(grid.col_comm, owner_row, tag_salt=2 * k + 1, segments=seg),
        )

    # Prime the pipeline: post step 0's receives.
    cur = make_step(0)
    yield from cur[0].post()
    yield from cur[1].post()

    pending: list[IBcast] = []
    for k in range(cfg.nsteps):
        _, a_src, _, b_src = pivot_sources(k)
        a_piv = yield from cur[0].complete(a_src)
        b_piv = yield from cur[1].complete(b_src)
        pending.extend(cur)
        if k + 1 < cfg.nsteps:
            nxt = make_step(k + 1)
            yield from nxt[0].post()
            yield from nxt[1].post()
        else:
            nxt = None
        # The gemm overlaps with step k+1's transfers: our irecvs are
        # posted, the owners isend right after their own forwarding.
        c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        if nxt is not None:
            cur = nxt
        # Retire old forward-send handles occasionally (keeps the
        # handle list bounded without synchronising the pipeline).
        if len(pending) > 8:
            retire, pending = pending[:-4], pending[-4:]
            for bc in retire:
                yield from bc.finish()

    for bc in pending:
        yield from bc.finish()
    return c_tile


def hsumma_overlap_program(
    ctx: MpiContext, a_tile: Any, b_tile: Any, cfg: "HSummaConfig"
) -> Gen:
    """HSUMMA with lookahead at both hierarchy levels.

    * inner pivots for global step ``q+1`` are pre-posted before the
      gemm of step ``q`` (as in :func:`summa_overlap_program`);
    * the *outer* block for outer step ``K+1`` is prefetched while the
      inner steps of block ``K`` run, hiding the between-groups
      broadcast behind an entire outer block of computation.
    """
    world = ctx.world
    grid = CartComm(world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    si, tj = cfg.inner_s, cfg.inner_t
    x, ii = divmod(i, si)
    y, jj = divmod(j, tj)

    outer_row = world.split_by(
        lambda r: (r // cfg.t) * tj + (r % cfg.t) % tj,
        key_of=lambda r: (r % cfg.t) // tj,
    )
    outer_col = world.split_by(
        lambda r: (r % cfg.t) * si + (r // cfg.t) % si,
        key_of=lambda r: (r // cfg.t) // si,
    )
    inner_row = world.split_by(
        lambda r: (r // cfg.t) * cfg.J + (r % cfg.t) // tj,
        key_of=lambda r: (r % cfg.t) % tj,
    )
    inner_col = world.split_by(
        lambda r: (r % cfg.t) * cfg.I + (r // cfg.t) // si,
        key_of=lambda r: (r // cfg.t) % si,
    )

    a_tile_cols = cfg.l // cfg.t
    b_tile_rows = cfg.l // cfg.s
    if isinstance(a_tile, PhantomArray) or isinstance(b_tile, PhantomArray):
        c_tile: Any = PhantomArray((cfg.m // cfg.s, cfg.n // cfg.t))
    else:
        c_tile = np.zeros((cfg.m // cfg.s, cfg.n // cfg.t))

    def outer_owner(K: int) -> tuple[int, int, int, int]:
        g0 = K * cfg.outer_block
        yk, jk = divmod(g0 // a_tile_cols, tj)
        xk, ik = divmod(g0 // b_tile_rows, si)
        return yk, jk, xk, ik

    seg = ctx.options.bcast_segments

    def make_outer(K: int) -> tuple[IBcast | None, IBcast | None]:
        yk, jk, xk, ik = outer_owner(K)
        oa = (IBcast(outer_row, yk, tag_salt=K, segments=seg)
              if jj == jk else None)
        ob = (IBcast(outer_col, xk, tag_salt=K, segments=seg)
              if ii == ik else None)
        return oa, ob

    def post_outer(pair) -> Gen:
        for bc in pair:
            if bc is not None:
                yield from bc.post()

    def make_inner(q: int, jk: int, ik: int) -> tuple[IBcast, IBcast]:
        return (
            IBcast(inner_row, jk, tag_salt=q, segments=seg),
            IBcast(inner_col, ik, tag_salt=q, segments=seg),
        )

    # Prime: post outer 0 and (after completing it at K=0 below) inner 0.
    cur_outer = make_outer(0)
    yield from post_outer(cur_outer)

    pending: list[IBcast] = []
    a_outer = b_outer = None
    cur_inner: tuple[IBcast, IBcast] | None = None
    total_steps = cfg.outer_steps * cfg.inner_steps

    for q in range(total_steps):
        K, kk = divmod(q, cfg.inner_steps)
        yk, jk, xk, ik = outer_owner(K)
        g0 = K * cfg.outer_block

        if kk == 0:
            # Complete this block's outer broadcasts; prefetch the next.
            oa, ob = cur_outer
            if oa is not None:
                src = None
                if y == yk:
                    c0 = g0 % a_tile_cols
                    src = slice_cols(a_tile, c0, c0 + cfg.outer_block)
                a_outer = yield from oa.complete(src)
                pending.append(oa)
            if ob is not None:
                src = None
                if x == xk:
                    r0 = g0 % b_tile_rows
                    src = slice_rows(b_tile, r0, r0 + cfg.outer_block)
                b_outer = yield from ob.complete(src)
                pending.append(ob)
            if K + 1 < cfg.outer_steps:
                cur_outer = make_outer(K + 1)
                yield from post_outer(cur_outer)
            if cur_inner is None:
                cur_inner = make_inner(q, jk, ik)
                yield from cur_inner[0].post()
                yield from cur_inner[1].post()

        off = kk * cfg.inner_block
        a_src = slice_cols(a_outer, off, off + cfg.inner_block) if jj == jk else None
        b_src = slice_rows(b_outer, off, off + cfg.inner_block) if ii == ik else None
        a_piv = yield from cur_inner[0].complete(a_src)
        b_piv = yield from cur_inner[1].complete(b_src)
        pending.extend(cur_inner)

        if q + 1 < total_steps:
            K1, _ = divmod(q + 1, cfg.inner_steps)
            _, jk1, _, ik1 = outer_owner(K1)
            nxt = make_inner(q + 1, jk1, ik1)
            yield from nxt[0].post()
            yield from nxt[1].post()
        else:
            nxt = None

        c_tile = yield from local_gemm_acc(ctx, c_tile, a_piv, b_piv)
        cur_inner = nxt

        if len(pending) > 8:
            retire, pending = pending[:-4], pending[-4:]
            for bc in retire:
                yield from bc.finish()

    for bc in pending:
        yield from bc.finish()
    return c_tile


def run_hsumma_overlap(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    groups: int | tuple[int, int],
    outer_block: int,
    inner_block: int | None = None,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    bcast_segments: int | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Overlapped HSUMMA; same contract as
    :func:`repro.core.hsumma.run_hsumma`.  ``bcast_segments`` streams
    each split-phase broadcast in that many pipeline stages (see
    :class:`repro.collectives.nonblocking.IBcast`)."""
    from repro.core.grouping import choose_group_grid
    from repro.core.hsumma import HSummaConfig
    from repro.faults.spec import coerce_faults

    _refuse_overlap_predictor("hsumma-overlap", backend)
    s, t = grid
    if bcast_segments is not None:
        options = (options or CollectiveOptions()).replace(
            bcast_segments=bcast_segments)
    if isinstance(groups, tuple):
        I, J = groups
    else:
        I, J = choose_group_grid(s, t, groups)
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")
    cfg = HSummaConfig(
        m=m, l=l, n=n, s=s, t=t, I=I, J=J,
        outer_block=outer_block,
        inner_block=inner_block if inner_block is not None else outer_block,
    )

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, s, t))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, s, t))

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            gi, gj = divmod(rank, t)
            programs.append(
                hsumma_overlap_program(ctx, da.tile(gi, gj), db.tile(gi, gj),
                                       cfg)
            )
        return programs

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults,
        meta={"program": "hsumma-overlap", "grid": f"{s}x{t}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, s, t),
    )
    tiles = {divmod(rank, t): sim.return_values[rank] for rank in range(nranks)}
    return dc.assemble(tiles), sim


def run_summa_overlap(
    A: Any,
    B: Any,
    *,
    grid: tuple[int, int],
    block: int,
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    bcast_segments: int | None = None,
    contention: bool = False,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Overlapped SUMMA; same contract as
    :func:`repro.core.summa.run_summa`.  ``bcast_segments`` streams
    each split-phase broadcast in that many pipeline stages (see
    :class:`repro.collectives.nonblocking.IBcast`)."""
    from repro.faults.spec import coerce_faults

    _refuse_overlap_predictor("summa-overlap", backend)
    s, t = grid
    if bcast_segments is not None:
        options = (options or CollectiveOptions()).replace(
            bcast_segments=bcast_segments)
    (m, l), (l2, n) = A.shape, B.shape
    if l != l2:
        raise ConfigurationError(f"inner dims differ: {A.shape} @ {B.shape}")
    cfg = SummaConfig(m=m, l=l, n=n, s=s, t=t, block=block)

    da = DistMatrix(A if isinstance(A, PhantomArray) else np.asarray(A, dtype=float),
                    BlockDistribution(m, l, s, t))
    db = DistMatrix(B if isinstance(B, PhantomArray) else np.asarray(B, dtype=float),
                    BlockDistribution(l, n, s, t))

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    faults = coerce_faults(faults)

    def make_programs():
        programs = []
        for rank, ctx in enumerate(
            make_contexts(nranks, options=options, gamma=gamma,
                          retry=faults.retry if faults is not None else None)
        ):
            i, j = divmod(rank, t)
            programs.append(
                summa_overlap_program(ctx, da.tile(i, j), db.tile(i, j), cfg)
            )
        return programs

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention, faults=faults,
        meta={"program": "summa-overlap", "grid": f"{s}x{t}"},
    )

    dc = DistMatrix(
        PhantomArray((m, n)) if da.phantom or db.phantom else np.empty((m, n)),
        BlockDistribution(m, n, s, t),
    )
    tiles = {divmod(rank, t): sim.return_values[rank] for rank in range(nranks)}
    return dc.assemble(tiles), sim
