"""One-call public API for simulated parallel matrix multiplication.

:func:`multiply` dispatches to any algorithm in the library (the
paper's SUMMA/HSUMMA plus the baselines), returning a
:class:`MatmulResult` bundling the product with the simulation's time
accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.payloads import PhantomArray
from repro.simulator.tracing import SimResult
from repro.util.gridmath import factor_grid


@dataclasses.dataclass
class MatmulResult:
    """Product plus simulation accounting.

    Attributes
    ----------
    C:
        The global product (numpy array in data mode, phantom husk in
        scale mode).
    sim:
        The raw :class:`~repro.simulator.tracing.SimResult`.
    algorithm:
        Registry name of the algorithm that ran.
    parameters:
        Echo of the run parameters (grid, blocks, groups, ...).
    """

    C: Any
    sim: SimResult
    algorithm: str
    parameters: dict[str, Any]

    @property
    def total_time(self) -> float:
        """Virtual execution time (max over ranks)."""
        return self.sim.total_time

    @property
    def comm_time(self) -> float:
        """Virtual communication time (max over ranks)."""
        return self.sim.comm_time

    @property
    def compute_time(self) -> float:
        """Virtual computation time (max over ranks)."""
        return self.sim.compute_time


#: Algorithms accepted by :func:`multiply`.
ALGORITHMS = ("summa", "hsumma", "cyclic", "cannon", "fox", "3d", "2.5d",
              "serial")


def multiply(
    A: Any,
    B: Any,
    *,
    nprocs: int | None = None,
    grid: tuple[int, int] | None = None,
    algorithm: str = "hsumma",
    block: int | None = None,
    groups: int | tuple[int, int] | None = None,
    inner_block: int | None = None,
    replication: int | None = None,
    overlap: bool = False,
    network: Any = None,
    params: Any = None,
    gamma: float = 0.0,
    options: Any = None,
    backend: Any = None,
    faults: Any = None,
    verify: Any = None,
    **kwargs: Any,
) -> MatmulResult:
    """Multiply ``A @ B`` on a simulated distributed-memory platform.

    Parameters
    ----------
    A, B:
        numpy arrays (data mode) or :class:`PhantomArray` (scale mode).
    nprocs:
        Processor count; the grid is factored near-square.  Ignored
        when ``grid`` is given.
    grid:
        Explicit ``(s, t)`` grid.
    algorithm:
        One of :data:`ALGORITHMS`.
    block:
        Pivot block size (SUMMA ``b`` / HSUMMA outer ``B`` / Fox-Cannon
        tile step).  Defaults to the largest valid block.
    groups:
        HSUMMA group count ``G`` or explicit ``(I, J)``; defaults to
        ``sqrt(p)`` rounded to a valid count (the paper's optimum).
    inner_block:
        HSUMMA inner block ``b`` (defaults to ``block``).
    replication:
        2.5D replication factor ``c``.
    overlap:
        Use the one-step-lookahead schedule (summa/hsumma/cyclic only),
        hiding communication behind the gemm.
    network, params, gamma, options:
        Platform modelling knobs, see :func:`repro.core.summa.run_summa`.
    backend:
        Execution backend: ``None``/``"des"`` (full discrete event
        simulation), ``"macro"`` (collective-granularity fast path;
        collapses symmetric ranks automatically when eligible) or
        ``"predictor"`` (zero stepping — composes the coster's closed
        forms; summa/hsumma/cyclic without overlap, phantom inputs
        only); see :mod:`repro.simulator.backends` and
        ``docs/cost_model.md``.  Ignored by ``serial``.
    faults:
        Fault injection: a :class:`repro.faults.FaultSchedule` or a
        spec string for :func:`repro.faults.parse_fault_spec`.
        Discrete-event backend only; see ``docs/robustness.md``.
    verify:
        Communication-correctness verification: ``True`` for the
        defaults, a :class:`repro.verify.VerifyOptions`, or a dict of
        its fields.  The verdict lands on ``result.sim.verdict`` (see
        ``docs/verification.md``).  Ignored by ``serial``.

    Returns
    -------
    MatmulResult
    """
    from repro.faults.spec import coerce_faults

    faults = coerce_faults(faults)
    if algorithm == "serial":
        if faults is not None and not faults.empty:
            raise ConfigurationError(
                "the serial algorithm has no network to inject faults into"
            )
        from repro.algorithms.serial import run_serial

        C, sim = run_serial(A, B, gamma=gamma)
        return MatmulResult(C, sim, algorithm, {"gamma": gamma})

    if algorithm in ("3d", "2.5d"):
        if nprocs is None:
            raise ConfigurationError(f"{algorithm} needs nprocs")
    elif grid is None:
        if nprocs is None:
            raise ConfigurationError("pass either nprocs or grid")
        grid = factor_grid(nprocs)
    if grid is not None:
        s, t = grid
    common = dict(network=network, params=params, gamma=gamma, options=options,
                  backend=backend, faults=faults, verify=verify)
    m, l = A.shape
    n = B.shape[1]

    if algorithm == "summa":
        if overlap:
            from repro.core.overlap import run_summa_overlap as runner
        else:
            from repro.core.summa import run_summa as runner

        b = block or _default_block(l, s, t)
        C, sim = runner(A, B, grid=grid, block=b, **common, **kwargs)
        return MatmulResult(
            C, sim, algorithm,
            {"grid": grid, "block": b, "overlap": overlap},
        )

    if algorithm == "hsumma":
        from repro.core.grouping import valid_group_counts

        if overlap:
            from repro.core.overlap import run_hsumma_overlap as runner
        else:
            from repro.core.hsumma import run_hsumma as runner

        b = block or _default_block(l, s, t)
        if groups is None:
            target = int(round((s * t) ** 0.5))
            valid = valid_group_counts(s, t)
            groups = min(valid, key=lambda g: abs(g - target))
        C, sim = runner(
            A, B, grid=grid, groups=groups, outer_block=b,
            inner_block=inner_block, **common, **kwargs,
        )
        return MatmulResult(
            C, sim, algorithm,
            {"grid": grid, "block": b, "groups": groups,
             "inner_block": inner_block or b, "overlap": overlap},
        )

    if algorithm == "cyclic":
        from repro.core.cyclic import run_cyclic

        b = block or _default_block(l, s, t)
        if groups is None:
            group_grid = (1, 1)
        elif isinstance(groups, tuple):
            group_grid = groups
        else:
            from repro.core.grouping import choose_group_grid

            group_grid = choose_group_grid(s, t, groups)
        C, sim = run_cyclic(
            A, B, grid=grid, nb=b, groups=group_grid, overlap=overlap,
            **common, **kwargs,
        )
        return MatmulResult(
            C, sim, algorithm,
            {"grid": grid, "nb": b, "groups": group_grid,
             "overlap": overlap},
        )

    if algorithm == "cannon":
        from repro.algorithms.cannon import run_cannon

        C, sim = run_cannon(A, B, grid=grid, **common, **kwargs)
        return MatmulResult(C, sim, algorithm, {"grid": grid})

    if algorithm == "fox":
        from repro.algorithms.fox import run_fox

        C, sim = run_fox(A, B, grid=grid, **common, **kwargs)
        return MatmulResult(C, sim, algorithm, {"grid": grid})

    if algorithm == "3d":
        from repro.algorithms.dns3d import run_dns3d

        nprocs = nprocs or s * t
        C, sim = run_dns3d(A, B, nprocs=nprocs, **common, **kwargs)
        return MatmulResult(C, sim, algorithm, {"nprocs": nprocs})

    if algorithm == "2.5d":
        from repro.algorithms.algo25d import run_25d

        nprocs = nprocs or s * t
        C, sim = run_25d(
            A, B, nprocs=nprocs, replication=replication or 1, **common, **kwargs
        )
        return MatmulResult(
            C, sim, algorithm,
            {"nprocs": nprocs, "replication": replication or 1},
        )

    raise ConfigurationError(
        f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
    )


def _default_block(l: int, s: int, t: int) -> int:
    """Largest block dividing both tile dimensions of the inner axis."""
    import math

    return math.gcd(l // s, l // t)
