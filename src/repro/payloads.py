"""Payload handling shared by the MPI layer, collectives and matrices.

Two payload families flow through the simulator:

* **Real data** — numpy arrays.  The library moves and multiplies them
  so every algorithm's numerics can be checked against ``A @ B``.
* **Phantom data** — :class:`PhantomArray`, a shape-and-dtype husk with
  no storage.  Large-scale runs (BlueGene/P's 16384 ranks, exascale's
  2^20) only need message *sizes*, and phantoms keep memory flat.

Segmented collectives (pipelined chain, Van de Geijn scatter-allgather)
need to split a payload into roughly equal wire-size pieces and later
reassemble it; :func:`split_payload` / :func:`join_payload` implement
that for both families, preserving shape and dtype through a flat-view
round trip.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.errors import DataMismatchError


@dataclasses.dataclass(frozen=True)
class PhantomArray:
    """A storage-free stand-in for an ``shape``-shaped ``itemsize``-byte array.

    Supports just enough arithmetic (matmul accumulation bookkeeping)
    for the matrix algorithms to run unchanged in phantom mode.
    """

    shape: tuple[int, ...]
    itemsize: int = 8

    # size/nbytes are computed eagerly in __post_init__ and stored
    # through object.__setattr__ (permitted on a frozen dataclass).
    # They used to be cached_property, but husks are ephemeral — one is
    # built per segment per collective step and queried once — so the
    # descriptor machinery cost more than the two multiplies it saved.
    def __post_init__(self) -> None:
        n = 1
        for s in self.shape:
            if s < 0:
                raise DataMismatchError(
                    f"negative dimension in shape {self.shape}"
                )
            n *= s
        if self.itemsize <= 0:
            raise DataMismatchError(
                f"itemsize must be positive, got {self.itemsize}"
            )
        object.__setattr__(self, "size", n)
        object.__setattr__(self, "nbytes", n * self.itemsize)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def reshape(self, *shape: int) -> "PhantomArray":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        new = PhantomArray(tuple(int(s) for s in shape), self.itemsize)
        if new.size != self.size:
            raise DataMismatchError(
                f"cannot reshape phantom of {self.size} elements to {shape}"
            )
        return new

    def matmul_shape(self, other: "PhantomArray") -> "PhantomArray":
        """Shape of ``self @ other`` (2-D only)."""
        if self.ndim != 2 or other.ndim != 2:
            raise DataMismatchError("phantom matmul requires 2-D operands")
        if self.shape[1] != other.shape[0]:
            raise DataMismatchError(
                f"phantom matmul mismatch: {self.shape} @ {other.shape}"
            )
        return PhantomArray((self.shape[0], other.shape[1]), self.itemsize)


@dataclasses.dataclass(frozen=True)
class _Segment:
    """One piece of a split payload, carrying reassembly metadata."""

    index: int
    total: int
    data: Any  # 1-D numpy slice or PhantomArray piece
    shape: tuple[int, ...]  # original payload shape
    phantom: bool

    # Queried on every hop the segment travels (ring allgathers ask
    # size-1 times); computed eagerly for the same reason as
    # PhantomArray.size — segments are ephemeral, so lazy caching via
    # cached_property paid descriptor overhead on every instance.
    def __post_init__(self) -> None:
        object.__setattr__(self, "nbytes", int(self.data.nbytes))


def nbytes_of(payload: Any) -> int:
    """Wire size in bytes of a real or phantom payload."""
    nb = getattr(payload, "nbytes", None)
    if nb is None:
        raise DataMismatchError(
            f"payload {type(payload).__name__} has no nbytes; "
            "only numpy arrays and PhantomArray travel through collectives"
        )
    return int(nb)


def is_phantom(payload: Any) -> bool:
    """True if ``payload`` is storage-free."""
    return isinstance(payload, PhantomArray)


def split_payload(payload: Any, parts: int) -> list[_Segment]:
    """Split ``payload`` into ``parts`` segments of near-equal wire size.

    Works on numpy arrays (flat view, ``np.array_split`` chunking so
    sizes differ by at most one element) and phantoms.  Empty chunks are
    legal: splitting a 3-element array into 8 parts yields 5 zero-byte
    segments, and :func:`join_payload` restores the original exactly.
    """
    if parts <= 0:
        raise DataMismatchError(f"parts must be >= 1, got {parts}")
    if isinstance(payload, PhantomArray):
        base, rem = divmod(payload.size, parts)
        # Husks are immutable, so all equal-size segments can share the
        # same instance instead of allocating `parts` identical ones.
        small = PhantomArray((base,), payload.itemsize)
        big = PhantomArray((base + 1,), payload.itemsize) if rem else small
        return [
            _Segment(
                index=i,
                total=parts,
                data=big if i < rem else small,
                shape=payload.shape,
                phantom=True,
            )
            for i in range(parts)
        ]
    arr = np.asarray(payload)
    flat = arr.reshape(-1)
    pieces = np.array_split(flat, parts)
    return [
        _Segment(index=i, total=parts, data=piece, shape=arr.shape, phantom=False)
        for i, piece in enumerate(pieces)
    ]


def join_payload(segments: Sequence[_Segment]) -> Any:
    """Reassemble the output of :func:`split_payload`.

    Segments may arrive in any order; indices must form a complete
    ``0..total-1`` set from the same split.
    """
    if not segments:
        raise DataMismatchError("cannot join zero segments")
    total = segments[0].total
    shape = segments[0].shape
    if len(segments) != total:
        raise DataMismatchError(
            f"expected {total} segments, got {len(segments)}"
        )
    ordered: list[_Segment | None] = [None] * total
    for seg in segments:
        if seg.total != total or seg.shape != shape:
            raise DataMismatchError("segments come from different splits")
        if ordered[seg.index] is not None:
            raise DataMismatchError(f"duplicate segment index {seg.index}")
        ordered[seg.index] = seg
    segs = [s for s in ordered if s is not None]
    if segs[0].phantom:
        itemsize = segs[0].data.itemsize
        return PhantomArray(shape, itemsize)
    base = _contiguous_base(segs)
    if base is not None:
        # Zero-copy fast path: the segments are untouched in-order
        # views of one flat buffer (the common case — a split that
        # travelled through the simulator and came back whole), so the
        # buffer itself *is* the joined payload.  Payloads move by
        # reference through the simulated wire, so handing back the
        # shared buffer matches what an unsegmented broadcast does.
        return base.reshape(shape)
    flat = np.concatenate([s.data for s in segs])
    return flat.reshape(shape)


def _contiguous_base(segments: Sequence[_Segment]) -> Any:
    """The single flat buffer ``segments`` are in-order contiguous views
    of, or None when they aren't (then joining must copy).

    Zero-size segments carry no bytes and are skipped entirely — their
    (arbitrary) data pointers say nothing about adjacency.
    """
    base = None
    expected_ptr = None
    covered = 0
    for seg in segments:
        data = seg.data
        n = data.size
        if n == 0:
            continue
        if data.base is None or not data.flags.c_contiguous:
            return None
        ptr = data.__array_interface__["data"][0]
        if base is None:
            base = data.base
            if (not isinstance(base, np.ndarray) or base.ndim != 1
                    or not base.flags.c_contiguous
                    or ptr != base.__array_interface__["data"][0]):
                return None
        elif data.base is not base or ptr != expected_ptr:
            return None
        if data.dtype != base.dtype:
            return None
        expected_ptr = ptr + data.nbytes
        covered += n
    if base is None or covered != base.size:
        return None
    return base


def combine_payloads(a: Any, b: Any) -> Any:
    """Element-wise sum used by reductions; phantom + phantom = phantom.

    A phantom-vs-real mix promotes the real operand to a phantom of the
    same shape *and itemsize* (``np.asarray`` dtype), and the result
    keeps the wider itemsize of the two — so a reduction tree that
    mixes husks with concrete float32/float64 arrays still models the
    correct wire size.
    """
    if isinstance(a, PhantomArray) or isinstance(b, PhantomArray):
        pa = a if isinstance(a, PhantomArray) else PhantomArray(
            np.shape(a), np.asarray(a).dtype.itemsize
        )
        pb = b if isinstance(b, PhantomArray) else PhantomArray(
            np.shape(b), np.asarray(b).dtype.itemsize
        )
        if pa.shape != pb.shape:
            raise DataMismatchError(
                f"cannot reduce phantoms of shapes {pa.shape} and {pb.shape}"
            )
        if pb.itemsize > pa.itemsize:
            return pb
        return pa
    return a + b
