"""Deterministic fault injection for the discrete-event simulator.

At the paper's target scales (p = 2^14 ... 2^20, Figure 10) faults and
stragglers are the steady state, not the exception.  This package adds
a *deterministic, seedable* fault model so robustness questions —
"what does a degraded link do to HSUMMA vs SUMMA?", "does the run
survive transient message loss?" — get reproducible answers:

* :class:`FaultSchedule` — a pure function of ``(seed, rank/link,
  virtual time)``; no wall-clock randomness anywhere, so the same seed
  and spec always replay the same fault sequence (pinned by
  ``tests/faults/test_determinism.py``).
* Fault classes: :class:`LinkDegradation` (alpha/beta multipliers over
  time windows), :class:`MessageDrop` (transient per-attempt loss),
  :class:`RankSlowdown` (compute stragglers) and :class:`RankDeath`
  (fail-stop, surfaced as :class:`repro.errors.RankFailure`).
* :class:`RetryPolicy` — backoff/timeout knobs shared by the engine's
  automatic retransmission and the MPI layer's timed receives and
  fault-tolerant broadcast (:mod:`repro.collectives.ft`).
* :func:`parse_fault_spec` — the CLI's ``--faults`` mini-language.

Only the discrete-event backend injects faults; the macro backend
refuses them explicitly (see :mod:`repro.simulator.backends`).  See
``docs/robustness.md`` for the full model and its guarantees.
"""

from repro.faults.schedule import (
    DEFAULT_RETRY_POLICY,
    FaultSchedule,
    LinkDegradation,
    MessageDrop,
    RankDeath,
    RankSlowdown,
    RetryPolicy,
    chan_digest,
    unit_hash,
)
from repro.faults.spec import coerce_faults, parse_fault_spec

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultSchedule",
    "LinkDegradation",
    "MessageDrop",
    "RankDeath",
    "RankSlowdown",
    "RetryPolicy",
    "chan_digest",
    "coerce_faults",
    "parse_fault_spec",
    "unit_hash",
]
