"""Seedable, deterministic fault schedules.

Every stochastic decision is a pure function of the schedule's ``seed``
and of *structural* coordinates (rank, link endpoint, per-channel
message ordinal, attempt number) rather than of wall-clock state or
event-processing order.  Two consequences the tests pin down:

* **Replayability** — the same seed and spec produce the same fault
  sequence in any fresh engine.
* **Severity monotonicity** — for a fixed seed, raising a drop
  probability only *adds* drops (each decision compares the same
  deterministic uniform variate against the larger threshold), and
  degradation/slowdown multipliers scale durations directly, so
  virtual completion times are monotonically non-decreasing in fault
  severity (property-tested in ``tests/property``).

Message ordinals are per ``(src, dst, tag)`` channel.  Channels are
FIFO in the engine, and a rank program's send sequence on a channel is
fixed by the algorithm, so the ordinal of a message is independent of
timing — which is what makes the drop decisions replay identically
even when other faults shift the global event order.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def unit_hash(seed: int, *coords: int) -> float:
    """Deterministic uniform variate in ``[0, 1)`` from integer coords.

    Independent of ``PYTHONHASHSEED`` and of platform: only integer
    arithmetic on 64-bit words.
    """
    x = _splitmix64(seed & _MASK64)
    for c in coords:
        x = _splitmix64(x ^ (c & _MASK64))
    return x / float(1 << 64)


def chan_digest(tag: object) -> int:
    """Stable 64-bit digest of an engine channel tag.

    Engine tags are ints at the raw-simulator level but nested tuples
    (communicator id + user tag, themselves containing ints/strings) at
    the MPI level.  Python's ``hash`` is salted per process for
    strings, so drop decisions fold the tag through splitmix64 instead
    — the digest is identical across processes and platforms.
    """
    if isinstance(tag, bool):  # bool is an int subclass; keep it distinct
        return _splitmix64(2 if tag else 3)
    if isinstance(tag, int):
        return tag & _MASK64
    if tag is None:
        return _splitmix64(1)
    if isinstance(tag, str):
        x = _splitmix64(5)
        for byte in tag.encode("utf-8"):
            x = _splitmix64(x ^ byte)
        return x
    if isinstance(tag, tuple):
        x = _splitmix64(7 ^ len(tag))
        for item in tag:
            x = _splitmix64(x ^ chan_digest(item))
        return x
    raise ConfigurationError(
        f"cannot digest channel tag of type {type(tag).__name__}"
    )


def _require_window(t0: float, t1: float) -> None:
    if t1 < t0:
        raise ConfigurationError(f"fault window end {t1} before start {t0}")


@dataclasses.dataclass(frozen=True)
class LinkDegradation:
    """Multiply a link's Hockney parameters inside a time window.

    ``src``/``dst`` of ``None`` match any endpoint; the window is
    ``[t0, t1)`` against the transfer's (attempt) start time.  The
    alpha/beta split is recovered from the network model as
    ``alpha = transfer_time(src, dst, 0)`` — exact for every affine
    (Hockney-style) cost model in this repository.
    """

    alpha_mult: float = 1.0
    beta_mult: float = 1.0
    src: int | None = None
    dst: int | None = None
    t0: float = 0.0
    t1: float = math.inf

    def __post_init__(self) -> None:
        if self.alpha_mult < 1.0 or self.beta_mult < 1.0:
            raise ConfigurationError(
                "degradation multipliers must be >= 1 "
                f"(got alpha={self.alpha_mult}, beta={self.beta_mult})"
            )
        _require_window(self.t0, self.t1)

    def matches(self, src: int, dst: int, t: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.t0 <= t < self.t1
        )


@dataclasses.dataclass(frozen=True)
class MessageDrop:
    """Transient message loss: each delivery attempt on a matching link
    inside ``[t0, t1)`` is dropped with probability ``p``.

    Dropped attempts are retransmitted automatically by the engine
    (wire time wasted plus :class:`RetryPolicy` backoff), so payloads
    always arrive and numerics are unaffected — only virtual time and
    the retry counters change.
    """

    p: float
    src: int | None = None
    dst: int | None = None
    t0: float = 0.0
    t1: float = math.inf

    def __post_init__(self) -> None:
        if not (0.0 <= self.p < 1.0):
            raise ConfigurationError(
                f"drop probability must be in [0, 1), got {self.p}"
            )
        _require_window(self.t0, self.t1)

    def matches(self, src: int, dst: int, t: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.t0 <= t < self.t1
        )


@dataclasses.dataclass(frozen=True)
class RankSlowdown:
    """Straggler: multiply a rank's compute durations inside a window.

    The factor is sampled at the start of each compute request; a
    request spanning the window boundary is scaled as a whole.
    """

    rank: int
    factor: float
    t0: float = 0.0
    t1: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError(
                f"slowdown factor must be >= 1, got {self.factor}"
            )
        _require_window(self.t0, self.t1)

    def matches(self, rank: int, t: float) -> bool:
        return self.rank == rank and self.t0 <= t < self.t1


@dataclasses.dataclass(frozen=True)
class RankDeath:
    """Fail-stop: the rank dies at virtual ``time``.

    The engine raises :class:`repro.errors.RankFailure` at that instant
    unless the rank's program has already finished.
    """

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"death time must be >= 0, got {self.time}")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Backoff and timeout knobs for recovery mechanisms.

    Used in two places: the engine's automatic retransmission of
    dropped messages (``backoff*``, ``max_retransmits``) and the MPI
    layer's timed receives / fault-tolerant broadcast (``timeout*``,
    ``max_attempts``).
    """

    timeout: float = 0.05
    timeout_multiplier: float = 2.0
    backoff: float = 1e-4
    backoff_multiplier: float = 2.0
    max_backoff: float = 1e-2
    max_retransmits: int = 64
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("retry policy times must be positive")
        if self.timeout_multiplier < 1 or self.backoff_multiplier < 1:
            raise ConfigurationError("retry multipliers must be >= 1")
        if self.max_retransmits < 1 or self.max_attempts < 1:
            raise ConfigurationError("retry attempt caps must be >= 1")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retransmit number ``attempt`` (0-based)."""
        return min(self.backoff * self.backoff_multiplier**attempt,
                   self.max_backoff)

    def escalation_timeout(self, level: int) -> float:
        """Timed-receive window for escalation ``level`` (0-based)."""
        return self.timeout * self.timeout_multiplier**level


DEFAULT_RETRY_POLICY = RetryPolicy()


class FaultSchedule:
    """A deterministic set of faults plus the recovery policy.

    Parameters
    ----------
    seed:
        Seed for every stochastic decision (message drops).
    faults:
        Any mix of :class:`LinkDegradation`, :class:`MessageDrop`,
        :class:`RankSlowdown` and :class:`RankDeath`.
    retry:
        :class:`RetryPolicy` governing the engine's retransmission
        backoff (and the default for MPI-layer retries).
    """

    def __init__(
        self,
        seed: int = 0,
        faults: Iterable[object] = (),
        retry: RetryPolicy | None = None,
    ) -> None:
        self.seed = int(seed)
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.degradations: tuple[LinkDegradation, ...] = ()
        self.drops: tuple[MessageDrop, ...] = ()
        self.slowdowns: tuple[RankSlowdown, ...] = ()
        self.deaths: tuple[RankDeath, ...] = ()
        for fault in faults:
            if isinstance(fault, LinkDegradation):
                self.degradations += (fault,)
            elif isinstance(fault, MessageDrop):
                self.drops += (fault,)
            elif isinstance(fault, RankSlowdown):
                self.slowdowns += (fault,)
            elif isinstance(fault, RankDeath):
                self.deaths += (fault,)
            else:
                raise ConfigurationError(
                    f"unknown fault {fault!r}; expected LinkDegradation, "
                    "MessageDrop, RankSlowdown or RankDeath"
                )
        seen: dict[int, float] = {}
        for death in self.deaths:
            if death.rank in seen:
                raise ConfigurationError(
                    f"rank {death.rank} has two death times "
                    f"({seen[death.rank]} and {death.time})"
                )
            seen[death.rank] = death.time

    # -- queries (all pure) -------------------------------------------------

    @property
    def transient_only(self) -> bool:
        """True when the schedule contains no fail-stop deaths."""
        return not self.deaths

    def compute_factor(self, rank: int, t: float) -> float:
        """Compute-duration multiplier for ``rank`` at time ``t``."""
        factor = 1.0
        for slow in self.slowdowns:
            if slow.matches(rank, t):
                factor *= slow.factor
        return factor

    def link_factors(self, src: int, dst: int, t: float) -> tuple[float, float]:
        """(alpha multiplier, beta multiplier) for the link at ``t``."""
        am = bm = 1.0
        for deg in self.degradations:
            if deg.matches(src, dst, t):
                am *= deg.alpha_mult
                bm *= deg.beta_mult
        return am, bm

    def transfer_time(self, network, src: int, dst: int,
                      nbytes: int, t: float) -> float:
        """Possibly-degraded wire time for one delivery attempt."""
        clean = network.transfer_time(src, dst, nbytes)
        if not self.degradations or src == dst:
            return clean
        am, bm = self.link_factors(src, dst, t)
        if am == 1.0 and bm == 1.0:
            return clean
        alpha = network.transfer_time(src, dst, 0)
        return am * alpha + bm * (clean - alpha)

    def drop(self, src: int, dst: int, chan: int, ordinal: int,
             attempt: int, t: float) -> bool:
        """Is delivery ``attempt`` of message ``ordinal`` on channel
        ``chan`` (a stable integer digest of the tag) dropped?

        The variate depends only on structural coordinates, never on
        ``t`` or ``p`` — raising any probability can therefore only
        add drops, never remove one (severity monotonicity).
        """
        p = 0.0
        for drop in self.drops:
            if drop.matches(src, dst, t):
                p = 1.0 - (1.0 - p) * (1.0 - drop.p)
        if p <= 0.0:
            return False
        return unit_hash(self.seed, src, dst, chan, ordinal, attempt) < p

    def death_events(self) -> tuple[RankDeath, ...]:
        """All fail-stop deaths, ordered by time then rank."""
        return tuple(sorted(self.deaths, key=lambda d: (d.time, d.rank)))

    # -- introspection ------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not (self.degradations or self.drops
                    or self.slowdowns or self.deaths)

    def describe(self) -> str:
        """One-line human summary (CLI echo)."""
        parts = []
        if self.drops:
            parts.append(f"{len(self.drops)} drop rule(s)")
        if self.degradations:
            parts.append(f"{len(self.degradations)} degraded link rule(s)")
        if self.slowdowns:
            parts.append(f"{len(self.slowdowns)} slowdown(s)")
        if self.deaths:
            parts.append(f"{len(self.deaths)} fail-stop death(s)")
        body = ", ".join(parts) if parts else "no faults"
        return f"FaultSchedule(seed={self.seed}: {body})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()
