"""Textual fault-spec mini-language for the CLI and scripts.

A spec is a ``;``-separated list of clauses ``name(key=value, ...)``:

========  ==================================================  ==========================
clause    keys                                                example
========  ==================================================  ==========================
drop      p (required), src, dst, t0, t1                      ``drop(p=0.05)``
degrade   alpha, beta (multipliers), src, dst, t0, t1         ``degrade(src=0,dst=1,beta=8)``
slow      rank, factor (required), t0, t1                     ``slow(rank=3,factor=10)``
kill      rank, t (required)                                  ``kill(rank=5,t=0.25)``
retry     timeout, timeout_multiplier, backoff,               ``retry(timeout=0.01)``
          backoff_multiplier, max_backoff,
          max_retransmits, max_attempts
========  ==================================================  ==========================

Example::

    parse_fault_spec("drop(p=0.02); slow(rank=1,factor=8,t0=0,t1=0.5)",
                     seed=42)

Whitespace is ignored everywhere; numbers use Python float/int syntax.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.faults.schedule import (
    FaultSchedule,
    LinkDegradation,
    MessageDrop,
    RankDeath,
    RankSlowdown,
    RetryPolicy,
)

_CLAUSE_RE = re.compile(r"^\s*([a-z_]+)\s*\(([^()]*)\)\s*$")

_INT_KEYS = {"src", "dst", "rank", "max_retransmits", "max_attempts"}


def _parse_kwargs(clause: str, body: str) -> dict:
    kwargs: dict = {}
    body = body.strip()
    if not body:
        return kwargs
    for item in body.split(","):
        if "=" not in item:
            raise ConfigurationError(
                f"fault spec: expected key=value in {clause!r}, got {item!r}"
            )
        key, _, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            kwargs[key] = int(value) if key in _INT_KEYS else float(value)
        except ValueError:
            raise ConfigurationError(
                f"fault spec: bad number {value!r} for {key!r} in {clause!r}"
            ) from None
    return kwargs


def _build(name: str, kwargs: dict, clause: str):
    try:
        if name == "drop":
            return MessageDrop(**kwargs)
        if name == "degrade":
            mapped = dict(kwargs)
            if "alpha" in mapped:
                mapped["alpha_mult"] = mapped.pop("alpha")
            if "beta" in mapped:
                mapped["beta_mult"] = mapped.pop("beta")
            return LinkDegradation(**mapped)
        if name == "slow":
            return RankSlowdown(**kwargs)
        if name == "kill":
            mapped = dict(kwargs)
            if "t" in mapped:
                mapped["time"] = mapped.pop("t")
            return RankDeath(**mapped)
        if name == "retry":
            return RetryPolicy(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"fault spec: {clause!r}: {exc}") from None
    raise ConfigurationError(
        f"fault spec: unknown clause {name!r} in {clause!r} "
        "(expected drop, degrade, slow, kill or retry)"
    )


def coerce_faults(faults: object, seed: int = 0) -> FaultSchedule | None:
    """Normalise a runner's ``faults=`` argument.

    Accepts ``None`` (pass through), a ready :class:`FaultSchedule`
    (pass through; ``seed`` ignored), or a spec string, which is parsed
    with :func:`parse_fault_spec` under ``seed``.
    """
    if faults is None or isinstance(faults, FaultSchedule):
        return faults
    if isinstance(faults, str):
        return parse_fault_spec(faults, seed=seed)
    raise ConfigurationError(
        f"faults must be None, a FaultSchedule or a spec string, "
        f"got {type(faults).__name__}"
    )


def parse_fault_spec(spec: str, seed: int = 0) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a :class:`FaultSchedule`."""
    faults = []
    retry: RetryPolicy | None = None
    for clause in spec.split(";"):
        if not clause.strip():
            continue
        match = _CLAUSE_RE.match(clause)
        if match is None:
            raise ConfigurationError(
                f"fault spec: cannot parse clause {clause.strip()!r} "
                "(expected name(key=value, ...))"
            )
        name, body = match.group(1), match.group(2)
        built = _build(name, _parse_kwargs(clause.strip(), body), clause.strip())
        if isinstance(built, RetryPolicy):
            if retry is not None:
                raise ConfigurationError(
                    "fault spec: retry(...) given more than once"
                )
            retry = built
        else:
            faults.append(built)
    return FaultSchedule(seed=seed, faults=faults, retry=retry)
