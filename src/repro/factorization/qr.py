"""Blocked Householder QR on a 2-D tile grid (compact WY form).

Per panel ``k`` of ``K = n/b``:

1. the grid column owning block column ``k`` *gathers* the panel rows
   ``>= k`` onto the diagonal owner, which computes the panel's
   Householder factorization (LAPACK-style ``V`` unit-lower-trapezoidal
   reflectors, ``T`` triangular factor, ``R_kk``) — ``~2 r b^2`` flops;
2. the ``V`` blocks are scattered back down the column, and each grid
   row's ``(V_bi, T)`` is broadcast along the row — the SUMMA-like
   phase where the paper's hierarchical grouping applies
   (``hierarchical=True``);
3. trailing update ``A := (I - V T Vᵀ)ᵀ A`` distributed as
   ``W_j = sum_i V_iᵀ A_ij`` (allreduce down each grid column) followed
   by ``A_ij -= V_i (Tᵀ W_j)``.

The factorization overwrites the tiles with ``R`` (upper triangle);
``Q`` is available implicitly through the reflectors, as in LAPACK.
Tests verify ``RᵀR = AᵀA`` (the Gram identity that holds iff ``Q`` is
orthogonal and ``A = QR``) plus agreement with numpy's ``R`` up to row
signs.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np
import scipy.linalg

from repro.errors import ConfigurationError
from repro.factorization.lu import LuConfig
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult

Gen = Generator[Any, Any, Any]

#: QR shares LU's config validation (square matrix, tile grid, groups).
QrConfig = LuConfig


def _panel_householder(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LAPACK-style panel factorization: returns ``(V, T, R)`` with
    ``panel = (I - V T Vᵀ) [R; 0]`` — V unit-lower-trapezoidal
    ``(r, b)``, T upper-triangular ``(b, b)``, R upper ``(b, b)``."""
    r, b = panel.shape
    if r < b:
        raise ConfigurationError(f"panel must be tall, got {panel.shape}")
    (qr_raw, tau), _ = scipy.linalg.qr(panel, mode="raw")
    V = np.tril(qr_raw, -1)[:, :b]
    np.fill_diagonal(V, 1.0)
    R = np.triu(qr_raw)[:b, :b]
    # Build T column by column: T[:i, i] = -tau_i T[:i, :i] (V[:, :i]ᵀ v_i).
    T = np.zeros((b, b))
    for i in range(b):
        T[i, i] = tau[i]
        if i:
            T[:i, i] = -tau[i] * (T[:i, :i] @ (V[:, :i].T @ V[:, i]))
    return V, T, R


def qr_program(
    ctx: MpiContext,
    tiles: dict[tuple[int, int], Any],
    cfg: QrConfig,
) -> Gen:
    """Per-rank blocked-QR generator; tiles end up holding ``R``."""
    grid = CartComm(ctx.world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    b = cfg.b
    K = cfg.nblocks
    phantom = any(isinstance(v, PhantomArray) for v in tiles.values())

    si, tj = cfg.s // cfg.I, cfg.t // cfg.J
    if cfg.hierarchical:
        world = ctx.world
        _x, _ii = divmod(i, si)
        _y, jj = divmod(j, tj)
        outer_row = world.split_by(
            lambda r: (r // cfg.t) * tj + (r % cfg.t) % tj,
            key_of=lambda r: (r % cfg.t) // tj,
        )
        inner_row = world.split_by(
            lambda r: (r // cfg.t) * cfg.J + (r % cfg.t) // tj,
            key_of=lambda r: (r % cfg.t) % tj,
        )

    def hbcast_row(payload: Any, owner_col: int) -> Gen:
        if not cfg.hierarchical:
            out = yield from grid.row_comm.bcast(payload, root=owner_col)
            return out
        yk, jk = divmod(owner_col, tj)
        part = None
        if jj == jk:
            part = yield from outer_row.bcast(payload, root=yk)
        out = yield from inner_row.bcast(part, root=jk)
        return out

    def my_rows_from(k: int) -> list[int]:
        """Global tile rows >= k owned by my grid row."""
        return [bi for bi in range(k, K) if bi % cfg.s == i]

    def my_cols_right(k: int) -> list[int]:
        return [bj for bj in range(k + 1, K) if bj % cfg.t == j]

    for k in range(K):
        owner_row, owner_col = k % cfg.s, k % cfg.t
        rows_mine = my_rows_from(k)
        panel_rows = K - k  # tile rows in the panel

        # 1. Gather the panel onto the diagonal owner of this column.
        gathered = None
        if j == owner_col:
            contribution = [(bi, tiles[(bi, k)]) for bi in rows_mine]
            gathered = yield from grid.col_comm.gather(
                contribution, root=owner_row
            )

        v_mine: Any = None
        T = None
        if i == owner_row and j == owner_col:
            # Flatten and order the gathered panel tiles.
            pieces = dict()
            for bundle in gathered:
                for bi, tile in bundle:
                    pieces[bi] = tile
            order = list(range(k, K))
            yield from ctx.compute_flops(2.0 * (panel_rows * b) * b * b)
            if phantom:
                V_blocks = {bi: PhantomArray((b, b)) for bi in order}
                T = PhantomArray((b, b))
                tiles[(k, k)] = PhantomArray((b, b))
            else:
                panel = np.vstack([pieces[bi] for bi in order])
                V, T, R = _panel_householder(panel)
                V_blocks = {
                    bi: V[q * b : (q + 1) * b] for q, bi in enumerate(order)
                }
                tiles[(k, k)] = R
            # 1b. Scatter each rank's V blocks back down the column.
            parts = [[] for _ in range(cfg.s)]
            for bi in order:
                parts[bi % cfg.s].append((bi, V_blocks[bi]))
            my_part = yield from grid.col_comm.scatter(parts, root=owner_row)
            v_mine = dict(my_part)
        elif j == owner_col:
            my_part = yield from grid.col_comm.scatter(None, root=owner_row)
            v_mine = dict(my_part)
        if j == owner_col:
            # The whole panel column below the diagonal becomes the
            # (implicit) zeros of R, on every rank of the column
            # including the diagonal owner itself.
            for bi in rows_mine:
                if bi > k:
                    tiles[(bi, k)] = (
                        PhantomArray((b, b)) if phantom else np.zeros((b, b))
                    )
            # Every owner-column rank roots a row broadcast and needs T.
            T = yield from grid.col_comm.bcast(T, root=owner_row)

        # 2. Broadcast (V blocks for my grid row, T) along the row —
        # packed into one stacked array so segmented broadcasts work;
        # the block list is derivable on every receiver (row peers share
        # the grid row, hence the same rows_mine).
        payload = None
        if j == owner_col:
            if phantom:
                payload = PhantomArray(((len(rows_mine) + 1) * b, b))
            else:
                payload = np.vstack(
                    [v_mine[bi] for bi in rows_mine] + [T]
                )
        payload = yield from hbcast_row(payload, owner_col)
        if phantom:
            v_blocks = {bi: PhantomArray((b, b)) for bi in rows_mine}
            T = PhantomArray((b, b))
        else:
            v_blocks = {
                bi: payload[q * b : (q + 1) * b]
                for q, bi in enumerate(rows_mine)
            }
            T = payload[len(rows_mine) * b :]

        cols = my_cols_right(k)
        if not cols:
            continue

        # 3a. Partial W_j = sum_bi V_biᵀ A_bi,j, allreduced per column.
        partial: dict[int, Any] = {}
        for bj in cols:
            acc = None
            for bi in rows_mine:
                vb = v_blocks.get(bi)
                if vb is None:
                    continue
                yield from ctx.compute_flops(2.0 * b**3)
                if phantom:
                    acc = PhantomArray((b, b))
                else:
                    term = vb.T @ tiles[(bi, bj)]
                    acc = term if acc is None else acc + term
            if acc is None:
                acc = PhantomArray((b, b)) if phantom else np.zeros((b, b))
            partial[bj] = acc
        # One allreduce of the stacked W blocks down the grid column.
        stacked = (
            PhantomArray((b, len(cols) * b))
            if phantom
            else np.hstack([partial[bj] for bj in cols])
        )
        stacked = yield from grid.col_comm.allreduce(stacked)
        if not phantom:
            partial = {
                bj: stacked[:, q * b : (q + 1) * b]
                for q, bj in enumerate(cols)
            }

        # 3b. A_bi,bj -= V_bi (Tᵀ W_bj).
        for bj in cols:
            if phantom:
                yield from ctx.compute_flops(2.0 * b**3)
                tw: Any = PhantomArray((b, b))
            else:
                yield from ctx.compute_flops(2.0 * b**3)
                tw = T.T @ partial[bj]
            for bi in rows_mine:
                vb = v_blocks.get(bi)
                if vb is None:
                    continue
                yield from ctx.compute_flops(2.0 * b**3)
                if not phantom:
                    tiles[(bi, bj)] = tiles[(bi, bj)] - vb @ tw
    return tiles


def run_block_qr(
    A: Any,
    *,
    grid: tuple[int, int],
    block: int,
    groups: tuple[int, int] = (1, 1),
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    verify: Any = None,
) -> tuple[Any, SimResult]:
    """Factor ``A = Q R`` on a simulated platform; returns ``(R, SimResult)``
    (``Q`` stays implicit in the reflectors, as in LAPACK)."""
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ConfigurationError(f"this QR driver needs square A, got {A.shape}")
    s, t = grid
    I, J = groups
    cfg = QrConfig(n=n, b=block, s=s, t=t, I=I, J=J)
    K = cfg.nblocks
    phantom = isinstance(A, PhantomArray)

    per_rank: list[dict[tuple[int, int], Any]] = [dict() for _ in range(s * t)]
    for bi in range(K):
        for bj in range(K):
            rank = (bi % s) * t + (bj % t)
            if phantom:
                per_rank[rank][(bi, bj)] = PhantomArray((block, block))
            else:
                Ad = np.asarray(A, dtype=float)
                per_rank[rank][(bi, bj)] = Ad[
                    bi * block : (bi + 1) * block,
                    bj * block : (bj + 1) * block,
                ].copy()

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    def make_programs():
        return [
            qr_program(ctx, dict(per_rank[rank]), cfg)
            for rank, ctx in enumerate(
                make_contexts(nranks, options=options, gamma=gamma)
            )
        ]

    if backend == "predictor":
        from repro.simulator.predictor import _refuse

        _refuse(
            "a block QR factorisation", "data-dependent reflector flow",
            "panel factorisation and trailing updates couple through "
            "reflector broadcasts whose extents shrink with the "
            "factorisation front, leaving no per-step closed form",
            "backend='macro' for scale runs, backend='des' for data",
        )

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention,
        meta={"program": "qr", "grid": f"{s}x{t}"},
    )

    if phantom:
        return PhantomArray((n, n)), sim
    R = np.zeros((n, n))
    for rank in range(nranks):
        for (bi, bj), tile in sim.return_values[rank].items():
            R[bi * block : (bi + 1) * block,
              bj * block : (bj + 1) * block] = tile
    return R, sim
