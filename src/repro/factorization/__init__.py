"""Dense factorizations with hierarchical panel broadcasts.

The paper's conclusions propose applying the HSUMMA grouping idea "to
other numerical linear algebra kernels such as QR/LU factorization".
This package implements a right-looking block LU over a 2-D
block-cyclic grid whose panel broadcasts — structurally the same pivot
row/column broadcasts as SUMMA — can run flat (ScaLAPACK-style) or
through the paper's two-level hierarchy ("HLU").
"""

from repro.factorization.lu import LuConfig, run_block_lu
from repro.factorization.qr import QrConfig, run_block_qr

__all__ = ["LuConfig", "run_block_lu", "QrConfig", "run_block_qr"]
