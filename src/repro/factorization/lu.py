"""Right-looking block LU factorization (no pivoting) on a 2-D grid.

``A = L @ U`` with unit-lower ``L``; tiles of size ``b x b`` are
block-cyclically distributed over the ``s x t`` grid (the ScaLAPACK
layout).  Per step ``k`` of ``K = n/b``:

1. the owner of tile ``(k, k)`` factors it (``~2/3 b^3`` flops) and
   broadcasts ``U_kk`` down its grid column / ``L_kk`` along its row;
2. the column panel owners compute ``L_ik = A_ik U_kk^{-1}`` and the
   row panel owners ``U_kj = L_kk^{-1} A_kj`` (``b^3`` flops per tile);
3. the ``L`` panel is broadcast along grid rows and the ``U`` panel
   down grid columns — the same pivot-column/pivot-row pattern as
   SUMMA, and the place the paper's hierarchy plugs in;
4. every rank updates its trailing tiles ``A_ij -= L_ik U_kj``.

``hierarchical=True`` routes the panel broadcasts of step 3 through the
two-phase between-groups/within-group scheme ("HLU"), cutting the
latency factor exactly as HSUMMA does for multiplication.

No pivoting: the algorithm is meant for the communication study, and
tests feed it diagonally dominant matrices where pivoting is
unnecessary.  Phantom mode works as for the multiplication kernels.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator

import numpy as np
import scipy.linalg

from repro.errors import ConfigurationError
from repro.mpi.cart import CartComm
from repro.mpi.comm import CollectiveOptions, MpiContext, make_contexts
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import Network
from repro.payloads import PhantomArray
from repro.verify.session import run_verified
from repro.simulator.runtime import DEFAULT_PARAMS
from repro.simulator.tracing import SimResult
from repro.util.validation import require, require_divides

Gen = Generator[Any, Any, Any]


@dataclasses.dataclass(frozen=True)
class LuConfig:
    """Parameters of a block LU run.

    ``n x n`` matrix, tile size ``b``, grid ``s x t``, optional group
    grid ``I x J`` for hierarchical panel broadcasts.
    """

    n: int
    b: int
    s: int
    t: int
    I: int = 1
    J: int = 1

    def __post_init__(self) -> None:
        require(self.n > 0 and self.b > 0, f"need n, b > 0; got {self.n}, {self.b}")
        require_divides(self.b, self.n, "LU: tile size into matrix size")
        require(self.s > 0 and self.t > 0,
                f"grid dims must be positive: {self.s}x{self.t}")
        require_divides(self.I, self.s, "LU: group rows into grid rows")
        require_divides(self.J, self.t, "LU: group cols into grid cols")

    @property
    def nblocks(self) -> int:
        return self.n // self.b

    @property
    def hierarchical(self) -> bool:
        return self.I * self.J > 1


def _getrf_nopiv(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpivoted LU of a small square block: A = L @ U, unit diag L."""
    lu = a.copy()
    m = lu.shape[0]
    for k in range(m - 1):
        piv = lu[k, k]
        if piv == 0:
            raise ConfigurationError(
                "zero pivot in unpivoted LU; feed a diagonally dominant matrix"
            )
        lu[k + 1 :, k] /= piv
        lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    L = np.tril(lu, -1) + np.eye(m)
    U = np.triu(lu)
    return L, U


def lu_program(
    ctx: MpiContext,
    tiles: dict[tuple[int, int], Any],
    cfg: LuConfig,
) -> Gen:
    """Per-rank block-LU generator.

    ``tiles`` maps global tile coordinates ``(bi, bj)`` (only those this
    rank owns) to ``b x b`` arrays (or phantoms).  Returns the tiles
    dict holding ``L`` strictly below the diagonal, ``U`` on and above,
    with the diagonal tiles packed as ``(L_kk, U_kk)`` pairs.
    """
    grid = CartComm(ctx.world, cfg.s, cfg.t)
    i, j = grid.row, grid.col
    b = cfg.b
    K = cfg.nblocks
    phantom = any(isinstance(v, PhantomArray) for v in tiles.values())

    si, tj = cfg.s // cfg.I, cfg.t // cfg.J
    if cfg.hierarchical:
        world = ctx.world
        _x, ii = divmod(i, si)
        _y, jj = divmod(j, tj)
        outer_row = world.split_by(
            lambda r: (r // cfg.t) * tj + (r % cfg.t) % tj,
            key_of=lambda r: (r % cfg.t) // tj,
        )
        outer_col = world.split_by(
            lambda r: (r % cfg.t) * si + (r // cfg.t) % si,
            key_of=lambda r: (r // cfg.t) // si,
        )
        inner_row = world.split_by(
            lambda r: (r // cfg.t) * cfg.J + (r % cfg.t) // tj,
            key_of=lambda r: (r % cfg.t) % tj,
        )
        inner_col = world.split_by(
            lambda r: (r % cfg.t) * cfg.I + (r // cfg.t) // si,
            key_of=lambda r: (r // cfg.t) % si,
        )

    def hbcast_row(payload: Any, owner_col: int) -> Gen:
        """Broadcast along the grid row from grid column ``owner_col``,
        hierarchically when configured."""
        if not cfg.hierarchical:
            out = yield from grid.row_comm.bcast(payload, root=owner_col)
            return out
        yk, jk = divmod(owner_col, tj)
        part = None
        if jj == jk:
            part = yield from outer_row.bcast(payload, root=yk)
        out = yield from inner_row.bcast(part, root=jk)
        return out

    def hbcast_col(payload: Any, owner_row: int) -> Gen:
        if not cfg.hierarchical:
            out = yield from grid.col_comm.bcast(payload, root=owner_row)
            return out
        xk, ik = divmod(owner_row, si)
        part = None
        if ii == ik:
            part = yield from outer_col.bcast(payload, root=xk)
        out = yield from inner_col.bcast(part, root=ik)
        return out

    def my_rows_below(k: int) -> list[int]:
        """Global tile-row indices > k owned by my grid row."""
        return [bi for bi in range(k + 1, K) if bi % cfg.s == i]

    def my_cols_right(k: int) -> list[int]:
        return [bj for bj in range(k + 1, K) if bj % cfg.t == j]

    for k in range(K):
        owner_row, owner_col = k % cfg.s, k % cfg.t

        # 1. Factor the diagonal tile on its owner.
        diag = None
        if i == owner_row and j == owner_col:
            akk = tiles[(k, k)]
            yield from ctx.compute_flops((2.0 / 3.0) * b**3)
            if phantom:
                lkk = ukk = PhantomArray((b, b))
            else:
                lkk, ukk = _getrf_nopiv(akk)
            tiles[(k, k)] = (lkk, ukk)
            diag = (lkk, ukk)
        # U_kk to the column panel (down owner_col's grid column);
        # L_kk to the row panel (along owner_row's grid row).
        if j == owner_col:
            got = yield from grid.col_comm.bcast(
                None if diag is None else diag[1], root=owner_row
            )
            ukk = got
        if i == owner_row:
            got = yield from grid.row_comm.bcast(
                None if diag is None else diag[0], root=owner_col
            )
            lkk = got

        # 2. Panel solves.
        l_panel: dict[int, Any] = {}
        if j == owner_col:
            for bi in my_rows_below(k):
                yield from ctx.compute_flops(float(b**3))
                if phantom:
                    l_panel[bi] = PhantomArray((b, b))
                else:
                    l_panel[bi] = scipy.linalg.solve_triangular(
                        ukk.T, tiles[(bi, k)].T, lower=True
                    ).T
                tiles[(bi, k)] = l_panel[bi]
        u_panel: dict[int, Any] = {}
        if i == owner_row:
            for bj in my_cols_right(k):
                yield from ctx.compute_flops(float(b**3))
                if phantom:
                    u_panel[bj] = PhantomArray((b, b))
                else:
                    u_panel[bj] = scipy.linalg.solve_triangular(
                        lkk, tiles[(k, bj)], lower=True, unit_diagonal=True
                    )
                tiles[(k, bj)] = u_panel[bj]

        # 3. Panel broadcasts (the SUMMA-like phase; hierarchical here).
        # Panels travel as one stacked array; the tile indices are
        # derivable on every receiver (row-comm peers share the grid
        # row i, col-comm peers share the grid column j), which keeps
        # the payloads segmentable for scatter-allgather broadcasts.
        l_indices = my_rows_below(k)
        l_stack = None
        if j == owner_col:
            if phantom:
                l_stack = PhantomArray((len(l_indices) * b, b))
            elif l_indices:
                l_stack = np.vstack([l_panel[bi] for bi in l_indices])
            else:
                l_stack = np.empty((0, b))
        l_stack = yield from hbcast_row(l_stack, owner_col)
        if phantom:
            l_panel = {bi: PhantomArray((b, b)) for bi in l_indices}
        else:
            l_panel = {
                bi: l_stack[q * b : (q + 1) * b]
                for q, bi in enumerate(l_indices)
            }

        u_indices = my_cols_right(k)
        u_stack = None
        if i == owner_row:
            if phantom:
                u_stack = PhantomArray((b, len(u_indices) * b))
            elif u_indices:
                u_stack = np.hstack([u_panel[bj] for bj in u_indices])
            else:
                u_stack = np.empty((b, 0))
        u_stack = yield from hbcast_col(u_stack, owner_row)
        if phantom:
            u_panel = {bj: PhantomArray((b, b)) for bj in u_indices}
        else:
            u_panel = {
                bj: u_stack[:, q * b : (q + 1) * b]
                for q, bj in enumerate(u_indices)
            }

        # 4. Trailing update on my tiles.
        for bi in my_rows_below(k):
            lik = l_panel.get(bi)
            if lik is None:
                continue
            for bj in my_cols_right(k):
                ukj = u_panel.get(bj)
                if ukj is None:
                    continue
                yield from ctx.compute_flops(2.0 * b**3)
                if not phantom:
                    tiles[(bi, bj)] = tiles[(bi, bj)] - lik @ ukj
    return tiles


def run_block_lu(
    A: Any,
    *,
    grid: tuple[int, int],
    block: int,
    groups: tuple[int, int] = (1, 1),
    network: Network | None = None,
    params: Any = None,
    gamma: float = 0.0,
    options: CollectiveOptions | None = None,
    contention: bool = False,
    backend: Any = None,
    verify: Any = None,
) -> tuple[Any, Any, SimResult]:
    """Factor ``A = L @ U`` on a simulated platform.

    Returns ``(L, U, SimResult)`` — concrete triangular factors in data
    mode, phantoms in scale mode.  ``groups=(I, J)`` switches the panel
    broadcasts to the hierarchical scheme.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ConfigurationError(f"LU needs a square matrix, got {A.shape}")
    s, t = grid
    I, J = groups
    cfg = LuConfig(n=n, b=block, s=s, t=t, I=I, J=J)
    K = cfg.nblocks
    phantom = isinstance(A, PhantomArray)

    def owner(bi: int, bj: int) -> tuple[int, int]:
        return bi % s, bj % t

    # Distribute tiles.
    per_rank: list[dict[tuple[int, int], Any]] = [dict() for _ in range(s * t)]
    for bi in range(K):
        for bj in range(K):
            oi, oj = owner(bi, bj)
            rank = oi * t + oj
            if phantom:
                per_rank[rank][(bi, bj)] = PhantomArray((block, block))
            else:
                Ad = np.asarray(A, dtype=float)
                per_rank[rank][(bi, bj)] = Ad[
                    bi * block : (bi + 1) * block,
                    bj * block : (bj + 1) * block,
                ].copy()

    nranks = s * t
    if network is None:
        network = HomogeneousNetwork(nranks, params or DEFAULT_PARAMS)
    def make_programs():
        return [
            lu_program(ctx, dict(per_rank[rank]), cfg)
            for rank, ctx in enumerate(
                make_contexts(nranks, options=options, gamma=gamma)
            )
        ]

    if backend == "predictor":
        from repro.simulator.predictor import _refuse

        _refuse(
            "a block LU factorisation", "data-dependent panel ownership",
            "the trailing-update schedule shrinks with the elimination "
            "front, so each rank's broadcast participation depends on "
            "the step index and has no per-step closed form",
            "backend='macro' for scale runs, backend='des' for data",
        )

    sim = run_verified(
        make_programs, verify=verify, backend=backend, network=network,
        contention=contention,
        meta={"program": "lu", "grid": f"{s}x{t}"},
    )

    if phantom:
        return PhantomArray((n, n)), PhantomArray((n, n)), sim

    L = np.zeros((n, n))
    U = np.zeros((n, n))
    for rank in range(nranks):
        for (bi, bj), tile in sim.return_values[rank].items():
            r0, c0 = bi * block, bj * block
            if bi == bj:
                lkk, ukk = tile
                L[r0 : r0 + block, c0 : c0 + block] = lkk
                U[r0 : r0 + block, c0 : c0 + block] = ukk
            elif bi > bj:
                L[r0 : r0 + block, c0 : c0 + block] = tile
            else:
                U[r0 : r0 + block, c0 : c0 + block] = tile
    return L, U, sim
