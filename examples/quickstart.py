#!/usr/bin/env python
"""Quickstart: multiply two matrices with HSUMMA on a simulated cluster.

Runs the paper's algorithm end to end in *data mode* — real numpy
blocks travel through the simulated network, so the result is checked
against ``A @ B`` — and reports the virtual execution/communication
times the simulation accounts.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import HockneyParams, multiply
from repro.mpi.comm import CollectiveOptions

def main() -> None:
    rng = np.random.default_rng(2013)
    n = 256
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    # A 16-rank virtual cluster: 100 us latency, 1 GB/s links.  The
    # large-message scatter-allgather broadcast is what MPI libraries
    # use at these sizes — and the regime where HSUMMA's hierarchy pays.
    params = HockneyParams(alpha=1e-4, beta=1e-9)
    options = CollectiveOptions(bcast="vandegeijn")

    result = multiply(
        A,
        B,
        nprocs=16,
        algorithm="hsumma",
        block=16,       # outer = inner block (the paper's b = B)
        groups=4,       # sqrt(p), the paper's optimum
        params=params,
        options=options,
        gamma=1e-9,     # 1 Gflop/s per rank
    )

    error = np.max(np.abs(result.C - A @ B))
    print(f"HSUMMA on 16 simulated ranks, n={n}")
    print(f"  parameters:        {result.parameters}")
    print(f"  max abs error:     {error:.3e}")
    print(f"  virtual total:     {result.total_time * 1e3:.3f} ms")
    print(f"  virtual comm:      {result.comm_time * 1e3:.3f} ms")
    print(f"  virtual compute:   {result.compute_time * 1e3:.3f} ms")
    print(f"  messages sent:     {result.sim.total_messages}")
    print(f"  bytes moved:       {result.sim.total_bytes}")

    assert error < 1e-10, "distributed result must match numpy"

    # Compare against plain SUMMA on the same virtual platform.
    summa = multiply(A, B, nprocs=16, algorithm="summa", block=16,
                     params=params, options=options, gamma=1e-9)
    print(f"\nSUMMA comm {summa.comm_time * 1e3:.3f} ms vs "
          f"HSUMMA comm {result.comm_time * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
