#!/usr/bin/env python
"""Run any algorithm at BlueGene/P scale with the macro backend.

The discrete-event backend simulates every point-to-point message, so
a 16384-rank run takes hours.  The macro backend runs the *same* rank
programs but satisfies each collective from a cost oracle, making
large-scale runs a matter of seconds-to-minutes — for every algorithm
in the repo, not just the ones with a hand-derived analytic model.

The two backends agree exactly on homogeneous networks, which this
script demonstrates first at a small scale.

Usage::

    python examples/macro_scale.py [p]

``p`` is the (square) rank count for the large run; default 4096 keeps
the demo under ~15 s, 16384 reproduces the paper's BlueGene/P scale in
under a minute.
"""

import math
import sys
import time

from repro.core.cyclic import run_cyclic
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
GAMMA = 1e-10


def run(p: int, n: int, backend: str | None):
    s = int(math.isqrt(p))
    if s * s != p:
        raise SystemExit(f"p must be a perfect square, got {p}")
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    t0 = time.perf_counter()
    _, sim = run_cyclic(
        A, B, grid=(s, s), nb=n // s, params=PARAMS, gamma=GAMMA,
        backend=backend,
    )
    return time.perf_counter() - t0, sim


def main() -> None:
    p_large = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    # 1. Both backends run the same program and agree exactly.
    print("Small scale (p=64): same rank program on both backends")
    for backend in (None, "macro"):
        wall, sim = run(64, 1024, backend)
        print(f"  {backend or 'des':5s}: simulated {sim.total_time:.6f} s "
              f"(comm {sim.comm_time:.6f} s)  wall {wall:.2f} s")

    # 2. Only the macro backend reaches BlueGene/P scale interactively.
    n = 256 * int(math.isqrt(p_large))
    print(f"\nLarge scale (p={p_large}, n={n}): macro backend only")
    wall, sim = run(p_large, n, "macro")
    print(f"  macro: simulated {sim.total_time:.4f} s "
          f"(comm {sim.comm_time:.4f} s)  wall {wall:.1f} s")
    print("  (the DES would need hours here — same program, "
          "same answer at any p where both run)")


if __name__ == "__main__":
    main()
