#!/usr/bin/env python
"""Compare every broadcast algorithm in the library, standalone and
inside SUMMA/HSUMMA.

The paper's key architectural claim is that no application-oblivious
broadcast can replace HSUMMA's two-level pattern.  This example first
races the raw broadcasts at several message sizes (showing the usual
small-message/large-message crossover between trees and
scatter-allgather), then shows that whichever broadcast you pick,
adding HSUMMA's hierarchy on top still helps.

Usage::

    python examples/broadcast_showdown.py
"""


from repro import HockneyParams, PhantomArray
from repro.collectives import BROADCAST_ALGORITHMS
from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.mpi.comm import CollectiveOptions
from repro.simulator import run_spmd
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=3e-6, beta=1.25e-10)  # BG/P-flavoured


def bcast_time(algorithm: str, nelems: int, nranks: int) -> float:
    def prog(ctx):
        payload = PhantomArray((nelems,)) if ctx.rank == 0 else None
        yield from ctx.world.bcast(payload, root=0, algorithm=algorithm)

    return run_spmd(prog, nranks, params=PARAMS).total_time


def main() -> None:
    nranks = 64
    sizes = [64, 4096, 262_144, 1_048_576]

    rows = []
    for algo in sorted(BROADCAST_ALGORITHMS):
        row = [algo]
        for nelems in sizes:
            row.append(bcast_time(algo, nelems, nranks) * 1e3)
        rows.append(row)
    print(format_table(
        ["algorithm"] + [f"{s} elems (ms)" for s in sizes],
        rows,
        title=f"Raw broadcast over {nranks} simulated ranks",
    ))

    print("\nNote the crossover: binomial wins small messages, "
          "Van de Geijn / pipelined win large ones.\n")

    # Now the same algorithms inside SUMMA vs HSUMMA.
    n, block, G = 2048, 16, 8
    rows = []
    for algo in sorted(BROADCAST_ALGORITHMS):
        opts = CollectiveOptions(bcast=algo)
        _, s_sim = run_summa(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(8, 8), block=block, params=PARAMS, options=opts,
        )
        _, h_sim = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=(8, 8), groups=G, outer_block=block,
            params=PARAMS, options=opts,
        )
        rows.append([
            algo,
            s_sim.comm_time * 1e3,
            h_sim.comm_time * 1e3,
            s_sim.comm_time / h_sim.comm_time,
        ])
    print(format_table(
        ["broadcast", "SUMMA comm (ms)", "HSUMMA comm (ms)", "ratio"],
        rows,
        title=f"SUMMA vs HSUMMA(G={G}) at p=64, n={n}, b=B={block}",
    ))
    print(
        "\nUnder the paper's bulk-synchronous model HSUMMA never loses"
        " (Section IV-C; the step-model benchmark asserts it for every"
        " algorithm).  The full event simulation above adds a nuance"
        " the paper's model excludes: chain/pipelined SUMMA overlaps"
        " successive steps down the chain, which can beat the"
        " hierarchy's extra synchronisation — visible as ratios < 1"
        " for 'chain' and 'pipelined'."
    )


if __name__ == "__main__":
    main()
