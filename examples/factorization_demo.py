#!/usr/bin/env python
"""Hierarchical panel broadcasts in LU and QR (paper future work).

Factors one matrix with the distributed block LU and blocked
Householder QR, verifies both numerically, and then measures how the
paper's two-level broadcast grouping shrinks each kernel's
communication time at scale (phantom mode).

Usage::

    python examples/factorization_demo.py
"""

import numpy as np

from repro import HockneyParams, PhantomArray
from repro.factorization import run_block_lu, run_block_qr
from repro.mpi.comm import CollectiveOptions
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


def verify() -> None:
    rng = np.random.default_rng(42)
    n = 64
    A = rng.standard_normal((n, n)) + n * np.eye(n)  # diagonally dominant

    L, U, lu_sim = run_block_lu(A, grid=(2, 2), block=8, groups=(2, 2),
                                params=PARAMS)
    print(f"LU:  |LU - A|_max = {np.max(np.abs(L @ U - A)):.2e}  "
          f"(comm {lu_sim.comm_time * 1e3:.2f} ms on 4 ranks)")

    R, qr_sim = run_block_qr(A, grid=(2, 2), block=8, groups=(2, 2),
                             params=PARAMS)
    gram = np.max(np.abs(R.T @ R - A.T @ A))
    print(f"QR:  |R'R - A'A|_max = {gram:.2e}  "
          f"(comm {qr_sim.comm_time * 1e3:.2f} ms on 4 ranks)")


def scale_study() -> None:
    n, grid, groups = 2048, (8, 8), (4, 4)
    rows = []
    for kernel, runner in (("LU", run_block_lu), ("QR", run_block_qr)):
        for block in (16, 32):
            if kernel == "QR" and block == 16:
                continue  # QR panel gathers get slow at tiny blocks
            A = PhantomArray((n, n))
            flat = runner(A, grid=grid, block=block,
                          params=PARAMS, options=VDG)[-1]
            hier = runner(A, grid=grid, block=block, groups=groups,
                          params=PARAMS, options=VDG)[-1]
            rows.append([kernel, block, flat.comm_time, hier.comm_time,
                         flat.comm_time / hier.comm_time])
    print()
    print(format_table(
        ["kernel", "block", "flat comm (s)", "grouped comm (s)", "ratio"],
        rows,
        title=f"Hierarchical panel broadcasts at p=64, n={n} (phantom mode)",
    ))
    print("\nThe same grouping that drives HSUMMA cuts the factorization "
          "kernels' panel-broadcast time — the paper's QR/LU conjecture.")


def main() -> None:
    verify()
    scale_study()


if __name__ == "__main__":
    main()
