#!/usr/bin/env python
"""Heterogeneous 1-D SUMMA: load balancing plus hierarchical broadcasts.

Simulates a mixed cluster (half slow nodes, half fast) and compares
three configurations of the same multiplication:

1. naive uniform column split (the slow ranks straggle),
2. speed-proportional split (balanced compute),
3. balanced split + the paper's two-phase grouped broadcasts.

Also verifies the distributed result against numpy.

Usage::

    python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import HockneyParams, PhantomArray
from repro.hetero import run_hetero_summa1d
from repro.mpi.comm import CollectiveOptions
from repro.util.tables import format_table

PARAMS = HockneyParams(alpha=1e-4, beta=1e-9)
VDG = CollectiveOptions(bcast="vandegeijn")


def main() -> None:
    # Correctness on real data first.
    rng = np.random.default_rng(7)
    m, l, n = 48, 64, 80
    A = rng.standard_normal((m, l))
    B = rng.standard_normal((l, n))
    speeds = [1, 1, 3, 3]
    C, _ = run_hetero_summa1d(A, B, speeds=speeds, block=16, params=PARAMS)
    err = np.max(np.abs(C - A @ B))
    print(f"4 ranks with speeds {speeds}: max |C - AB| = {err:.2e}\n")
    assert err < 1e-10

    # Timing study at scale (phantom mode): 16 ranks, half 4x faster.
    N = 1024
    speeds = [1.0] * 8 + [4.0] * 8
    Ap, Bp = PhantomArray((N, N)), PhantomArray((N, N))
    kw = dict(block=32, params=PARAMS, base_gamma=5e-9, options=VDG)

    _, naive = run_hetero_summa1d(
        Ap, Bp, speeds=speeds, partition_speeds=[1.0] * 16, **kw
    )
    _, balanced = run_hetero_summa1d(Ap, Bp, speeds=speeds, **kw)
    _, grouped = run_hetero_summa1d(Ap, Bp, speeds=speeds, groups=4, **kw)

    rows = [
        ["uniform split", naive.total_time, naive.comm_time],
        ["speed-proportional", balanced.total_time, balanced.comm_time],
        ["proportional + 4 groups", grouped.total_time, grouped.comm_time],
    ]
    print(format_table(
        ["configuration", "total (s)", "comm (s)"],
        rows,
        title=f"16 mixed-speed ranks (8 slow + 8 fast 4x), n={N}",
    ))
    print(f"\nload balancing buys {naive.total_time / balanced.total_time:.2f}x; "
          "grouped broadcasts shave the communication on top — the "
          "HSUMMA idea composes with heterogeneity.")


if __name__ == "__main__":
    main()
