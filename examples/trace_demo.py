#!/usr/bin/env python
"""Trace demo: attribute an HSUMMA run's makespan to its phases.

Runs the same multiplication with SUMMA and HSUMMA under tracing,
prints each per-phase breakdown (the inter-group broadcast, the
intra-group broadcast, the local gemm), renders the phase Gantt, and
writes a Chrome ``trace_event`` JSON you can open interactively at
https://ui.perfetto.dev — the workflow behind the ``hsumma trace`` CLI
subcommand, shown here as library calls.

Usage::

    python examples/trace_demo.py [output.json]
"""

import sys

from repro import run_hsumma, run_summa, write_chrome_trace
from repro.experiments.timeline import render_phase_timeline
from repro.metrics import critical_path, phase_rollup
from repro.mpi.comm import CollectiveOptions
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.payloads import PhantomArray


def main(out_path: str = "trace_demo.json") -> None:
    # Scale mode: phantom operands carry only shapes, so a 64-rank
    # n=1024 run costs no memory; the timings are what matter here.
    n, p, block, groups = 1024, 64, 64, 8
    A, B = PhantomArray((n, n)), PhantomArray((n, n))
    params = HockneyParams(alpha=1e-4, beta=1e-9)
    options = CollectiveOptions(bcast="vandegeijn")
    network = HomogeneousNetwork(p, params)
    gamma = 1e-9

    _, flat = run_summa(A, B, grid=(8, 8), block=block, network=network,
                        options=options, gamma=gamma, trace=True)
    _, hier = run_hsumma(A, B, grid=(8, 8), groups=groups,
                         outer_block=block, network=network,
                         options=options, gamma=gamma, trace=True)

    print(f"n={n}, p={p}, b={block}, vandegeijn broadcast")
    print(f"\nSUMMA   (critical rank {flat.critical_rank}):")
    print(phase_rollup(flat).to_table())
    print(f"\nHSUMMA, G={groups} (critical rank {hier.critical_rank}):")
    print(phase_rollup(hier).to_table())

    comm_flat = flat.comm_time
    comm_hier = hier.comm_time
    print(f"\ncommunication time: SUMMA {comm_flat * 1e3:.2f} ms, "
          f"HSUMMA {comm_hier * 1e3:.2f} ms "
          f"({comm_flat / comm_hier:.2f}x reduction)")

    print("\nphase Gantt (HSUMMA, first 4 ranks):")
    print(render_phase_timeline(hier, width=64, ranks=[0, 1, 2, 3]))

    path = critical_path(hier)
    print(f"\ncritical path: {len(path.segments)} segments, "
          f"{path.transfer_time * 1e3:.2f} ms on the wire, "
          f"{path.local_time * 1e3:.2f} ms local")

    write_chrome_trace(hier, out_path)
    print(f"\nwrote Chrome trace to {out_path} "
          f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
