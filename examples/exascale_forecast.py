#!/usr/bin/env python
"""Reproduce the paper's exascale forecast (Figure 10) and explore how
the verdict shifts with the platform's latency/bandwidth balance.

Usage::

    python examples/exascale_forecast.py
"""

import math

from repro.models.exascale import ExascaleScenario, exascale_prediction
from repro.models.optimizer import critical_ratio, predicted_extremum_kind
from repro.util.tables import format_table


def ascii_plot(xs, ys, ref, width=56) -> str:
    """Tiny log-x ascii chart: one row per x, '#' bar for y, '|' = SUMMA."""
    top = max(max(ys), ref)
    lines = []
    for x, y in zip(xs, ys):
        bar = int(round(y / top * width))
        refpos = int(round(ref / top * width))
        row = ["."] * (width + 1)
        for i in range(bar):
            row[i] = "#"
        row[refpos] = "|"
        lines.append(f"G=2^{int(math.log2(x)):>2d} " + "".join(row))
    return "\n".join(lines)


def main() -> None:
    sc = ExascaleScenario()
    pred = exascale_prediction(sc)
    print(f"Exascale scenario: p=2^20 ranks, n=2^22, b={sc.b}, "
          f"alpha={sc.alpha * 1e9:.0f} ns, 100 GB/s links\n")
    print("HSUMMA model time per group count ('|' marks SUMMA):\n")
    print(ascii_plot(pred["groups"], pred["hsumma"], pred["summa"]))
    best = min(pred["hsumma"])
    print(f"\nSUMMA {pred['summa']:.1f} s; HSUMMA {best:.1f} s at "
          f"G={pred['optimal_G']} -> {pred['summa'] / best:.2f}x")
    print(f"(compute adds {pred['compute']:.1f} s to both)\n")

    # Sensitivity: sweep the latency while keeping 100 GB/s links.
    rows = []
    for alpha_ns in (50, 150, 500, 1500, 5000):
        s = ExascaleScenario(alpha=alpha_ns * 1e-9)
        p = exascale_prediction(s)
        kind = predicted_extremum_kind(s.n, s.b, s.p, s.alpha, s.beta)
        rows.append([
            alpha_ns,
            s.alpha / s.beta,
            critical_ratio(s.n, s.b, s.p),
            kind,
            p["summa"] / min(p["hsumma"]),
        ])
    print(format_table(
        ["alpha (ns)", "alpha/beta", "2nb/p", "extremum at sqrt(p)",
         "SUMMA/HSUMMA"],
        rows,
        title="Sensitivity: the threshold test decides the verdict",
    ))
    print("\nBelow the threshold the hierarchy stops paying — "
          "exactly the regime boundary of paper eqs. (10)/(11).")


if __name__ == "__main__":
    main()
