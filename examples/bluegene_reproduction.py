#!/usr/bin/env python
"""Reproduce the BlueGene/P headline experiment at reduced scale,
then at full scale via the step model.

Stage 1 runs the *full discrete-event simulation* (every message an
event) on a 256-rank torus — small enough to finish in seconds, large
enough to show the interior optimum and the effect of the torus.

Stage 2 uses the step-synchronous executor (validated against the full
simulator in the test suite) to regenerate the paper's actual Figure 8
point: 16384 cores, n=65536, b=B=256.

Usage::

    python examples/bluegene_reproduction.py [--full]

``--full`` adds the 16384-core sweep (roughly half a minute).
"""

import sys

from repro import PhantomArray
from repro.core.grouping import valid_group_counts
from repro.core.hsumma import run_hsumma
from repro.core.summa import run_summa
from repro.experiments.figures import fig8
from repro.platforms.bluegene import bluegene_p
from repro.util.gridmath import factor_grid
from repro.util.tables import format_table


def stage1() -> None:
    p, n, block = 64, 2048, 16
    platform = bluegene_p(p)
    grid = factor_grid(p)
    opts = platform.options
    net = platform.network(p)

    _, s_sim = run_summa(
        PhantomArray((n, n)), PhantomArray((n, n)),
        grid=grid, block=block, network=net, options=opts,
        gamma=platform.gamma,
    )
    rows = []
    for G in valid_group_counts(*grid):
        if G & (G - 1):
            continue
        _, h_sim = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=grid, groups=G, outer_block=block,
            network=net, options=opts, gamma=platform.gamma,
        )
        rows.append([G, h_sim.comm_time, h_sim.total_time])
    print(format_table(
        ["G", "hsumma_comm_s", "hsumma_total_s"],
        rows,
        title=(
            f"Stage 1 — full DES on a {p}-rank BG/P torus "
            f"(n={n}, b=B={block}); SUMMA comm {s_sim.comm_time:.4f} s"
        ),
    ))
    best = min(rows, key=lambda r: r[1])
    print(f"\nbest G = {best[0]}: comm {best[1]:.4f} s vs SUMMA "
          f"{s_sim.comm_time:.4f} s -> {s_sim.comm_time / best[1]:.2f}x\n")


def stage2() -> None:
    series = fig8()
    print(series.to_table(
        "Stage 2 — paper Figure 8 via the step model "
        "(p=16384, n=65536, b=B=256)"
    ))
    g, best = series.min_of("hsumma_comm")
    summa = series.column("summa_comm")[0]
    print(f"\noptimal G = {g} (paper measured G=512); "
          f"comm ratio {summa / best:.2f}x (paper measured 5.89x; "
          "the paper's own Hockney model also predicts a smaller ratio "
          "than measured — see EXPERIMENTS.md)")


def main() -> None:
    stage1()
    if "--full" in sys.argv:
        stage2()
    else:
        print("run with --full for the 16384-core Figure-8 sweep")


if __name__ == "__main__":
    main()
