#!/usr/bin/env python
"""Find the optimal HSUMMA group count three ways and compare.

The paper proves the communication cost has an extremum at
``G = sqrt(p)`` and selects the best G by sampling; its conclusions
sketch an auto-tuner ("few iterations of HSUMMA").  This example runs:

1. the analytic optimizer (paper eqs. 9-12),
2. the empirical auto-tuner (truncated phantom runs),
3. an exhaustive full simulation sweep,

on a BlueGene/P-flavoured virtual platform, and prints all three
verdicts side by side.

Usage::

    python examples/optimal_groups.py
"""

from repro import PhantomArray
from repro.core.hsumma import run_hsumma
from repro.core.tuning import tune_group_count
from repro.core.grouping import valid_group_counts
from repro.models.broadcast_model import VANDEGEIJN_MODEL
from repro.models.optimizer import (
    critical_ratio,
    hsumma_beats_summa,
    optimal_group_count,
)
from repro.mpi.comm import CollectiveOptions
from repro.platforms.bluegene import BGP_PARAMS
from repro.util.gridmath import factor_grid


def main() -> None:
    n, p, block = 4096, 64, 16
    grid = factor_grid(p)
    opts = CollectiveOptions(bcast="vandegeijn")
    alpha, beta_elem = BGP_PARAMS.alpha, BGP_PARAMS.beta * 8

    print(f"Platform: BG/P Hockney parameters, p={p} (grid {grid[0]}x{grid[1]}), "
          f"n={n}, b=B={block}\n")

    # 1. The analytic threshold and optimizer.
    thr = critical_ratio(n, block, p)
    wins = hsumma_beats_summa(n, block, p, alpha, beta_elem)
    g_model, t_model = optimal_group_count(
        n, p, block, alpha, beta_elem, VANDEGEIJN_MODEL
    )
    print("1. analytic model (paper Section IV):")
    print(f"   alpha/beta = {alpha / beta_elem:.0f} vs 2nb/p = {thr:.0f} "
          f"-> interior minimum exists: {wins}")
    print(f"   optimal G = {g_model} (predicted comm {t_model:.4f} s)\n")

    # 2. The auto-tuner: a few truncated iterations per candidate.
    report = tune_group_count(
        n, grid, block, params=BGP_PARAMS, options=opts, metric="comm"
    )
    print("2. auto-tuner (sampled phantom runs, the paper's sketch):")
    for g in sorted(report.times):
        marker = "  <-- best" if g == report.best_groups else ""
        print(f"   G={g:4d}  {report.times[g]:.6f} s{marker}")
    print()

    # 3. Exhaustive full simulation.
    print("3. exhaustive full simulation sweep:")
    best_g, best_t = None, float("inf")
    for G in valid_group_counts(*grid):
        _, sim = run_hsumma(
            PhantomArray((n, n)), PhantomArray((n, n)),
            grid=grid, groups=G, outer_block=block,
            params=BGP_PARAMS, options=opts,
        )
        marker = ""
        if sim.comm_time < best_t:
            best_g, best_t = G, sim.comm_time
        print(f"   G={G:4d}  {sim.comm_time:.6f} s")
    print(f"   full-sweep best: G={best_g} at {best_t:.6f} s")

    print(f"\nverdicts: model G={g_model}, tuner G={report.best_groups}, "
          f"exhaustive G={best_g}")


if __name__ == "__main__":
    main()
