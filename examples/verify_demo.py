#!/usr/bin/env python
"""Verification demo: prove a run clean, then watch the verifier catch
a seeded communication bug.

Part 1 runs HSUMMA with ``verify=True``: the recorder shadows every
rank, the structural checks and the K-schedule determinism harness all
pass, and the verdict prints CLEAN — at zero virtual-time cost.

Part 2 runs a deliberately broken SPMD program (one rank broadcasts
from the wrong root) and shows the structured diagnosis: the exception
carries the check id and a full verdict instead of a bare hang.

Part 3 deadlocks two ranks on crossed receives and prints the wait-for
cycle the diagnoser extracts.

Usage::

    python examples/verify_demo.py
"""

import numpy as np

from repro import multiply
from repro.errors import CollectiveMismatchError, DeadlockError
from repro.simulator.runtime import run_spmd
from repro.verify import VerifyOptions


def part1_clean() -> None:
    rng = np.random.default_rng(42)
    n = 64
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    result = multiply(A, B, nprocs=16, algorithm="hsumma",
                      verify=VerifyOptions(schedules=3))
    verdict = result.sim.verdict
    print("— part 1: HSUMMA under full verification —")
    print(f"  {verdict.summary()}")
    print(f"  observed ops: {verdict.meta['observed_ops']}, "
          f"collectives: {verdict.meta['observed_collectives']}")
    assert verdict.ok
    assert np.allclose(result.C, A @ B)


def part2_wrong_root() -> None:
    def program(ctx):
        def gen():
            root = 1 if ctx.world.rank == 2 else 0
            out = yield from ctx.world.bcast(
                1.0 if ctx.world.rank == root else None, root=root)
            return out
        return gen()

    print("— part 2: one rank broadcasts from the wrong root —")
    try:
        run_spmd(program, 4, verify=True)
    except CollectiveMismatchError as exc:
        print(f"  caught: {exc}")
        print(f"  check id: {exc.check}")
    else:
        raise AssertionError("the mismatch went undetected")


def part3_deadlock() -> None:
    def program(ctx):
        def gen():
            # Both ranks receive first — the classic crossed exchange.
            peer = 1 - ctx.world.rank
            got = yield from ctx.world.recv(peer)
            yield from ctx.world.send(b"reply", peer)
            return got
        return gen()

    print("— part 3: crossed blocking receives —")
    try:
        run_spmd(program, 2, verify=True)
    except DeadlockError as exc:
        [finding] = exc.verdict.by_check("deadlock")
        print(f"  diagnosis: {finding.message}")
        print(f"  cycle: {finding.detail['cycle']}")
    else:
        raise AssertionError("the deadlock went undetected")


def main() -> None:
    part1_clean()
    part2_wrong_root()
    part3_deadlock()
    print("all three scenarios behaved as documented.")


if __name__ == "__main__":
    main()
