"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.model import HockneyParams


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite golden reference files from the current output "
             "instead of failing on a mismatch (commit the diff after "
             "an intentional behaviour change)",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden files (``--regen-golden``)."""
    return request.config.getoption("--regen-golden")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds spawn their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def params() -> HockneyParams:
    """A latency-heavy parameter set (alpha visible next to bandwidth)."""
    return HockneyParams(alpha=1e-4, beta=1e-9)


def random_pair(rng: np.random.Generator, m: int, l: int, n: int):
    """Random (A, B) of the requested multiplication shape."""
    return rng.standard_normal((m, l)), rng.standard_normal((l, n))
