"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.model import HockneyParams


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds spawn their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def params() -> HockneyParams:
    """A latency-heavy parameter set (alpha visible next to bandwidth)."""
    return HockneyParams(alpha=1e-4, beta=1e-9)


def random_pair(rng: np.random.Generator, m: int, l: int, n: int):
    """Random (A, B) of the requested multiplication shape."""
    return rng.standard_normal((m, l)), rng.standard_normal((l, n))
