"""Tests of the batched-yield protocol and the fused SendRecvRequest.

Both exist purely as hot-path accelerations of request sequences that
were already expressible, so the core property asserted here is
*equivalence*: every observable of a run using the fused forms — per
rank clock, comm_time, message counts, payloads, traces — must equal
the run spelled out with individual isend/irecv/wait requests.
"""

import pytest

from repro.errors import SimulationError
from repro.network.homogeneous import HomogeneousNetwork
from repro.network.model import HockneyParams
from repro.simulator.engine import Engine
from repro.simulator.requests import (
    ComputeRequest,
    IRecvRequest,
    ISendRequest,
    SendRecvRequest,
)

PARAMS = HockneyParams(alpha=1e-5, beta=1e-9)


def _engine(n: int, **kw) -> Engine:
    return Engine(HomogeneousNetwork(n, PARAMS), **kw)


def _assert_same_result(res_a, res_b):
    for sa, sb in zip(res_a.stats, res_b.stats):
        assert sa.clock == sb.clock
        assert sa.comm_time == sb.comm_time
        assert sa.compute_time == sb.compute_time
        assert sa.messages_sent == sb.messages_sent
        assert sa.bytes_sent == sb.bytes_sent
    assert res_a.return_values == res_b.return_values


def _ring_explicit(rank: int, size: int, payload: bytes, rounds: int):
    """Ring shift via the four-request sequence the engine always had."""
    carry = payload
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _ in range(rounds):
        shandle = yield ISendRequest(right, 0, carry)
        rhandle = yield IRecvRequest(left, 0)
        carry = yield rhandle
        yield shandle
    return carry


def _ring_fused(rank: int, size: int, payload: bytes, rounds: int):
    carry = payload
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _ in range(rounds):
        carry = yield SendRecvRequest(right, left, 0, 0, carry)
    return carry


def _ring_batched(rank: int, size: int, payload: bytes, rounds: int):
    """Same shift through the generic 2-tuple batches."""
    carry = payload
    right = (rank + 1) % size
    left = (rank - 1) % size
    for _ in range(rounds):
        shandle, rhandle = yield (
            ISendRequest(right, 0, carry),
            IRecvRequest(left, 0),
        )
        carry = yield (rhandle, shandle)
    return carry


class TestSendRecvEquivalence:
    @pytest.mark.parametrize("variant", [_ring_fused, _ring_batched])
    def test_ring_matches_explicit_sequence(self, variant):
        size, rounds = 8, 5
        payloads = [bytes([r]) * (100 * (r + 1)) for r in range(size)]
        base = _engine(size).run(
            [_ring_explicit(r, size, payloads[r], rounds) for r in range(size)]
        )
        fused = _engine(size).run(
            [variant(r, size, payloads[r], rounds) for r in range(size)]
        )
        _assert_same_result(base, fused)
        # After `rounds` shifts every rank holds the payload that
        # started `rounds` ranks to its left.
        for r in range(size):
            assert fused.return_values[r] == payloads[(r - rounds) % size]

    @pytest.mark.parametrize("variant", [_ring_fused, _ring_batched])
    def test_skewed_ring_matches_explicit_sequence(self, variant):
        """Unequal compute between shifts exercises both wait orders
        (send finishing before and after the receive)."""
        size, rounds = 6, 4

        def skew(builder, rank):
            def program():
                carry = bytes([rank]) * 64
                inner = builder(rank, size, carry, rounds)
                # Interleave: advance the inner ring one value at a
                # time with rank-dependent compute in between.
                value = None
                try:
                    while True:
                        req = inner.send(value)
                        value = yield req
                        # One compute per completed shift: after the
                        # fused request, or after a *wait* batch (a
                        # tuple of handles — not the posting batch).
                        if isinstance(req, SendRecvRequest) or (
                            isinstance(req, tuple)
                            and not isinstance(req[0], (ISendRequest, IRecvRequest))
                        ):
                            yield ComputeRequest(1e-5 * (rank + 1))
                except StopIteration as stop:
                    return stop.value

            return program()

        def skew_explicit(rank):
            def program():
                carry = bytes([rank]) * 64
                right = (rank + 1) % size
                left = (rank - 1) % size
                for _ in range(rounds):
                    shandle = yield ISendRequest(right, 0, carry)
                    rhandle = yield IRecvRequest(left, 0)
                    carry = yield rhandle
                    yield shandle
                    yield ComputeRequest(1e-5 * (rank + 1))
                return carry

            return program()

        base = _engine(size).run([skew_explicit(r) for r in range(size)])
        fused = _engine(size).run([skew(variant, r) for r in range(size)])
        _assert_same_result(base, fused)

    def test_trace_identical(self):
        size, rounds = 4, 3

        def run(builder):
            eng = _engine(size, collect_trace=True)
            return eng.run(
                [builder(r, size, bytes([r]) * 32, rounds) for r in range(size)]
            )

        base = run(_ring_explicit)
        fused = run(_ring_fused)
        assert [
            (t.src, t.dst, t.nbytes, t.start, t.finish) for t in base.trace
        ] == [
            (t.src, t.dst, t.nbytes, t.start, t.finish) for t in fused.trace
        ]

    def test_eager_sendrecv_matches_explicit(self):
        size, rounds = 4, 3

        def run(builder):
            eng = _engine(size, eager_threshold=1024)
            return eng.run(
                [builder(r, size, bytes([r]) * 32, rounds) for r in range(size)]
            )

        _assert_same_result(run(_ring_explicit), run(_ring_fused))


class TestBatchedYieldProtocol:
    def test_wait_pair_resumes_with_first_payload(self):
        def sender():
            shandle = yield ISendRequest(1, 0, b"data")
            yield (shandle, shandle)

        def receiver():
            rhandle = yield IRecvRequest(0, 0)
            shandle = yield ISendRequest(2, 1, b"back")
            got = yield (rhandle, shandle)
            return got

        def sink():
            got = yield IRecvRequest(1, 1)
            payload = yield got
            return payload

        res = _engine(3).run([sender(), receiver(), sink()])
        assert res.return_values[1] == b"data"
        assert res.return_values[2] == b"back"

    def test_wait_pair_on_completed_handles(self):
        def left():
            yield ISendRequest(1, 0, b"x")
            yield ComputeRequest(1.0)  # both transfers long done
            yield IRecvRequest(1, 1)

        def right():
            rhandle = yield IRecvRequest(0, 0)
            shandle = yield ISendRequest(0, 1, b"y")
            yield ComputeRequest(1.0)
            got = yield (rhandle, shandle)
            return got

        res = _engine(2).run([left(), right()])
        assert res.return_values[1] == b"x"

    def test_batch_of_blocking_requests_rejected(self):
        def program():
            yield (ComputeRequest(1.0), ComputeRequest(1.0))

        with pytest.raises(SimulationError, match="blocking"):
            _engine(1).run([program()])

    def test_non_pair_tuple_rejected(self):
        def program():
            yield (ComputeRequest(1.0),)

        with pytest.raises(SimulationError, match="pairs"):
            _engine(1).run([program()])

    def test_foreign_handle_pair_rejected(self):
        def maker():
            handle = yield ISendRequest(1, 0, b"x")
            yield ComputeRequest(1.0)
            return handle

        def receiver():
            yield IRecvRequest(0, 0)

        res = _engine(2).run([maker(), receiver()])
        stolen = res.return_values[0]

        def thief():
            yield (stolen, stolen)

        def receiver2():
            yield IRecvRequest(0, 0)

        with pytest.raises(SimulationError, match="another rank"):
            _engine(2).run([receiver2(), thief()])

    def test_sendrecv_to_and_from_self(self):
        def loner():
            got = yield SendRecvRequest(0, 0, 0, 0, b"me")
            return got

        res = _engine(1).run([loner()])
        assert res.return_values[0] == b"me"
