"""Unit tests for request objects and payload size inference."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.payloads import PhantomArray
from repro.simulator.requests import (
    ComputeRequest,
    RequestHandle,
    SendRequest,
    WaitRequest,
    payload_nbytes,
)


class TestPayloadNbytes:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_phantom(self):
        assert payload_nbytes(PhantomArray((4, 4))) == 128

    def test_bytes(self):
        assert payload_nbytes(b"hello") == 5

    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_scalar(self):
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(7) == 8

    def test_sequence_sums(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40

    def test_nested_tuple(self):
        assert payload_nbytes((1, (2.0, b"ab"))) == 18

    def test_unknown_rejected(self):
        with pytest.raises(SimulationError, match="wire size"):
            payload_nbytes(object())


class TestRequests:
    def test_send_infers_nbytes(self):
        req = SendRequest(1, 0, np.zeros(5))
        assert req.nbytes == 40

    def test_send_explicit_nbytes(self):
        req = SendRequest(1, 0, None, nbytes=123)
        assert req.nbytes == 123

    def test_compute_rejects_negative(self):
        with pytest.raises(SimulationError):
            ComputeRequest(-1.0)

    def test_wait_requires_handle(self):
        with pytest.raises(SimulationError):
            WaitRequest("not a handle")

    def test_handle_initial_state(self):
        h = RequestHandle(3, "recv")
        assert not h.done
        assert h.rank == 3
        assert h.payload is None
