"""Unit tests for SimResult / RankStats / TransferRecord."""

import pytest

from repro.simulator.tracing import RankStats, SimResult, TransferRecord, merge_max


def _result(clocks, comms, computes):
    stats = [
        RankStats(rank=i, clock=c, comm_time=m, compute_time=p)
        for i, (c, m, p) in enumerate(zip(clocks, comms, computes))
    ]
    return SimResult(stats=stats, return_values=[None] * len(stats))


class TestSimResult:
    def test_total_time_is_max_clock(self):
        res = _result([1.0, 3.0, 2.0], [0, 0, 0], [0, 0, 0])
        assert res.total_time == 3.0

    def test_comm_time_is_max(self):
        res = _result([5, 5], [1.0, 2.5], [0, 0])
        assert res.comm_time == 2.5

    def test_mean_comm(self):
        res = _result([5, 5], [1.0, 3.0], [0, 0])
        assert res.mean_comm_time == 2.0

    def test_empty(self):
        res = SimResult(stats=[], return_values=[])
        assert res.total_time == 0.0
        assert res.comm_time == 0.0
        assert res.mean_comm_time == 0.0

    def test_message_aggregates(self):
        stats = [RankStats(rank=0, messages_sent=2, bytes_sent=10),
                 RankStats(rank=1, messages_sent=3, bytes_sent=20)]
        res = SimResult(stats=stats, return_values=[None, None])
        assert res.total_messages == 5
        assert res.total_bytes == 30

    def test_summary_contains_counts(self):
        res = _result([1.0], [0.5], [0.5])
        assert "1 ranks" in res.summary()

    def test_other_time(self):
        s = RankStats(rank=0, clock=3.0, comm_time=1.0, compute_time=1.5)
        assert s.other_time == pytest.approx(0.5)


class TestTransferRecord:
    def test_duration(self):
        rec = TransferRecord(0, 1, 0, 100, start=1.0, finish=1.5)
        assert rec.duration == pytest.approx(0.5)


class TestMergeMax:
    def test_merge(self):
        a = _result([1.0], [0.3], [0])
        b = _result([2.0], [0.1], [0])
        total, comm = merge_max([a, b])
        assert total == 2.0
        assert comm == 0.3


class TestFaultCounters:
    def test_defaults_are_zero(self):
        s = RankStats(rank=0)
        assert (s.retries, s.timeouts, s.recoveries, s.fault_delay) == (0, 0, 0, 0.0)

    def test_totals_aggregate_over_ranks(self):
        stats = [RankStats(rank=0, retries=2, fault_delay=0.5),
                 RankStats(rank=1, timeouts=1, recoveries=1, fault_delay=0.25)]
        res = SimResult(stats=stats, return_values=[None, None])
        assert res.total_retries == 2
        assert res.total_timeouts == 1
        assert res.total_recoveries == 1
        assert res.total_fault_delay == pytest.approx(0.75)
        assert res.faulted

    def test_clean_run_not_faulted(self):
        res = _result([1.0], [0.5], [0.5])
        assert not res.faulted

    def test_fault_summary_mentions_every_counter(self):
        stats = [RankStats(rank=0, retries=3, timeouts=2, recoveries=1,
                           fault_delay=0.125)]
        res = SimResult(stats=stats, return_values=[None])
        text = res.fault_summary()
        assert "3 retransmits" in text
        assert "2 timeouts" in text
        assert "1 recoveries" in text
        assert "0.125000s" in text
